"""Property-based tests for run-length diffs (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.diffs import Diff, normalize_ranges, ranges_word_count

ranges_strategy = st.lists(
    st.tuples(st.integers(0, 63), st.integers(0, 63)).map(
        lambda t: (min(t), max(t) + 1)),
    min_size=0, max_size=8)

values_strategy = st.lists(
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6),
    min_size=64, max_size=64)


@given(ranges_strategy)
def test_normalize_is_idempotent(ranges):
    once = normalize_ranges(ranges)
    assert normalize_ranges(once) == once


@given(ranges_strategy)
def test_normalize_is_sorted_and_disjoint(ranges):
    result = normalize_ranges(ranges)
    for (a_start, a_end), (b_start, b_end) in zip(result, result[1:]):
        assert a_end < b_start  # disjoint AND non-adjacent


@given(ranges_strategy)
def test_normalize_preserves_covered_words(ranges):
    covered = set()
    for start, end in ranges:
        covered.update(range(start, end))
    result = normalize_ranges(ranges)
    normalized_covered = set()
    for start, end in result:
        normalized_covered.update(range(start, end))
    assert normalized_covered == covered
    assert ranges_word_count(result) == len(covered)


@given(values_strategy, ranges_strategy)
def test_diff_round_trip(values, ranges):
    """Applying a diff to any target makes the covered words equal to
    the source and leaves everything else untouched."""
    source = np.array(values)
    diff = Diff.from_ranges(0, source, ranges)
    target = np.full(64, -777.0)
    diff.apply(target)
    covered = set()
    for start, end in normalize_ranges(ranges):
        covered.update(range(start, end))
    for word in range(64):
        if word in covered:
            assert target[word] == source[word]
        else:
            assert target[word] == -777.0


@given(values_strategy, ranges_strategy)
def test_diff_apply_is_idempotent(values, ranges):
    source = np.array(values)
    diff = Diff.from_ranges(0, source, ranges)
    target = np.zeros(64)
    diff.apply(target)
    once = target.copy()
    diff.apply(target)
    np.testing.assert_array_equal(once, target)


@given(values_strategy, values_strategy, ranges_strategy,
       ranges_strategy)
def test_disjoint_diffs_commute(values_a, values_b, ranges_a, ranges_b):
    """Diffs over disjoint ranges apply in either order with the same
    result (the multiple-writer merge property)."""
    norm_a = normalize_ranges(ranges_a)
    covered_a = set()
    for start, end in norm_a:
        covered_a.update(range(start, end))
    disjoint_b = [(s, e) for s, e in normalize_ranges(ranges_b)
                  if not any(w in covered_a for w in range(s, e))]
    diff_a = Diff.from_ranges(0, np.array(values_a), norm_a)
    diff_b = Diff.from_ranges(0, np.array(values_b), disjoint_b)
    ab = np.zeros(64)
    diff_a.apply(ab)
    diff_b.apply(ab)
    ba = np.zeros(64)
    diff_b.apply(ba)
    diff_a.apply(ba)
    np.testing.assert_array_equal(ab, ba)
    assert not diff_a.overlaps(diff_b)


@given(values_strategy, ranges_strategy)
def test_diff_size_accounts_every_run(values, ranges):
    diff = Diff.from_ranges(0, np.array(values), ranges)
    assert diff.size_bytes == sum(8 + 4 * len(v) for _s, v in diff.runs)
    assert diff.word_count == ranges_word_count(
        normalize_ranges(ranges))
