"""Property-based release-consistency invariant tests.

For data-race-free programs, release consistency is indistinguishable
from sequential consistency.  We generate random lock/barrier/compute
schedules where every word is only ever written under its own lock
(DRF by construction), run them under all five protocols on a small
page size (maximal false sharing), and require that:

1. every lock-protected counter ends with exactly the total number of
   increments performed on it (no lost or duplicated updates);
2. after the final barrier, every node observes identical memory.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DsmApi, Machine, MachineConfig, NetworkConfig
from repro.protocols.registry import ALL_PROTOCOL_NAMES as PROTOCOL_NAMES

NPROCS = 3
NLOCKS = 4
WORDS = 64  # one tiny page (256-byte pages): heavy false sharing


def lock_word(lock_id: int) -> int:
    # Spread counters over the page but keep them falsely shared.
    return lock_id * (WORDS // NLOCKS)


# One phase of one processor: a list of (lock, increments) bursts.
burst = st.tuples(st.integers(0, NLOCKS - 1), st.integers(1, 3))
phase = st.lists(burst, min_size=0, max_size=3)
# A schedule: for each of up to 2 phases, one phase per processor.
schedule_strategy = st.lists(
    st.tuples(*[phase for _ in range(NPROCS)]),
    min_size=1, max_size=2)


def run_schedule(protocol: str, schedule):
    config = MachineConfig(nprocs=NPROCS, page_size=256,
                           network=NetworkConfig.ideal(),
                           memory_latency_cycles=0)
    machine = Machine(config, protocol=protocol)
    seg = machine.allocate("counters", WORDS)
    expected = [0] * NLOCKS
    for phases in schedule:
        for proc_ops in phases:
            for lock_id, increments in proc_ops:
                expected[lock_id] += increments

    def worker(api: DsmApi, proc: int):
        for phase_index, phases in enumerate(schedule):
            for lock_id, increments in phases[proc]:
                for _ in range(increments):
                    yield from api.acquire(lock_id)
                    value = yield from api.read(seg,
                                                lock_word(lock_id))
                    yield from api.compute(50 + 10 * proc)
                    yield from api.write(seg, lock_word(lock_id),
                                         value + 1.0)
                    yield from api.release(lock_id)
            yield from api.barrier(phase_index)
        final = yield from api.read_region(seg, 0, WORDS)
        return final.tolist()

    result = machine.run(
        lambda p: worker(DsmApi(machine.nodes[p]), p))
    return result, expected


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=schedule_strategy)
def test_no_lost_updates_and_global_agreement(protocol, schedule):
    result, expected = run_schedule(protocol, schedule)
    views = [np.array(view) for view in result.app_result]
    # 2. All nodes agree bit-for-bit after the final barrier.
    for view in views[1:]:
        np.testing.assert_array_equal(views[0], view)
    # 1. Every counter saw every increment exactly once.
    for lock_id, count in enumerate(expected):
        assert views[0][lock_word(lock_id)] == float(count), (
            f"lock {lock_id}: expected {count}, "
            f"got {views[0][lock_word(lock_id)]}")


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(schedule=schedule_strategy)
def test_simulated_time_deterministic(protocol, schedule):
    first, _ = run_schedule(protocol, schedule)
    second, _ = run_schedule(protocol, schedule)
    assert first.elapsed_cycles == second.elapsed_cycles
    assert first.total_messages == second.total_messages
