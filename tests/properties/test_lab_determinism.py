"""Cross-process determinism: the contract the lab cache stands on.

A fingerprint may only address a cached result if the simulator
produces the *same* result for the same spec in any process.  This
gate runs one spec in-process and in two fresh interpreters with
different ``PYTHONHASHSEED`` values (so any hidden dependence on hash
randomization — set/dict iteration order leaking into the event
schedule — shows up as a mismatch) and requires byte-identical
serialized results from all three.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.core.config import MachineConfig, NetworkConfig
from repro.lab import RunSpec, execute_spec

_CHILD = """
import json, sys
from repro.lab import RunSpec, execute_spec
spec = RunSpec.from_dict(json.loads(sys.stdin.read()))
print(json.dumps(execute_spec(spec).to_dict(), sort_keys=True))
"""


def _run_in_subprocess(spec: RunSpec, hashseed: str) -> str:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        input=json.dumps(spec.to_dict()),
        capture_output=True, text=True, env=env, check=True)
    return proc.stdout.strip()


def test_results_are_identical_across_processes():
    spec = RunSpec("water", {"nmols": 20, "steps": 1}, protocol="lh",
                   config=MachineConfig(nprocs=4,
                                        network=NetworkConfig.atm()))
    local = json.dumps(execute_spec(spec).to_dict(), sort_keys=True)
    assert _run_in_subprocess(spec, "0") == local
    assert _run_in_subprocess(spec, "1") == local


def test_fingerprints_are_identical_across_processes():
    spec = RunSpec("jacobi", {"n": 48, "iterations": 3},
                   config=MachineConfig(nprocs=2,
                                        network=NetworkConfig.atm()))
    child = ("import json, sys\n"
             "from repro.lab import RunSpec\n"
             "spec = RunSpec.from_dict(json.loads(sys.stdin.read()))\n"
             "print(spec.fingerprint())\n")
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "23"
    proc = subprocess.run(
        [sys.executable, "-c", child],
        input=json.dumps(spec.to_dict()),
        capture_output=True, text=True, env=env, check=True)
    assert proc.stdout.strip() == spec.fingerprint()
