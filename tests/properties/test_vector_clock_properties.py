"""Property-based tests for vector timestamps (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.mem.timestamps import VectorClock

clock = st.lists(st.integers(0, 50), min_size=4,
                 max_size=4).map(VectorClock)


@given(clock)
def test_dominates_is_reflexive(a):
    assert a.dominates(a)
    assert not a.strictly_dominates(a)


@given(clock, clock)
def test_dominance_is_antisymmetric(a, b):
    if a.dominates(b) and b.dominates(a):
        assert a == b


@given(clock, clock, clock)
def test_dominance_is_transitive(a, b, c):
    if a.dominates(b) and b.dominates(c):
        assert a.dominates(c)


@given(clock, clock)
def test_merge_is_least_upper_bound(a, b):
    merged = a.merged(b)
    assert merged.dominates(a)
    assert merged.dominates(b)
    # No smaller clock dominates both: the merge takes each component
    # from one of the operands.
    for i, component in enumerate(merged.components):
        assert component in (a[i], b[i])


@given(clock, clock)
def test_merge_commutative_idempotent(a, b):
    assert a.merged(b) == b.merged(a)
    assert a.merged(a) == a


@given(clock, st.integers(0, 3))
def test_increment_strictly_dominates(a, proc):
    bumped = a.incremented(proc)
    assert bumped.strictly_dominates(a)
    assert bumped.total() == a.total() + 1


@given(clock, clock)
def test_total_is_linear_extension(a, b):
    """The apply-order key: strict dominance implies a larger total,
    so sorting by totals never applies an hb1-later diff first."""
    if a.strictly_dominates(b):
        assert a.total() > b.total()


@given(clock, clock)
def test_concurrency_is_symmetric(a, b):
    assert a.concurrent_with(b) == b.concurrent_with(a)
    # Exactly one of: equal, a->b, b->a, concurrent.
    relations = [a == b,
                 a.strictly_dominates(b),
                 b.strictly_dominates(a),
                 a.concurrent_with(b)]
    assert sum(relations) == 1
