"""Fault-tolerance properties of the robustness layer.

Two system-level guarantees (docs/robustness.md):

- **Conservation** — once every in-flight event has resolved, the
  transport accounting balances: every wire packet either arrived or
  was dropped, and every extra arrival came from injected duplication:
  ``received + dropped == sent + duplicated``.
- **Determinism** — the fault plan is a pure function of seed and
  configuration, so two identical runs produce byte-identical metrics
  dumps.
"""

import pytest

from repro.apps import create_app
from repro.core.api import DsmApi
from repro.core.config import FaultConfig, MachineConfig, NetworkConfig
from repro.core.machine import Machine
from repro.core.runner import run_app


def _run_drained(config, protocol="lh"):
    """Like run_app, but keeps the machine and drains the event queue
    afterwards so in-flight packets, retransmission timers, and
    delayed acks all resolve before the accounting is checked."""
    app = create_app("jacobi", n=24, iterations=3)
    machine = Machine(config, protocol=protocol)
    shared = app.setup(machine)
    result = machine.run(
        lambda proc: app.worker(DsmApi(machine.nodes[proc]), proc,
                                shared),
        app=app.name)
    app.finish(machine, shared, result)
    machine.sim.run(max_events=200_000)
    assert not machine.sim.pending  # fully drained, not event-capped
    return machine, result


NETWORKS = [NetworkConfig.ethernet(), NetworkConfig.atm(),
            NetworkConfig.ideal()]
FAULTS = [FaultConfig(drop_prob=0.02),
          FaultConfig(dup_prob=0.02),
          FaultConfig(drop_prob=0.02, dup_prob=0.02,
                      reorder_prob=0.02)]


@pytest.mark.parametrize("network", NETWORKS,
                         ids=lambda n: n.kind)
@pytest.mark.parametrize("faults", FAULTS,
                         ids=["drop", "dup", "mixed"])
def test_conservation_invariant(network, faults):
    config = MachineConfig(nprocs=4, network=network, faults=faults)
    machine, result = _run_drained(config)
    registry = result.registry
    sent = registry.total("transport.packets_sent_total")
    received = registry.total("transport.packets_received_total")
    drops = registry.total("faults.drops_total")
    duplicates = registry.total("faults.duplicates_total")
    assert received + drops == sent + duplicates
    assert sent > 0
    # Exactly-once at the protocol layer: every unique message the
    # nodes sent was delivered up exactly once, however many times
    # its copies crossed the wire.
    assert registry.total("transport.delivered_total") == \
        registry.total("transport.data_packets_total")


def test_identical_seed_and_config_give_identical_stats_json():
    config = MachineConfig(
        nprocs=4, network=NetworkConfig.ethernet(),
        faults=FaultConfig(drop_prob=0.02, dup_prob=0.01,
                           reorder_prob=0.01))
    first = run_app(create_app("jacobi", n=24, iterations=3), config,
                    protocol="lh")
    second = run_app(create_app("jacobi", n=24, iterations=3), config,
                     protocol="lh")
    assert first.elapsed_cycles == second.elapsed_cycles
    assert first.registry.as_json() == second.registry.as_json()


def test_different_fault_seed_changes_the_plan():
    base = MachineConfig(nprocs=4, network=NetworkConfig.ethernet())
    runs = {}
    for seed in (1, 2):
        config = base.replace(
            faults=FaultConfig(drop_prob=0.05, seed=seed))
        result = run_app(create_app("jacobi", n=24, iterations=3),
                         config, protocol="lh")
        runs[seed] = result.registry.total("faults.drops_total")
    # Same rate, different substreams: the plans should differ (with
    # these message counts a collision is astronomically unlikely to
    # produce identical drop sets *and* identical counts — if this
    # ever flakes, the seeds are not actually feeding the streams).
    assert runs[1] != runs[2] or runs[1] > 0


# -- node crash tier ----------------------------------------------------

def test_conservation_invariant_extends_to_crash_runs():
    """With a node down past the RTO, packets die at its dead NIC:
    ``received + drops + crash_dropped == sent + duplicates``, and
    the protocol layer still sees every unique message exactly once."""
    from repro.core.config import CrashSpec
    faults = FaultConfig(
        drop_prob=0.02,
        crashes=(CrashSpec(proc=2, at_us=300.0, down_us=80_000.0),))
    config = MachineConfig(nprocs=4, network=NetworkConfig.ethernet(),
                           faults=faults)
    machine, result = _run_drained(config)
    registry = result.registry
    sent = registry.total("transport.packets_sent_total")
    received = registry.total("transport.packets_received_total")
    drops = registry.total("faults.drops_total")
    duplicates = registry.total("faults.duplicates_total")
    crash_dropped = registry.total(
        "faults.crash_dropped_packets_total")
    assert crash_dropped > 0
    assert received + drops + crash_dropped == sent + duplicates
    assert registry.total("transport.delivered_total") == \
        registry.total("transport.data_packets_total")
    assert registry.total("faults.recoveries_total") == 1


def test_crash_plan_runs_are_deterministic():
    """A drawn (MTTF/MTTR) crash plan composed with packet loss is a
    pure function of the seed: byte-identical metrics dumps."""
    config = MachineConfig(
        nprocs=4, network=NetworkConfig.ethernet(),
        faults=FaultConfig(drop_prob=0.01, crash_mttf_us=30_000.0,
                           crash_mttr_us=5_000.0,
                           crash_horizon_us=100_000.0))
    first = run_app(create_app("jacobi", n=24, iterations=3), config,
                    protocol="lh")
    second = run_app(create_app("jacobi", n=24, iterations=3), config,
                     protocol="lh")
    assert first.registry.total("faults.crashes_total") > 0
    assert first.elapsed_cycles == second.elapsed_cycles
    assert first.registry.as_json() == second.registry.as_json()
