"""Property-based tests (hypothesis) for telemetry window merging.

The documented law (docs/observability.md): merging ``k`` adjacent
windows reproduces exactly what sampling at ``k * window_us`` would
have recorded, and merging composes —
``merge(merge(w, a), b) == merge(w, a * b)``.  Checked two ways:
algebraically on synthetic windows, and against real re-sampled runs
at hypothesis-chosen coarsening factors.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import create_app
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.runner import run_app
from repro.obs import TimeseriesSampler, Window, merge_windows

WINDOW_CYCLES = 100.0

latencies_strategy = st.lists(
    st.floats(min_value=0.0, max_value=5_000.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=6)

messages_strategy = st.dictionaries(
    st.sampled_from(["diff_req", "lock_grant", "barrier_arrive"]),
    st.integers(1, 50), max_size=3)


@st.composite
def windows_strategy(draw):
    """A grid-aligned run of raw windows; request stats are
    normalized through merge_windows(..., 1), which recomputes them
    from the retained latencies exactly like the sampler does."""
    n = draw(st.integers(min_value=1, max_value=12))
    raw = []
    for index in range(n):
        raw.append(Window(
            index=index,
            t0_cycles=index * WINDOW_CYCLES,
            t1_cycles=(index + 1) * WINDOW_CYCLES,
            events=draw(st.integers(0, 1000)),
            messages=draw(messages_strategy),
            wire_bytes=draw(st.integers(0, 10_000)),
            data_bytes=draw(st.integers(0, 10_000)),
            lock_wait_cycles=draw(st.integers(0, 10_000)),
            diff_bytes=draw(st.integers(0, 10_000)),
            queue_depth=draw(st.integers(0, 50)),
            requests=0, slo_violations=0,
            p50_us=0.0, p99_us=0.0, burn_rate=0.0,
            latencies_us=sorted(draw(latencies_strategy)),
        ))
    return merge_windows(raw, 1)


def _dicts(windows):
    return [w.to_dict() for w in windows]


@given(windows_strategy(), st.integers(1, 4), st.integers(1, 4))
def test_merge_is_associative(windows, a, b):
    assert _dicts(merge_windows(merge_windows(windows, a), b)) \
        == _dicts(merge_windows(windows, a * b))


@given(windows_strategy())
def test_merge_to_one_window_sums_everything(windows):
    (merged,) = merge_windows(windows, len(windows))
    assert merged.events == sum(w.events for w in windows)
    assert merged.wire_bytes == sum(w.wire_bytes for w in windows)
    assert merged.requests == sum(len(w.latencies_us)
                                  for w in windows)
    assert merged.t0_cycles == windows[0].t0_cycles
    assert merged.t1_cycles == windows[-1].t1_cycles
    assert merged.queue_depth == windows[-1].queue_depth


@given(windows_strategy(), st.integers(1, 4))
def test_merge_preserves_totals(windows, factor):
    merged = merge_windows(windows, factor)
    assert sum(w.events for w in merged) \
        == sum(w.events for w in windows)
    assert sum(w.slo_violations for w in merged) \
        == sum(len([l for l in w.latencies_us if l > 500.0])
               for w in windows)


# -- merging equals coarser sampling on a real run ---------------------

_BASE_US = 50.0
_SAMPLED = {}


def _sampled(factor):
    """Sample the same deterministic run at ``factor * _BASE_US``
    (memoized: hypothesis replays factors, the simulator does not
    need to)."""
    if factor not in _SAMPLED:
        sampler = TimeseriesSampler(window_us=_BASE_US * factor)
        run_app(create_app("jacobi", n=16, iterations=2),
                MachineConfig(nprocs=2, network=NetworkConfig.atm()),
                protocol="li", sampler=sampler)
        _SAMPLED[factor] = sampler.windows
    return _SAMPLED[factor]


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=1, max_value=8))
def test_merging_fine_windows_equals_coarser_sampling(factor):
    assert _dicts(merge_windows(_sampled(1), factor)) \
        == _dicts(_sampled(factor))
