"""Property tests pinning the hot-path rewrites to their oracles.

Each optimized structure on the protocol critical path has a slow,
obviously-correct formulation; Hypothesis drives both through random
operation sequences and demands equality (docs/performance.md):

- :meth:`repro.mem.pages.PageCopy.record_write` (incremental run
  merge) vs append-everything-then-:func:`normalize_ranges`;
- :meth:`repro.mem.intervals.IntervalLog.records_after` (per-proc
  bisect index) vs a flat scan of the whole log;
- :meth:`repro.protocols.base.BaseProtocol.due_notices` (memoized
  incremental partition) vs a naive dominance filter, across
  interleaved notice arrivals and monotone clock advances;
- :meth:`repro.mem.intervals.IntervalLog.prune_dominated` (interval
  GC) vs the unpruned log, for every acquirer clock the GC safety
  argument admits — including after an RCKP ILOG round trip;
- :func:`repro.mem.wire.encode_diff` (memoized blob cache) vs an
  independent struct-level encoding of the documented RDIF layout —
  cold, warm, decode-seeded, and across an RCKP DIFS round trip.
"""

import struct
from types import SimpleNamespace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.checkpoint import (_Reader, _encode_diff_store,
                                  _encode_interval_log,
                                  _restore_diff_store,
                                  _restore_interval_log)
from repro.mem.diffs import Diff, normalize_ranges
from repro.mem.intervals import (DiffStore, IntervalLog, IntervalRecord,
                                 WriteNotice)
from repro.mem.pages import PageCopy
from repro.mem.timestamps import VectorClock
from repro.mem.wire import decode_diff, encode_diff
from repro.protocols.base import BaseProtocol

PAGE_WORDS = 64

ranges_lists = st.lists(
    st.tuples(st.integers(0, PAGE_WORDS - 1),
              st.integers(1, 16)).map(
        lambda se: (se[0], min(PAGE_WORDS, se[0] + se[1]))),
    max_size=30)


@given(ranges=ranges_lists)
def test_record_write_matches_normalize_oracle(ranges):
    copy = PageCopy(page=0, words=PAGE_WORDS)
    for start, end in ranges:
        copy.record_write(start, end)
    assert copy.written == normalize_ranges(ranges)
    # Sorted and pairwise disjoint, as take_written_ranges relies on.
    for (_, e1), (s2, _) in zip(copy.written, copy.written[1:]):
        assert e1 < s2


@st.composite
def interval_batches(draw):
    nprocs = draw(st.integers(2, 4))
    entries = draw(st.lists(
        st.tuples(st.integers(0, nprocs - 1), st.integers(1, 12)),
        min_size=1, max_size=25))
    # Give (proc, index) a plausible clock: index at own position,
    # arbitrary small knowledge of the others.
    records = []
    for proc, index in entries:
        components = [draw(st.integers(0, 12)) for _ in range(nprocs)]
        components[proc] = index
        records.append(IntervalRecord(
            proc=proc, index=index, vc=VectorClock(components),
            pages=frozenset(draw(st.sets(st.integers(0, 5),
                                         max_size=3)))))
    query = VectorClock([draw(st.integers(0, 12))
                         for _ in range(nprocs)])
    return records, query


@given(batch=interval_batches())
def test_records_after_matches_flat_scan(batch):
    records, query = batch
    log = IntervalLog()
    for record in records:
        log.add(record)
    first_seen = {}
    for record in records:       # log.add keeps the first duplicate
        first_seen.setdefault(record.interval_id, record)
    oracle = sorted(
        (r for r in first_seen.values() if r.index > query[r.proc]),
        key=lambda r: (r.vc.total(), r.proc, r.index))
    assert log.records_after(query) == oracle


@st.composite
def notice_scripts(draw):
    """Interleaved script of notice arrivals and clock advances."""
    nprocs = draw(st.integers(2, 4))
    steps = draw(st.lists(st.one_of(
        # ("notice", proc, index, vc components)
        st.tuples(st.just("notice"), st.integers(0, nprocs - 1),
                  st.integers(1, 15),
                  st.lists(st.integers(0, 15), min_size=nprocs,
                           max_size=nprocs)),
        # ("advance", proc): node.vc = node.vc.incremented(proc)
        st.tuples(st.just("advance"), st.integers(0, nprocs - 1)),
        # ("merge", vc components): node.vc = node.vc.merged(other)
        st.tuples(st.just("merge"),
                  st.lists(st.integers(0, 15), min_size=nprocs,
                           max_size=nprocs)),
    ), min_size=1, max_size=30))
    return nprocs, steps


@given(script=notice_scripts())
@settings(max_examples=200)
def test_due_notices_memo_matches_naive_filter(script):
    nprocs, steps = script
    node = SimpleNamespace(vc=VectorClock.zero(nprocs))
    protocol = SimpleNamespace(node=node)
    copy = PageCopy(page=0, words=PAGE_WORDS)

    def naive():
        return [n for n in copy.pending_notices
                if node.vc.dominates(n.vc)]

    for step in steps:
        if step[0] == "notice":
            _, proc, index, components = step
            copy.add_notice(WriteNotice(
                page=0, proc=proc, index=index,
                vc=VectorClock(components)))
        elif step[0] == "advance":
            node.vc = node.vc.incremented(step[1])
        else:
            node.vc = node.vc.merged(VectorClock(step[1]))
        # The memoized partition must agree with the naive filter —
        # same notices, same (pending-list) order — after every
        # mutation, however the cache hits land.
        assert BaseProtocol.due_notices(protocol, copy) == naive()


# -- interval-log GC vs the unpruned log -------------------------------


@st.composite
def gc_scenarios(draw):
    """A log, a GC threshold clock, and an acquirer clock that
    dominates the threshold (the only clocks the GC safety argument
    must serve: after a barrier every processor's clock dominates the
    pruned history)."""
    nprocs = draw(st.integers(2, 4))
    records = []
    for proc, index in draw(st.lists(
            st.tuples(st.integers(0, nprocs - 1), st.integers(1, 12)),
            min_size=1, max_size=25)):
        components = [draw(st.integers(0, 12)) for _ in range(nprocs)]
        components[proc] = index
        records.append(IntervalRecord(
            proc=proc, index=index, vc=VectorClock(components),
            pages=frozenset(draw(st.sets(st.integers(0, 5),
                                         max_size=3)))))
    gc_vc = VectorClock([draw(st.integers(0, 12))
                         for _ in range(nprocs)])
    query = gc_vc.merged(VectorClock(
        [draw(st.integers(0, 12)) for _ in range(nprocs)]))
    return nprocs, records, gc_vc, query


@given(scenario=gc_scenarios())
@settings(max_examples=200)
def test_pruned_log_matches_unpruned_for_dominating_clocks(scenario):
    nprocs, records, gc_vc, query = scenario
    pruned = IntervalLog()
    oracle = IntervalLog()
    for record in records:
        pruned.add(record)
        oracle.add(record)
    dropped = pruned.prune_dominated(gc_vc)
    # Only records below the threshold may disappear...
    assert all(gc_vc.dominates(oracle.get(iid).vc) for iid in dropped)
    # ...and any acquirer whose clock dominates the threshold sees
    # exactly what the never-pruned log would send it.
    assert pruned.records_after(query) == oracle.records_after(query)
    assert pruned.records_after(gc_vc) == oracle.records_after(gc_vc)


@given(scenario=gc_scenarios())
@settings(max_examples=100)
def test_pruned_log_survives_rckp_round_trip(scenario):
    nprocs, records, gc_vc, query = scenario
    pruned = IntervalLog()
    oracle = IntervalLog()
    for record in records:
        pruned.add(record)
        oracle.add(record)
    pruned.prune_dominated(gc_vc)
    payload = _encode_interval_log(
        SimpleNamespace(interval_log=pruned))
    restored = IntervalLog()
    reader = _Reader(payload, nprocs)
    _restore_interval_log(reader, SimpleNamespace(
        interval_log=restored))
    assert reader.done()
    assert len(restored) == len(pruned)
    # The checkpointed-and-restored GC'd log serves acquirers the same
    # records (ids, clocks, page sets) as the never-pruned oracle.
    def keyed(found):
        return [(r.interval_id, r.vc, r.pages) for r in found]
    assert keyed(restored.records_after(query)) \
        == keyed(oracle.records_after(query))


# -- RDIF blob cache vs a struct-level oracle encoding -----------------


@st.composite
def diffs_(draw):
    """A random valid diff: sorted runs with at least one word of gap
    (the decoder rejects touching runs), float64 payload."""
    nruns = draw(st.integers(1, 5))
    cursor = 0
    starts, counts, values = [], [], []
    for _ in range(nruns):
        start = cursor + draw(st.integers(1, 4))
        count = draw(st.integers(1, 4))
        cursor = start + count
        starts.append(start)
        counts.append(count)
        values.extend(draw(st.lists(
            st.floats(allow_nan=False, allow_infinity=False,
                      width=32),
            min_size=count, max_size=count)))
    payload = np.asarray(values, dtype=np.float64).tobytes()
    return Diff.from_flat(draw(st.integers(0, 500)), tuple(starts),
                          tuple(counts), payload,
                          word_size=draw(st.sampled_from((4, 8))))


def _oracle_encode(diff):
    """Independent, memo-free rendering of the documented RDIF layout
    (docs/memory.md): header, run table, payload."""
    parts = [struct.pack("<4sBBHII", b"RDIF", 1, diff.word_size, 0,
                         diff.page, len(diff.starts))]
    parts += [struct.pack("<II", start, count)
              for start, count in zip(diff.starts, diff.counts)]
    parts.append(diff.payload)
    return b"".join(parts)


@given(diff=diffs_())
@settings(max_examples=200)
def test_blob_cache_matches_oracle_encoding(diff):
    expected = _oracle_encode(diff)
    cold = encode_diff(diff)           # fills the memo
    warm = encode_diff(diff)           # serves from it
    assert cold == expected
    assert warm == expected
    # Decode validates the canonical layout and seeds the memo from
    # the source blob; the seeded re-encode must be the same bytes.
    decoded = decode_diff(expected)
    assert decoded == diff
    assert encode_diff(decoded) == expected


@given(entries=st.lists(
    st.tuples(st.integers(0, 3), st.integers(1, 9), diffs_(),
              st.booleans()),
    min_size=1, max_size=6))
@settings(max_examples=100)
def test_blob_cache_survives_rckp_diff_store_round_trip(entries):
    store = DiffStore()
    originals = {}
    for proc, index, diff, warm in entries:
        if warm:
            encode_diff(diff)          # pre-warmed memo entries mixed
        store.put(proc, index, diff)   # with cold ones
        originals.setdefault((proc, index, diff.page), diff)
    payload = _encode_diff_store(SimpleNamespace(diff_store=store))
    restored = DiffStore()
    reader = _Reader(payload, 2)
    _restore_diff_store(reader, SimpleNamespace(diff_store=restored))
    assert reader.done()
    assert len(restored) == len(originals)
    for (proc, index, page), diff in originals.items():
        twin = restored.get(proc, index, page)
        assert twin == diff
        # Restored diffs re-encode (memo seeded by decode) to exactly
        # the oracle bytes of the original.
        assert encode_diff(twin) == _oracle_encode(diff)
