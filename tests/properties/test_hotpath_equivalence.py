"""Property tests pinning the hot-path rewrites to their oracles.

Each optimized structure on the protocol critical path has a slow,
obviously-correct formulation; Hypothesis drives both through random
operation sequences and demands equality (docs/performance.md):

- :meth:`repro.mem.pages.PageCopy.record_write` (incremental run
  merge) vs append-everything-then-:func:`normalize_ranges`;
- :meth:`repro.mem.intervals.IntervalLog.records_after` (per-proc
  bisect index) vs a flat scan of the whole log;
- :meth:`repro.protocols.base.BaseProtocol.due_notices` (memoized
  incremental partition) vs a naive dominance filter, across
  interleaved notice arrivals and monotone clock advances.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.diffs import normalize_ranges
from repro.mem.intervals import IntervalLog, IntervalRecord, WriteNotice
from repro.mem.pages import PageCopy
from repro.mem.timestamps import VectorClock
from repro.protocols.base import BaseProtocol

PAGE_WORDS = 64

ranges_lists = st.lists(
    st.tuples(st.integers(0, PAGE_WORDS - 1),
              st.integers(1, 16)).map(
        lambda se: (se[0], min(PAGE_WORDS, se[0] + se[1]))),
    max_size=30)


@given(ranges=ranges_lists)
def test_record_write_matches_normalize_oracle(ranges):
    copy = PageCopy(page=0, words=PAGE_WORDS)
    for start, end in ranges:
        copy.record_write(start, end)
    assert copy.written == normalize_ranges(ranges)
    # Sorted and pairwise disjoint, as take_written_ranges relies on.
    for (_, e1), (s2, _) in zip(copy.written, copy.written[1:]):
        assert e1 < s2


@st.composite
def interval_batches(draw):
    nprocs = draw(st.integers(2, 4))
    entries = draw(st.lists(
        st.tuples(st.integers(0, nprocs - 1), st.integers(1, 12)),
        min_size=1, max_size=25))
    # Give (proc, index) a plausible clock: index at own position,
    # arbitrary small knowledge of the others.
    records = []
    for proc, index in entries:
        components = [draw(st.integers(0, 12)) for _ in range(nprocs)]
        components[proc] = index
        records.append(IntervalRecord(
            proc=proc, index=index, vc=VectorClock(components),
            pages=frozenset(draw(st.sets(st.integers(0, 5),
                                         max_size=3)))))
    query = VectorClock([draw(st.integers(0, 12))
                         for _ in range(nprocs)])
    return records, query


@given(batch=interval_batches())
def test_records_after_matches_flat_scan(batch):
    records, query = batch
    log = IntervalLog()
    for record in records:
        log.add(record)
    first_seen = {}
    for record in records:       # log.add keeps the first duplicate
        first_seen.setdefault(record.interval_id, record)
    oracle = sorted(
        (r for r in first_seen.values() if r.index > query[r.proc]),
        key=lambda r: (r.vc.total(), r.proc, r.index))
    assert log.records_after(query) == oracle


@st.composite
def notice_scripts(draw):
    """Interleaved script of notice arrivals and clock advances."""
    nprocs = draw(st.integers(2, 4))
    steps = draw(st.lists(st.one_of(
        # ("notice", proc, index, vc components)
        st.tuples(st.just("notice"), st.integers(0, nprocs - 1),
                  st.integers(1, 15),
                  st.lists(st.integers(0, 15), min_size=nprocs,
                           max_size=nprocs)),
        # ("advance", proc): node.vc = node.vc.incremented(proc)
        st.tuples(st.just("advance"), st.integers(0, nprocs - 1)),
        # ("merge", vc components): node.vc = node.vc.merged(other)
        st.tuples(st.just("merge"),
                  st.lists(st.integers(0, 15), min_size=nprocs,
                           max_size=nprocs)),
    ), min_size=1, max_size=30))
    return nprocs, steps


@given(script=notice_scripts())
@settings(max_examples=200)
def test_due_notices_memo_matches_naive_filter(script):
    nprocs, steps = script
    node = SimpleNamespace(vc=VectorClock.zero(nprocs))
    protocol = SimpleNamespace(node=node)
    copy = PageCopy(page=0, words=PAGE_WORDS)

    def naive():
        return [n for n in copy.pending_notices
                if node.vc.dominates(n.vc)]

    for step in steps:
        if step[0] == "notice":
            _, proc, index, components = step
            copy.add_notice(WriteNotice(
                page=0, proc=proc, index=index,
                vc=VectorClock(components)))
        elif step[0] == "advance":
            node.vc = node.vc.incremented(step[1])
        else:
            node.vc = node.vc.merged(VectorClock(step[1]))
        # The memoized partition must agree with the naive filter —
        # same notices, same (pending-list) order — after every
        # mutation, however the cache hits land.
        assert BaseProtocol.due_notices(protocol, copy) == naive()
