"""Tests for the multithreading extension (paper section 8)."""

import pytest

from repro.analysis.extensions import (multithreading_study,
                                       run_threaded_cholesky)
from repro.core import DsmApi, Machine, MachineConfig, NetworkConfig


def test_threaded_cholesky_still_factors_correctly():
    # finish() raises if the factorization is wrong or incomplete.
    result = run_threaded_cholesky(nprocs=4, threads=2, scale="small")
    assert result.elapsed_cycles > 0
    total = sum(r["columns"] for r in result.app_result)
    assert total == 16  # k=4 -> 16 columns, each factored exactly once


def test_threads_share_one_cpu():
    """Two compute-only threads on one node serialize: elapsed equals
    the sum of their compute, not the max."""
    machine = Machine(MachineConfig(nprocs=1,
                                    network=NetworkConfig.ideal()))
    machine.allocate("x", 8)

    def worker(proc, thread):
        api = DsmApi(machine.nodes[proc])

        def body():
            yield from api.compute(10_000)
        return body()

    result = machine.run(worker, threads_per_proc=2)
    assert result.elapsed_cycles == pytest.approx(20_000.0)


def test_intra_node_lock_handoff_is_message_free():
    """Two threads of one node exchanging a lock never touch the
    network."""
    machine = Machine(MachineConfig(nprocs=2,
                                    network=NetworkConfig.ideal()))
    seg = machine.allocate("x", 8)
    counts = []

    def worker(proc, thread):
        api = DsmApi(machine.nodes[proc])

        def body():
            if proc != 0:
                yield from api.compute(1)
                return None
            for _ in range(3):
                yield from api.acquire(0)  # lock 0 owned by proc 0
                value = yield from api.read(seg, 0)
                yield from api.write(seg, 0, value + 1)
                yield from api.release(0)
            return None
        return body()

    result = machine.run(worker, threads_per_proc=2)
    assert result.total_messages == 0
    copy = machine.nodes[0].pagetable.get(seg.first_page)
    assert copy.values[0] == 6.0


def test_bad_thread_count_rejected():
    machine = Machine(MachineConfig(nprocs=1))
    with pytest.raises(ValueError):
        machine.run(lambda p: None, threads_per_proc=0)


def test_multithreading_study_shape():
    study = multithreading_study(nprocs=4, thread_counts=(1, 2),
                                 scale="small")
    assert set(study) == {1, 2}
    for row in study.values():
        assert row["elapsed_cycles"] > 0
        assert row["messages"] > 0
