"""The generic sweep engine."""

import pytest

from repro.analysis.sweeps import Sweep, to_csv
from repro.apps import Jacobi
from repro.core import MachineConfig, NetworkConfig


def make_sweep(**kwargs):
    return Sweep(lambda: Jacobi(n=16, iterations=2),
                 base_config=MachineConfig(network=NetworkConfig.atm()),
                 **kwargs)


def test_cartesian_product_of_axes():
    sweep = make_sweep(baseline=False)
    sweep.axis("nprocs", [2, 4])
    sweep.axis("protocol", ["lh", "ei"], target="run")
    records = sweep.run()
    assert len(records) == 4
    seen = {(r.settings["nprocs"], r.settings["protocol"])
            for r in records}
    assert seen == {(2, "lh"), (2, "ei"), (4, "lh"), (4, "ei")}
    assert all(r.elapsed_cycles > 0 for r in records)


def test_baseline_speedups_computed_once():
    sweep = make_sweep(baseline=True)
    sweep.axis("nprocs", [2, 4])
    records = sweep.run()
    assert all(r.speedup is not None for r in records)


def test_custom_setter_axis():
    def set_bandwidth(config, mbps):
        return config.replace(network=NetworkConfig.atm(mbps))

    sweep = make_sweep(baseline=False)
    sweep.axis("nprocs", [2])
    sweep.axis("bandwidth", [10.0, 1000.0], setter=set_bandwidth)
    records = sweep.run()
    slow = next(r for r in records if r.settings["bandwidth"] == 10.0)
    fast = next(r for r in records
                if r.settings["bandwidth"] == 1000.0)
    assert slow.elapsed_cycles > fast.elapsed_cycles


def test_app_axis():
    sweep = Sweep(lambda n=16: Jacobi(n=n, iterations=2),
                  baseline=False)
    sweep.axis("nprocs", [2])
    sweep.axis("n", [16, 32], target="app")
    records = sweep.run()
    small, big = records
    assert big.elapsed_cycles > small.elapsed_cycles


def test_csv_round_trip(tmp_path):
    sweep = make_sweep(baseline=False)
    sweep.axis("nprocs", [2, 4])
    records = sweep.run()
    path = tmp_path / "sweep.csv"
    text = to_csv(records, str(path))
    assert path.read_text() == text
    lines = text.strip().splitlines()
    assert len(lines) == 3  # header + 2 rows
    assert "nprocs" in lines[0] and "messages" in lines[0]


def test_empty_sweep_rejected():
    with pytest.raises(ValueError):
        make_sweep().run()
    with pytest.raises(ValueError):
        make_sweep().axis("x", [1], target="nowhere")


def test_empty_records_to_csv():
    assert to_csv([]) == ""
