"""Tests for the availability study (repro.analysis.availability)."""

from repro.apps import create_app
from repro.analysis.availability import (availability_sweep,
                                         format_availability_table)
from repro.core.config import MachineConfig, NetworkConfig

APP = dict(n=16, iterations=2)
NETWORKS = (("ethernet", NetworkConfig.ethernet()),)


def _sweep(**kwargs):
    defaults = dict(config=MachineConfig(nprocs=4),
                    mttfs=(0.0, 30_000.0), mttr_us=5_000.0,
                    horizon_us=100_000.0, protocols=("li",),
                    networks=NETWORKS, max_events=200_000)
    defaults.update(kwargs)
    return availability_sweep(lambda: create_app("jacobi", **APP),
                              **defaults)


def test_sweep_reports_baseline_and_crash_cells():
    results = _sweep()
    points = results[("li", "ethernet")]
    baseline, crashed = points
    assert baseline.mttf_us == 0.0
    assert baseline.completion_rate == 1.0
    assert baseline.crashes == 0
    assert baseline.message_overhead == 1.0
    assert crashed.crashes > 0
    assert crashed.recoveries > 0
    assert crashed.completion_rate == 1.0  # crash-recover completes
    assert crashed.mean_outage_cycles > 0
    assert crashed.message_overhead >= 1.0
    table = format_availability_table(results)
    assert "complete" in table and "ethernet" in table


def test_sweep_is_deterministic():
    assert _sweep() == _sweep()


def test_crash_stop_lowers_completion_rate():
    """MTTR 0 means nodes never come back: the crash cell must lose
    workers (the dead node's, plus any survivor blocked on it)."""
    results = _sweep(mttfs=(0.0, 20_000.0), mttr_us=0.0,
                     max_events=150_000)
    baseline, crashed = results[("li", "ethernet")]
    assert baseline.completion_rate == 1.0
    assert crashed.crashes > 0
    assert crashed.recoveries == 0
    assert crashed.completion_rate < 1.0
