"""Tests for the ``repro profile`` host/simulated-time attribution,
including the protocol-time buckets (interval-bookkeeping vs diff vs
vector-clock)."""

from repro.analysis.profiling import (PROTOCOL_BUCKETS, ProfileReport,
                                      _protocol_bucket, format_profile,
                                      profile_spec)
from repro.core.config import MachineConfig, NetworkConfig
from repro.lab.spec import RunSpec


def _spec():
    return RunSpec("jacobi", dict(n=48, iterations=3), protocol="li",
                   config=MachineConfig(nprocs=4,
                                        network=NetworkConfig.atm()))


class TestProtocolBucket:
    def test_vector_clock_file(self):
        assert _protocol_bucket("/x/src/repro/mem/timestamps.py",
                                "merged") == "vector-clock"

    def test_diff_files(self):
        assert _protocol_bucket("/x/src/repro/mem/diffs.py",
                                "apply") == "diff"
        assert _protocol_bucket("/x/src/repro/mem/wire.py",
                                "encode_diff") == "diff"

    def test_intervals_file_split_by_class(self):
        # intervals.py holds both the interval log and the DiffStore;
        # DiffStore's methods count as diff machinery.
        assert _protocol_bucket("/x/src/repro/mem/intervals.py",
                                "add_if_new") == "interval-bookkeeping"
        assert _protocol_bucket("/x/src/repro/mem/intervals.py",
                                "records_after") == "interval-bookkeeping"
        assert _protocol_bucket("/x/src/repro/mem/intervals.py",
                                "prune_intervals") == "diff"

    def test_protocols_by_function_name(self):
        base = "/x/src/repro/protocols/base.py"
        assert _protocol_bucket(base, "seal_interval") \
            == "interval-bookkeeping"
        assert _protocol_bucket(base, "incorporate_records") \
            == "interval-bookkeeping"
        assert _protocol_bucket(base, "due_notices") \
            == "interval-bookkeeping"
        assert _protocol_bucket(base, "collect_garbage") \
            == "interval-bookkeeping"
        assert _protocol_bucket(base, "_serve_diff_request") == "diff"
        assert _protocol_bucket(base, "store_diffs") == "diff"
        assert _protocol_bucket(base, "lazy_miss") == "protocol (other)"

    def test_non_protocol_code_is_unbucketed(self):
        assert _protocol_bucket("/x/src/repro/sim/engine.py",
                                "run_until") is None
        assert _protocol_bucket("/usr/lib/python3/heapq.py",
                                "heappush") is None


class TestProfileSpec:
    def test_report_has_all_buckets_and_interval_time(self):
        report = profile_spec(_spec(), top=5)
        assert set(report.protocol_seconds) == set(PROTOCOL_BUCKETS)
        assert all(seconds >= 0.0
                   for seconds in report.protocol_seconds.values())
        # A lazy-protocol run cannot avoid interval bookkeeping.
        assert report.protocol_seconds["interval-bookkeeping"] > 0.0
        assert report.events > 0

    def test_profiled_result_is_bit_identical(self):
        from tests.perf.parity import canonical_dump
        import json
        spec = _spec()
        report = profile_spec(spec, top=0)
        profiled = json.dumps(report.result.to_dict(),
                              sort_keys=True, indent=1)
        assert profiled == canonical_dump(spec)

    def test_format_includes_bucket_section(self):
        report = profile_spec(_spec(), top=3)
        text = format_profile(report, top=3)
        assert "protocol-time buckets" in text
        for name in PROTOCOL_BUCKETS:
            assert name in text
