"""Ablation studies: each isolated mechanism must move the needle in
the expected direction (small scale for test speed)."""

import pytest

from repro.analysis.ablations import (ablate_diff_encoding,
                                      ablate_hybrid_heuristic,
                                      ablate_lazy_overhead_factor,
                                      ablate_lock_broadcast)


def test_diff_encoding_saves_data():
    results = ablate_diff_encoding(app="water", nprocs=4,
                                   scale="small")
    diffs = results["diffs"]
    pages = results["whole_pages"]
    assert pages.data_kbytes > 1.5 * diffs.data_kbytes
    assert pages.elapsed_cycles > diffs.elapsed_cycles
    # Near-identical protocol decisions: only the pricing changed
    # (message timing shifts can add the odd extra fetch).
    assert pages.total_messages == pytest.approx(
        diffs.total_messages, rel=0.1)


def test_hybrid_heuristic_controls_misses_and_data():
    results = ablate_hybrid_heuristic(app="water", nprocs=4,
                                      scale="small")
    copyset = results["copyset"]
    always = results["always"]
    never = results["never"]
    # Never piggybacking forces invalidations -> more access misses.
    assert never.access_misses >= copyset.access_misses
    # Always piggybacking ships at least as much data on grants.
    assert always.data_kbytes >= copyset.data_kbytes
    # The heuristic stays within the two extremes on data.
    assert copyset.data_kbytes <= always.data_kbytes + 1e-9


def test_lock_broadcast_trades_messages_for_hops():
    results = ablate_lock_broadcast(app="cholesky", nprocs=4,
                                    scale="small")
    forwarding = results["forwarding"]
    broadcast = results["broadcast"]
    # Broadcast sends more request messages...
    assert broadcast.sync_messages > forwarding.sync_messages
    # ...and both produce the correct factorization (finish() checks).
    assert broadcast.elapsed_cycles > 0


def test_lazy_overhead_factor_costs_time_not_messages():
    results = ablate_lazy_overhead_factor(app="water", nprocs=4,
                                          scale="small")
    doubled = results["doubled"]
    flat = results["flat"]
    assert flat.elapsed_cycles < doubled.elapsed_cycles
    assert flat.total_messages == pytest.approx(
        doubled.total_messages, rel=0.1)


def test_unknown_protocol_option_rejected():
    from repro.core import Machine, MachineConfig
    with pytest.raises(ValueError, match="tunable"):
        Machine(MachineConfig(nprocs=2), protocol="lh",
                protocol_options={"warp_speed": True})
