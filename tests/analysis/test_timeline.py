"""Message timeline tap tests, including the paper's EU statistic."""

from repro.analysis.timeline import MessageTimeline, attach_timeline
from repro.apps import Water
from repro.core import DsmApi, Machine, MachineConfig, NetworkConfig
from repro.net.message import MsgKind


def run_water(protocol, nmols=16):
    app = Water(nmols=nmols, steps=1)
    machine = Machine(MachineConfig(nprocs=4,
                                    network=NetworkConfig.atm()),
                      protocol=protocol)
    timeline = attach_timeline(machine)
    shared = app.setup(machine)
    machine.run(lambda p: app.worker(DsmApi(machine.nodes[p]), p,
                                     shared))
    return timeline


def test_timeline_counts_match_kinds():
    timeline = run_water("lh")
    assert len(timeline) > 0
    by_kind = timeline.count_by_kind()
    assert sum(by_kind.values()) == len(timeline)
    assert by_kind.get(MsgKind.BARRIER_ARRIVE, 0) >= 3


def test_events_are_time_ordered():
    timeline = run_water("li")
    times = [event.time for event in timeline.events]
    assert times == sorted(times)


def test_between_and_pair_matrix():
    timeline = run_water("lh")
    total = len(timeline.events)
    first_half = timeline.between(0.0, timeline.events[-1].time / 2)
    assert 0 < len(first_half) < total
    matrix = timeline.pair_matrix()
    assert sum(matrix.values()) == total
    assert timeline.busiest_pair() in matrix
    assert timeline.rate_per_mcycle() > 0


def test_eu_flush_messages_dominate():
    """Paper section 6.2: '91% of EU's messages are updates sent
    during lock releases.'  In our accounting that's the FLUSH +
    FLUSH_ACK traffic."""
    timeline = run_water("eu", nmols=24)
    by_kind = timeline.count_by_kind()
    flush_traffic = (by_kind.get(MsgKind.FLUSH, 0)
                     + by_kind.get(MsgKind.FLUSH_ACK, 0))
    assert flush_traffic / len(timeline) > 0.5


def test_empty_timeline_is_graceful():
    timeline = MessageTimeline()
    assert timeline.count_by_kind() == {}
    assert timeline.busiest_pair() is None
    assert timeline.rate_per_mcycle() == 0.0
    assert timeline.fraction_by_kind(MsgKind.FLUSH) == 0.0
