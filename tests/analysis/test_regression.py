"""Bench regression sentinel: paired-median-ratio math, section
verdicts, the read-modify-write summary file, and the CLI exit code."""

import json

import pytest

from repro.core.config import MachineConfig, NetworkConfig
from repro.lab.spec import RunSpec
from repro.analysis.regression import (BENCH_SUMMARY_SCHEMA,
                                       core_section, lab_section,
                                       main, paired_median_ratio,
                                       serving_section,
                                       update_summary)


def _core_record(round_rates, byte_identical=True):
    return {
        "events": 1000,
        "events_per_second": 50_000.0,
        "rate_spread": 0.02,
        "tracer_nullsink_overhead": 0.001,
        "byte_identical": byte_identical,
        "round_rates": round_rates,
        "workload": RunSpec(
            "jacobi", {"n": 16, "iterations": 2}, protocol="li",
            config=MachineConfig(nprocs=2,
                                 network=NetworkConfig.atm()),
        ).to_dict(),
    }


# -- paired median ratio ------------------------------------------------


def test_paired_median_ratio_pairs_by_slot():
    # Two interpreters, rates halved across the board -> ratio 0.5;
    # the pairing is positional, not a comparison of pooled medians.
    fresh = [[50.0, 60.0], [70.0, 80.0]]
    base = [[100.0, 120.0], [140.0, 160.0]]
    assert paired_median_ratio(fresh, base) == 0.5


def test_paired_median_ratio_median_ignores_outlier_round():
    # One lucky fresh round (10x) does not move the median verdict.
    fresh = [[100.0, 100.0, 1000.0]]
    base = [[100.0, 100.0, 100.0]]
    assert paired_median_ratio(fresh, base) == 1.0


def test_paired_median_ratio_drops_unmatched_tail():
    # Fresh record sampled fewer rounds and fewer interpreters: the
    # comparison covers only the common (interpreter, round) slots.
    fresh = [[50.0]]
    base = [[100.0, 999.0], [999.0]]
    assert paired_median_ratio(fresh, base) == 0.5


def test_paired_median_ratio_rejects_unpairable_records():
    with pytest.raises(ValueError, match="no pairable rounds"):
        paired_median_ratio([], [[100.0]])
    with pytest.raises(ValueError, match="no pairable rounds"):
        paired_median_ratio([[50.0]], [[0.0]])


# -- core section verdicts ----------------------------------------------


def test_core_section_ok_within_threshold():
    record = _core_record([[95.0, 96.0]])
    baseline = _core_record([[100.0, 100.0]])
    section = core_section(record, baseline, threshold=0.10)
    assert section["status"] == "ok"
    assert section["median_ratio_vs_baseline"] == 0.95
    assert section["threshold"] == 0.10


def test_core_section_flags_regression():
    record = _core_record([[80.0, 81.0]])
    baseline = _core_record([[100.0, 100.0]])
    section = core_section(record, baseline, threshold=0.10)
    assert section["status"] == "regression"
    assert "attribution" not in section  # only with attribute=True


def test_core_section_flags_improvement():
    section = core_section(_core_record([[130.0, 131.0]]),
                           _core_record([[100.0, 100.0]]),
                           threshold=0.10)
    assert section["status"] == "improved"


def test_core_section_anomaly_beats_rate_comparison():
    # A non-byte-identical run is a correctness problem; no ratio is
    # computed even though the rates would look fine.
    section = core_section(_core_record([[100.0]],
                                        byte_identical=False),
                           _core_record([[100.0]]), threshold=0.10)
    assert section["status"] == "anomaly"
    assert "median_ratio_vs_baseline" not in section


def test_core_section_missing_and_no_baseline():
    assert core_section(None, None, 0.10) == {"status": "missing"}
    section = core_section(_core_record([[100.0]]), None, 0.10)
    assert section["status"] == "no-baseline"


def test_core_section_regression_attribution():
    # attribute=True re-profiles the recorded workload and attaches
    # where the cycles went (shares over subsystem and protocol
    # buckets, each summing to ~1 over the reported top slice).
    section = core_section(_core_record([[50.0]]),
                           _core_record([[100.0]]),
                           threshold=0.10, attribute=True)
    assert section["status"] == "regression"
    hints = section["attribution"]
    assert 1 <= len(hints["top_subsystems"]) <= 3
    for hint in hints["top_subsystems"]:
        assert 0.0 <= hint["share"] <= 1.0
    assert hints["top_protocol_buckets"]


# -- lab and serving sections -------------------------------------------


def _lab_record(**overrides):
    record = {
        "parallel_speedup": 2.5, "effective_jobs": 4,
        "executor_startup_seconds": 0.2, "warm_executed": 0,
        "byte_identical": True,
    }
    record.update(overrides)
    return record


def test_lab_section_verdicts():
    assert lab_section(None) == {"status": "missing"}
    assert lab_section(_lab_record())["status"] == "ok"
    assert lab_section(
        _lab_record(parallel_speedup=0.9))["status"] == "regression"
    assert lab_section(
        _lab_record(byte_identical=False))["status"] == "anomaly"
    # A warm cache that re-executed jobs is a caching bug, not slowness.
    assert lab_section(
        _lab_record(warm_executed=3))["status"] == "anomaly"


def test_serving_section_capacity_per_cell():
    sweep = {"cells": [
        {"protocol": "lh", "network": "atm", "points": [
            {"offered_rps": 10_000, "slo_attainment": 1.0},
            {"offered_rps": 20_000, "slo_attainment": 0.95},
            {"offered_rps": 40_000, "slo_attainment": 0.50},
        ]},
        {"protocol": "eu", "network": "eth", "points": [
            {"offered_rps": 10_000, "slo_attainment": 0.2},
        ]},
    ]}
    section = serving_section(sweep, attainment=0.9)
    assert section["status"] == "ok"
    lh, eu = section["cells"]
    assert lh["capacity_rps"] == 20_000  # highest rate still >= 0.9
    assert lh["rates_probed"] == 3
    assert eu["capacity_rps"] == 0.0     # never met the target
    assert serving_section(None) == {"status": "missing"}


# -- summary file and CLI -----------------------------------------------


def test_update_summary_read_modify_write(tmp_path):
    out = tmp_path / "BENCH_summary.json"
    update_summary(out, "core", {"status": "ok"})
    update_summary(out, "lab", {"status": "missing"})
    summary = json.loads(out.read_text())
    assert summary["schema"] == BENCH_SUMMARY_SCHEMA
    assert summary["sections"] == {"core": {"status": "ok"},
                                   "lab": {"status": "missing"}}
    # Re-writing a section replaces it without touching the others.
    update_summary(out, "core", {"status": "regression"})
    summary = json.loads(out.read_text())
    assert summary["sections"]["core"] == {"status": "regression"}
    assert summary["sections"]["lab"] == {"status": "missing"}


def test_update_summary_discards_foreign_schema(tmp_path):
    out = tmp_path / "BENCH_summary.json"
    out.write_text(json.dumps({"schema": "something-else/9",
                               "sections": {"core": {"x": 1}}}))
    update_summary(out, "lab", {"status": "ok"})
    summary = json.loads(out.read_text())
    assert summary["schema"] == BENCH_SUMMARY_SCHEMA
    assert summary["sections"] == {"lab": {"status": "ok"}}


def _write(path, record):
    path.write_text(json.dumps(record))
    return str(path)


def test_main_exit_codes(tmp_path, capsys):
    core = _write(tmp_path / "core.json", _core_record([[100.0]]))
    base = _write(tmp_path / "base.json", _core_record([[100.0]]))
    out = tmp_path / "BENCH_summary.json"
    argv = ["--core", core, "--core-baseline", base,
            "--core32", str(tmp_path / "absent.json"),
            "--lab", str(tmp_path / "absent.json"),
            "--out", str(out)]
    assert main(argv) == 0
    printed = capsys.readouterr().out
    assert "core: ok" in printed
    assert "core32: missing" in printed
    summary = json.loads(out.read_text())
    assert summary["schema"] == BENCH_SUMMARY_SCHEMA
    assert set(summary["sections"]) == {"core", "core32", "lab",
                                        "serving"}

    # Doctor a regression into the fresh record: non-zero exit.
    slow = _write(tmp_path / "slow.json", _core_record([[50.0]]))
    assert main(["--core", slow, "--core-baseline", base,
                 "--core32", str(tmp_path / "absent.json"),
                 "--lab", str(tmp_path / "absent.json"),
                 "--out", str(out)]) == 1
    assert "FAIL" in capsys.readouterr().out
    assert (json.loads(out.read_text())["sections"]["core"]["status"]
            == "regression")
