"""Latency percentiles, SLO reports, capacity sweeps, and tail
attribution (docs/serving.md)."""

import pytest

from repro.analysis.serving import (attribute_tail, build_report,
                                    capacity_sweep,
                                    format_attribution_table,
                                    format_serving_table, percentile,
                                    serving_grid, sweep_to_json)
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.runner import run_app
from repro.apps import create_app
from repro.lab import Lab
from repro.obs import CausalTrace, MemorySink, Observability, Tracer

SMALL = dict(requests=40, read_fraction=0.9, zipf_s=0.99)


# -- percentiles against hand-computed fixtures -------------------------


def test_percentile_nearest_rank_hand_fixtures():
    values = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0,
              100.0]
    # Nearest rank: sorted[ceil(p/100 * 10) - 1].
    assert percentile(values, 50) == 50.0    # ceil(5) -> index 4
    assert percentile(values, 90) == 90.0    # ceil(9) -> index 8
    assert percentile(values, 99) == 100.0   # ceil(9.9) -> index 9
    assert percentile(values, 99.9) == 100.0
    assert percentile(values, 100) == 100.0
    assert percentile(values, 10) == 10.0
    assert percentile(values, 1) == 10.0     # ceil(0.1) -> index 0


def test_percentile_single_and_empty():
    assert percentile([], 99) == 0.0
    assert percentile([42.0], 50) == 42.0
    assert percentile([42.0], 99.9) == 42.0


def test_percentile_rejects_out_of_domain():
    with pytest.raises(ValueError):
        percentile([1.0], 0)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_build_report_hand_fixture():
    # Two requests at 40 cycles/us: latencies 400 and 4000 cycles
    # (10 us and 100 us), arrivals at 0 and 400 cycles, last done at
    # 4400 cycles = 110 us -> 2 requests / 110 us.
    app_result = [
        {"proc": 0, "requests": [[0, 1, 1, 0.0, 0.0, 400.0]]},
        {"proc": 1, "requests": [[1, 2, 0, 400.0, 400.0, 4400.0]]},
    ]
    report = build_report(app_result, cpu_mhz=40.0, protocol="lh",
                          network="atm", offered_rps=20_000.0,
                          slo_us=50.0)
    assert report.completed == 2
    assert report.p50_us == pytest.approx(10.0)
    assert report.p99_us == pytest.approx(100.0)
    assert report.p999_us == pytest.approx(100.0)
    assert report.max_us == pytest.approx(100.0)
    assert report.mean_us == pytest.approx(55.0)
    assert report.slo_attainment == pytest.approx(0.5)
    assert report.achieved_rps == pytest.approx(2 / 110e-6)


def test_build_report_empty():
    report = build_report([], cpu_mhz=40.0, protocol="lh",
                          network="atm", offered_rps=1.0)
    assert report.completed == 0
    assert report.achieved_rps == 0.0
    assert report.slo_attainment == 0.0


# -- grid and sweep through the lab -------------------------------------


def test_serving_grid_covers_protocols_x_networks():
    with Lab() as lab:
        reports = serving_grid(
            rate_rps=40_000.0, protocols=("li", "lh"),
            networks=(("ethernet", NetworkConfig.ethernet()),
                      ("atm", NetworkConfig.atm())),
            scale="small", config=MachineConfig(nprocs=4),
            overrides=SMALL, lab=lab)
    assert [(r.protocol, r.network) for r in reports] == [
        ("li", "ethernet"), ("li", "atm"),
        ("lh", "ethernet"), ("lh", "atm")]
    for report in reports:
        assert report.completed == SMALL["requests"]
        assert report.p50_us <= report.p99_us <= report.p999_us
        assert report.p999_us <= report.max_us
    table = format_serving_table(reports)
    assert "p999us" in table
    assert len(table.splitlines()) == 5


def test_capacity_sweep_orders_rates_and_serializes():
    rates = [10_000.0, 80_000.0]
    with Lab() as lab:
        curves = capacity_sweep(
            rates_rps=rates, protocols=("lh",),
            networks=(("atm", NetworkConfig.atm()),),
            scale="small", config=MachineConfig(nprocs=4),
            overrides=SMALL, lab=lab)
    points = curves[("lh", "atm")]
    assert [p.offered_rps for p in points] == rates
    # More offered load cannot improve SLO attainment.
    assert points[0].slo_attainment >= points[1].slo_attainment
    dump = sweep_to_json(curves)
    assert dump["cells"][0]["protocol"] == "lh"
    assert len(dump["cells"][0]["points"]) == 2
    import json
    json.dumps(dump)  # must be JSON-clean for the CI artifact


def test_capacity_sweep_rejects_empty_rates():
    with pytest.raises(ValueError, match="non-empty"):
        capacity_sweep(rates_rps=[])


# -- tail attribution ---------------------------------------------------


def _traced_run():
    sink = MemorySink()
    obs = Observability(tracer=Tracer(sink))
    run_app(create_app("kvstore", nkeys=16, value_words=8, shards=4,
                       requests=60, rate_rps=40_000.0),
            MachineConfig(nprocs=4, network=NetworkConfig.atm()),
            protocol="lh", obs=obs)
    return CausalTrace(sink.events)


def test_attribute_tail_decomposes_slowest_requests():
    trace = _traced_run()
    assert len(trace.requests) == 60
    rows = attribute_tail(trace, top=5)
    assert len(rows) == 5
    latencies = [r.latency for r in rows]
    assert latencies == sorted(latencies, reverse=True)
    # The slowest requests are the tail of the trace's own index.
    worst = max(trace.requests.values(), key=lambda r: r.latency)
    assert rows[0].req_id == worst.req_id
    for row in rows:
        assert row.queue_wait >= 0
        assert row.overhead >= 0
        # Queue wait plus service-window parts covers the latency
        # (overhead is the clamped residual of the service window).
        service_parts = (row.compute + row.diff + row.wire
                         + row.contention + row.overhead)
        assert row.queue_wait + service_parts >= row.latency * 0.99
    table = format_attribution_table(rows)
    assert len(table.splitlines()) == 6
    assert "queue" in table.splitlines()[0]


def test_requests_index_links_arrive_and_done():
    trace = _traced_run()
    for record in trace.requests.values():
        assert record.done_ts is not None
        assert record.start_ts is not None
        assert record.start_ts >= record.arrival
        assert record.latency == pytest.approx(
            record.done_ts - record.arrival)
        assert record.queue_wait == pytest.approx(
            record.start_ts - record.arrival)


# -- windowed latency series (docs/observability.md) --------------------


def test_windowed_reports_hand_fixture():
    # 40 cycles/µs, 100 µs windows (4000 cycles).  Completions at
    # 400, 4400, and 8400 cycles land in windows 0, 1, and 2;
    # latencies 10 µs, 100 µs, and 150 µs against a 50 µs SLO at a
    # 0.9 target give burn rates 0, 10, 10 (violating fraction / 0.1).
    from repro.analysis.serving import windowed_reports

    app_result = [
        {"proc": 0, "requests": [[0, 1, 1, 0.0, 0.0, 400.0],
                                 [2, 3, 0, 2400.0, 2400.0, 8400.0]]},
        {"proc": 1, "requests": [[1, 2, 0, 400.0, 400.0, 4400.0]]},
    ]
    windows = windowed_reports(app_result, cpu_mhz=40.0,
                               window_us=100.0, slo_us=50.0,
                               slo_target=0.9)
    assert [w.completed for w in windows] == [1, 1, 1]
    assert windows[0].t0_us == 0.0 and windows[0].t1_us == 100.0
    assert windows[0].p99_us == pytest.approx(10.0)
    assert windows[0].burn_rate == 0.0
    assert windows[1].p50_us == pytest.approx(100.0)
    assert windows[1].burn_rate == pytest.approx(10.0)
    assert windows[2].p99_us == pytest.approx(150.0)
    assert windows[2].slo_violations == 1


def test_windowed_reports_emits_empty_windows_between():
    from repro.analysis.serving import windowed_reports

    app_result = [{"proc": 0,
                   "requests": [[0, 1, 0, 0.0, 0.0, 400.0],
                                [1, 1, 0, 0.0, 0.0, 12400.0]]}]
    windows = windowed_reports(app_result, cpu_mhz=40.0,
                               window_us=100.0)
    assert len(windows) == 4  # completions in windows 0 and 3
    assert [w.completed for w in windows] == [1, 0, 0, 1]
    assert windows[1].burn_rate == 0.0
    assert windows[1].p99_us == 0.0


def test_windowed_reports_validation_and_empty():
    from repro.analysis.serving import windowed_reports

    assert windowed_reports([], cpu_mhz=40.0, window_us=100.0) == []
    with pytest.raises(ValueError, match="window must be > 0"):
        windowed_reports([], cpu_mhz=40.0, window_us=0.0)
    with pytest.raises(ValueError, match=r"within \(0, 1\)"):
        windowed_reports([], cpu_mhz=40.0, window_us=1.0,
                         slo_target=1.5)


def test_windowed_reports_matches_live_sampler():
    # The post-hoc series (from cached request records) must agree
    # with what the live sampler recorded during the same run.
    from repro.analysis.serving import windowed_reports
    from repro.obs import TimeseriesSampler
    from repro.serve.workload import SERVE_APP_PARAMS

    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    sampler = TimeseriesSampler(window_us=200.0)
    result = run_app(create_app("kvstore", **SERVE_APP_PARAMS["small"]),
                     config, protocol="lh", sampler=sampler)
    posthoc = windowed_reports(result.app_result, config.cpu_mhz,
                               window_us=200.0)
    live = {w.index: w for w in sampler.windows}
    for w in posthoc:
        live_w = live.get(w.index)
        if live_w is None:      # live run ended before this boundary
            continue
        assert live_w.requests == w.completed
        assert live_w.p50_us == pytest.approx(w.p50_us)
        assert live_w.p99_us == pytest.approx(w.p99_us)
        assert live_w.burn_rate == pytest.approx(w.burn_rate)


def test_format_window_table():
    from repro.analysis.serving import WindowReport, format_window_table

    table = format_window_table([WindowReport(
        index=0, t0_us=0.0, t1_us=100.0, completed=3, p50_us=12.0,
        p99_us=80.0, slo_violations=1, burn_rate=333.33)])
    header, row = table.splitlines()
    assert "burn" in header and "p99us" in header
    assert "333.33" in row
