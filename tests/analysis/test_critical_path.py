"""Critical-path reconciliation and the Chrome trace export.

The headline invariant: the walker attributes contiguous,
non-overlapping spans, so its category totals sum exactly to the
elapsed time — checked here against the metrics registry's
simulated-time totals for every application x protocol x network
combination (the acceptance gate is 1%; the walk is in fact exact up
to float rounding).
"""

import pytest

from repro.analysis.contention import (contention_report,
                                       format_contention)
from repro.analysis.critical_path import (CATEGORIES, critical_path)
from repro.analysis.experiments import APP_PARAMS
from repro.apps import APP_NAMES, create_app
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.runner import run_app
from repro.obs import (CausalTrace, MemorySink, Observability, Tracer,
                       chrome_trace, validate_chrome_trace)
from repro.protocols import PROTOCOL_NAMES

NETWORKS = {
    "atm": NetworkConfig.atm,
    "ethernet": NetworkConfig.ethernet,
}


def traced(app, protocol, network, nprocs=4):
    sink = MemorySink()
    obs = Observability(tracer=Tracer(sink))
    result = run_app(
        create_app(app, **APP_PARAMS["small"][app]),
        MachineConfig(nprocs=nprocs, network=NETWORKS[network]()),
        protocol=protocol, obs=obs)
    return CausalTrace(sink.events), result


@pytest.mark.parametrize("network", sorted(NETWORKS))
@pytest.mark.parametrize("app", APP_NAMES)
def test_critical_path_reconciles_every_protocol(app, network):
    """4 apps x 5 protocols x 2 networks: categories must sum to the
    registry's elapsed simulated time within 1%."""
    for protocol in PROTOCOL_NAMES:
        trace, result = traced(app, protocol, network)
        path = critical_path(trace)
        label = f"{app}/{protocol}/{network}"
        assert path.total == pytest.approx(trace.elapsed,
                                           rel=1e-9), label
        assert path.total == pytest.approx(result.elapsed_cycles,
                                           rel=0.01), label
        assert set(path.categories) == set(CATEGORIES)
        assert all(v >= 0 for v in path.categories.values()), label
        assert path.categories["compute"] > 0, label
        assert 0 < path.steps < 100_000, label


def test_segments_tile_the_elapsed_time():
    trace, _ = traced("jacobi", "li", "atm")
    path = critical_path(trace, keep_segments=True)
    assert path.segments
    # Newest-first, contiguous, non-overlapping, covering (0, elapsed].
    spans = [s for s in path.segments if s.t1 > s.t0]
    assert spans[0].t1 == pytest.approx(trace.elapsed)
    for newer, older in zip(spans, spans[1:]):
        assert newer.t0 == pytest.approx(older.t1)
    assert spans[-1].t0 == pytest.approx(0.0, abs=1e-9)
    total = sum(s.t1 - s.t0 for s in spans)
    assert total == pytest.approx(trace.elapsed, rel=1e-9)


def test_ethernet_backoff_shows_up_as_contention():
    """The collision story: on the Ethernet the same run pays far
    more contention-stall on its critical path than on the ATM."""
    atm_trace, _ = traced("jacobi", "lh", "atm")
    eth_trace, _ = traced("jacobi", "lh", "ethernet")
    atm = critical_path(atm_trace).categories["contention"]
    eth = critical_path(eth_trace).categories["contention"]
    assert eth > atm


def test_empty_trace_degrades_gracefully():
    path = critical_path(CausalTrace([]))
    assert path.total == 0.0
    assert path.start_proc is None
    assert path.steps == 0


# -- Chrome trace-event export -----------------------------------------


def test_chrome_trace_validates_with_flow_events():
    trace, _ = traced("water", "lh", "atm")
    exported = chrome_trace(trace)
    assert validate_chrome_trace(exported) == []
    events = exported["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "X", "s", "f"} <= phases
    starts = [e for e in events if e["ph"] == "s"]
    finishes = {e["id"] for e in events if e["ph"] == "f"}
    assert starts
    assert {e["id"] for e in starts} == finishes
    # Every flow id is a traced message delivered somewhere.
    for start in starts:
        assert start["id"] in trace.messages


def test_chrome_trace_is_json_serializable():
    import json

    trace, _ = traced("jacobi", "li", "atm")
    text = json.dumps(chrome_trace(trace))
    assert validate_chrome_trace(json.loads(text)) == []


def test_validator_flags_broken_traces():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "Q"}]}) != []
    dangling = {"traceEvents": [
        {"ph": "s", "pid": 1, "tid": 0, "ts": 0, "cat": "msg",
         "id": 1, "name": "flow"}]}
    assert any("flow" in error
               for error in validate_chrome_trace(dangling))


# -- contention profiles -----------------------------------------------


def test_contention_report_counts_locks_pages_links():
    trace, _ = traced("water", "lh", "atm")
    report = contention_report(trace)
    assert report.locks                   # per-molecule locks
    assert report.pages                   # page misses
    assert report.links                   # every traced message
    messages = sum(p.messages for p in report.links.values())
    assert messages == len(trace.messages)
    text = format_contention(report, top=5)
    assert "hot locks" in text and "hot links" in text
