"""Report formatting and the experiment plumbing (small scale)."""

import pytest

from repro.analysis import (format_curve_table, format_matrix,
                            paper_vs_measured, protocol_sweep)
from repro.core import NetworkConfig


@pytest.fixture(scope="module")
def sweep():
    return protocol_sweep("jacobi", NetworkConfig.atm(),
                          proc_counts=[1, 2], protocols=["lh", "ei"],
                          scale="small")


def test_sweep_structure(sweep):
    assert set(sweep.curves) == {"lh", "ei"}
    curve = sweep.curves["lh"]
    assert curve.speedup[1] == pytest.approx(1.0)
    assert curve.messages[1] == 0
    assert sweep.baseline_cycles > 0
    assert sweep.best_protocol_at(2) in ("lh", "ei")


def test_format_curve_table(sweep):
    sweep.figure = "figX"
    sweep.title = "demo"
    text = format_curve_table(sweep)
    lines = text.splitlines()
    assert lines[0].startswith("== figX")
    assert "1p" in lines[1] and "2p" in lines[1]
    assert any(line.startswith("   lh") for line in lines)


def test_format_curve_table_other_metric(sweep):
    text = format_curve_table(sweep, "messages", fmt="{:8.0f}")
    assert "ei" in text


def test_format_matrix_handles_missing_cells():
    rows = {"a": {"x": 1.0}, "b": {"x": 2.0, "y": 3.0}}
    text = format_matrix("demo", rows, col_order=["x", "y"])
    assert "demo" in text
    assert "-" in text  # missing a/y rendered as dash
    assert "3.00" in text


def test_paper_vs_measured_formats():
    line = paper_vs_measured("fig6 peak", 5.2, 4.8)
    assert "5.20" in line and "4.80" in line
    line2 = paper_vs_measured("unknown", None, 1.0)
    assert "n/a" in line2
