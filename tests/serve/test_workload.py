"""The open-loop generator: validation, shape, and the determinism
property the lab cache and per-node multiplexing stand on."""

import json
import os
import subprocess
import sys
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.serve.workload import (SERVE_APP_PARAMS, Request,
                                  generate_requests, node_schedules,
                                  validate_workload, write_counts,
                                  zipf_cdf)

GEN_ARGS = dict(nkeys=16, requests=200, rate_rps=50_000.0,
                read_fraction=0.8, zipf_s=0.99, nclients=1_000_000,
                arrival="poisson", seed=1993)


# -- validation ---------------------------------------------------------


@pytest.mark.parametrize("field,value,message", [
    ("rate_rps", 0.0, "arrival rate"),
    ("rate_rps", -5.0, "arrival rate"),
    ("read_fraction", -0.1, "read fraction"),
    ("read_fraction", 1.5, "read fraction"),
    ("zipf_s", -0.01, "Zipf exponent"),
    ("nkeys", 0, "at least one key"),
    ("requests", 0, "at least one request"),
    ("nclients", 0, "at least one client"),
    ("arrival", "bursty", "arrival mode"),
])
def test_validation_rejects_bad_parameters(field, value, message):
    args = dict(GEN_ARGS)
    args[field] = value
    with pytest.raises(ValueError, match=message):
        generate_requests(**args)


def test_validation_accepts_boundary_fractions():
    validate_workload(1.0, 0.0, 0.0)
    validate_workload(1.0, 1.0, 0.0)


# -- schedule shape -----------------------------------------------------


def test_schedule_is_sorted_and_in_domain():
    schedule = generate_requests(**GEN_ARGS)
    assert len(schedule) == GEN_ARGS["requests"]
    arrivals = [r.arrival_us for r in schedule]
    assert arrivals == sorted(arrivals)
    assert all(0 <= r.key < GEN_ARGS["nkeys"] for r in schedule)
    assert all(0 <= r.client < GEN_ARGS["nclients"] for r in schedule)
    assert all(r.op in ("get", "put") for r in schedule)
    assert [r.req_id for r in schedule] == list(range(len(schedule)))


def test_fixed_arrivals_are_evenly_spaced():
    args = dict(GEN_ARGS, arrival="fixed", requests=10,
                rate_rps=1_000_000.0)  # 1 request per microsecond
    schedule = generate_requests(**args)
    assert [r.arrival_us for r in schedule] == pytest.approx(
        list(range(10)))


def test_zipf_skews_toward_low_keys():
    cdf = zipf_cdf(4, 1.0)
    # Weights 1, 1/2, 1/3, 1/4 accumulated.
    assert cdf == pytest.approx([1.0, 1.5, 1.5 + 1 / 3, 25 / 12])
    skewed = generate_requests(**dict(GEN_ARGS, zipf_s=1.2,
                                      requests=2_000))
    hot = sum(1 for r in skewed if r.key == 0)
    cold = sum(1 for r in skewed if r.key == GEN_ARGS["nkeys"] - 1)
    assert hot > 5 * max(cold, 1)


def test_zipf_zero_is_roughly_uniform():
    schedule = generate_requests(**dict(GEN_ARGS, zipf_s=0.0,
                                        requests=4_000))
    counts = [0] * GEN_ARGS["nkeys"]
    for r in schedule:
        counts[r.key] += 1
    expected = len(schedule) / GEN_ARGS["nkeys"]
    assert min(counts) > expected * 0.5
    assert max(counts) < expected * 1.5


def test_read_fraction_controls_the_mix():
    all_reads = generate_requests(**dict(GEN_ARGS, read_fraction=1.0))
    assert all(r.op == "get" for r in all_reads)
    all_writes = generate_requests(**dict(GEN_ARGS,
                                          read_fraction=0.0))
    assert all(r.op == "put" for r in all_writes)


def test_node_schedules_partition_by_client():
    schedule = generate_requests(**GEN_ARGS)
    per_node = node_schedules(schedule, 4)
    assert sum(len(s) for s in per_node) == len(schedule)
    for node, stream in enumerate(per_node):
        assert all(r.client % 4 == node for r in stream)
        arrivals = [r.arrival_us for r in stream]
        assert arrivals == sorted(arrivals)


def test_write_counts_match_the_puts():
    schedule = generate_requests(**GEN_ARGS)
    counts = write_counts(schedule, GEN_ARGS["nkeys"])
    assert sum(counts) == sum(1 for r in schedule if r.op == "put")


# -- determinism (the property the lab cache stands on) -----------------

_CHILD = """
import json, sys
from dataclasses import asdict
from repro.serve.workload import generate_requests
args = json.loads(sys.stdin.read())
schedule = generate_requests(**args)
print(json.dumps([asdict(r) for r in schedule], sort_keys=True))
"""


def _schedule_in_subprocess(args: dict, hashseed: str) -> str:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hashseed
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD], input=json.dumps(args),
        capture_output=True, text=True, env=env, check=True)
    return proc.stdout.strip()


def test_same_seed_same_schedule_across_processes():
    local = json.dumps([asdict(r) for r in
                        generate_requests(**GEN_ARGS)],
                       sort_keys=True)
    assert _schedule_in_subprocess(GEN_ARGS, "0") == local
    assert _schedule_in_subprocess(GEN_ARGS, "1") == local


def test_different_seeds_differ():
    a = generate_requests(**GEN_ARGS)
    b = generate_requests(**dict(GEN_ARGS, seed=7))
    assert a != b


def test_dimensions_are_independent_substreams():
    # Changing the op mix must not move arrivals or key choices.
    a = generate_requests(**dict(GEN_ARGS, read_fraction=0.9))
    b = generate_requests(**dict(GEN_ARGS, read_fraction=0.1))
    assert [r.arrival_us for r in a] == [r.arrival_us for r in b]
    assert [r.key for r in a] == [r.key for r in b]


def test_scaled_params_generate():
    for scale, params in SERVE_APP_PARAMS.items():
        schedule = generate_requests(
            nkeys=params["nkeys"], requests=params["requests"],
            rate_rps=params["rate_rps"],
            read_fraction=params["read_fraction"],
            zipf_s=params["zipf_s"], nclients=params["nclients"],
            arrival="poisson", seed=1993)
        assert len(schedule) == params["requests"], scale


def test_request_is_frozen():
    request = Request(req_id=0, client=1, key=2, op="get",
                      arrival_us=3.0)
    with pytest.raises(Exception):
        request.key = 5
