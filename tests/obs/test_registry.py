"""Unit coverage for the metrics registry (repro.obs.registry)."""

import json

import pytest

from repro.obs import (CATALOG, CATALOG_BY_NAME, DEFAULT_BUCKETS,
                       MetricError, MetricsRegistry, MetricSpec,
                       install_catalog)
from repro.obs.catalog import COUNTER, GAUGE, HISTOGRAM


# -- counters ----------------------------------------------------------

def test_counter_starts_at_zero_and_accumulates():
    registry = MetricsRegistry()
    counter = registry.counter("test.hits_total", unit="hits")
    assert counter.total() == 0
    counter.inc()
    counter.inc(4)
    assert counter.total() == 5


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    counter = registry.counter("test.hits_total")
    with pytest.raises(MetricError):
        counter.inc(-1)


def test_counter_float_increments_preserve_value():
    registry = MetricsRegistry()
    counter = registry.counter("test.cycles_total", unit="cycles")
    counter.inc(0.25)
    counter.inc(0.5)
    assert counter.total() == 0.75


# -- gauges ------------------------------------------------------------

def test_gauge_set_and_set_max():
    registry = MetricsRegistry()
    gauge = registry.gauge("test.depth")
    gauge.set(7)
    assert gauge.total() == 7
    gauge.set_max(3)          # lower: ignored
    assert gauge.total() == 7
    gauge.set_max(12)         # higher: taken
    assert gauge.total() == 12
    gauge.set(1)              # plain set always wins
    assert gauge.total() == 1


# -- histograms --------------------------------------------------------

def test_histogram_count_sum_min_max_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("test.wait_cycles", unit="cycles",
                              buckets=(10.0, 100.0))
    for value in (5.0, 50.0, 500.0, 7.0):
        hist.observe(value)
    child = hist.labels()
    assert child.count == 4
    assert child.sum == 562.0
    assert child.min == 5.0
    assert child.max == 500.0
    # buckets: <=10 -> 2, <=100 -> 1, +inf -> 1
    assert child.buckets == [2, 1, 1]
    snap = child.snapshot()
    assert snap["count"] == 4
    assert snap["buckets"] == {"10.0": 2, "100.0": 1, "+inf": 1}


def test_histogram_total_is_sum_of_sums():
    registry = MetricsRegistry()
    hist = registry.histogram("test.wait_cycles", labels=("node",))
    hist.labels(node="0").observe(3.0)
    hist.labels(node="1").observe(4.0)
    assert hist.total() == 7.0


def test_default_buckets_are_increasing():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# -- labels ------------------------------------------------------------

def test_labels_create_independent_children():
    registry = MetricsRegistry()
    counter = registry.counter("test.msgs_total",
                               labels=("node", "msg_type"))
    counter.labels(node="0", msg_type="page_req").inc()
    counter.labels(node="0", msg_type="page_req").inc()
    counter.labels(node="1", msg_type="page_reply").inc()
    assert counter.total() == 3
    assert counter.by_label("node") == {"0": 2, "1": 1}
    assert counter.by_label("msg_type") == {"page_req": 2,
                                            "page_reply": 1}


def test_labels_returns_same_child_for_same_values():
    registry = MetricsRegistry()
    counter = registry.counter("test.msgs_total", labels=("node",))
    assert counter.labels(node="3") is counter.labels(node=3)


def test_wrong_label_names_raise():
    registry = MetricsRegistry()
    counter = registry.counter("test.msgs_total", labels=("node",))
    with pytest.raises(MetricError):
        counter.labels(proc="0")
    with pytest.raises(MetricError):
        counter.labels()


def test_labelled_metric_rejects_bare_inc():
    registry = MetricsRegistry()
    counter = registry.counter("test.msgs_total", labels=("node",))
    with pytest.raises(MetricError):
        counter.inc()


def test_by_label_unknown_label_raises():
    registry = MetricsRegistry()
    counter = registry.counter("test.msgs_total", labels=("node",))
    with pytest.raises(MetricError):
        counter.by_label("proto")


# -- registration ------------------------------------------------------

def test_reregistration_same_spec_returns_same_metric():
    registry = MetricsRegistry()
    a = registry.counter("test.hits_total", unit="hits")
    b = registry.counter("test.hits_total", unit="hits")
    assert a is b


def test_reregistration_with_conflicting_spec_raises():
    registry = MetricsRegistry()
    registry.from_spec(MetricSpec(name="test.x", kind=COUNTER,
                                  unit="", description="",
                                  labels=(), consumers=()))
    with pytest.raises(MetricError):
        registry.from_spec(MetricSpec(name="test.x", kind=COUNTER,
                                      unit="things", description="",
                                      labels=(), consumers=()))


def test_catalogued_name_with_wrong_kind_raises():
    with pytest.raises(MetricError):
        MetricsRegistry().gauge("dsm.messages_total")


def test_get_unknown_metric_raises():
    registry = MetricsRegistry()
    with pytest.raises(MetricError):
        registry.get("no.such.metric")
    with pytest.raises(MetricError):
        registry.total("no.such.metric")
    assert "no.such.metric" not in registry


def test_install_catalog_registers_every_spec_idempotently():
    from repro.obs import ROBUSTNESS_CATALOG, install_robustness

    registry = MetricsRegistry()
    install_catalog(registry)
    install_catalog(registry)  # second install is a no-op
    # The base catalogue alone: robustness metrics are installed only
    # when the fault/transport subsystem is active, so a fault-free
    # dump stays identical to pre-subsystem builds.
    assert set(registry.names()) == {spec.name for spec in CATALOG}
    assert len(registry.names()) == len(CATALOG)
    for spec in CATALOG:
        assert registry.get(spec.name).spec is spec
        assert spec.kind in (COUNTER, GAUGE, HISTOGRAM)
    install_robustness(registry)
    install_robustness(registry)  # idempotent too
    assert len(registry.names()) == len(CATALOG) + len(
        ROBUSTNESS_CATALOG)
    for spec in ROBUSTNESS_CATALOG:
        assert registry.get(spec.name).spec is spec
    # The harness tier (repro.lab).
    from repro.obs import LAB_CATALOG, install_lab
    install_lab(registry)
    install_lab(registry)  # idempotent too
    for spec in LAB_CATALOG:
        assert registry.get(spec.name).spec is spec
    # The memory-substrate tier (repro.mem.instrument).
    from repro.obs import MEM_CATALOG, install_mem
    install_mem(registry)
    install_mem(registry)  # idempotent too
    for spec in MEM_CATALOG:
        assert registry.get(spec.name).spec is spec
    # The serving tier (repro.apps.kvstore) completes the catalogue.
    from repro.obs import SERVE_CATALOG, install_serve
    install_serve(registry)
    install_serve(registry)  # idempotent too
    assert set(registry.names()) == set(CATALOG_BY_NAME)
    for spec in SERVE_CATALOG:
        assert registry.get(spec.name).spec is spec


# -- export ------------------------------------------------------------

def test_dump_and_as_json_round_trip():
    registry = MetricsRegistry(const_labels={"protocol": "lh"})
    counter = registry.counter("test.msgs_total",
                               labels=("node",), unit="messages",
                               description="Test messages.",
                               consumers=("Figure 8",))
    counter.labels(node="0").inc(2)
    hist = registry.histogram("test.wait_cycles", unit="cycles")
    hist.observe(42.0)

    dump = registry.dump()
    assert dump["const_labels"] == {"protocol": "lh"}
    by_name = {m["name"]: m for m in dump["metrics"]}
    msgs = by_name["test.msgs_total"]
    assert msgs["type"] == COUNTER
    assert msgs["unit"] == "messages"
    assert msgs["consumers"] == ["Figure 8"]
    assert msgs["total"] == 2
    assert msgs["series"] == [{"labels": {"node": "0"}, "value": 2}]
    wait = by_name["test.wait_cycles"]
    assert wait["type"] == HISTOGRAM
    assert wait["series"][0]["count"] == 1
    assert wait["series"][0]["sum"] == 42.0

    parsed = json.loads(registry.as_json())
    assert parsed == dump


def test_as_text_lists_series_and_skips_empty():
    registry = MetricsRegistry(const_labels={"app": "jacobi"})
    counter = registry.counter("test.msgs_total", labels=("node",),
                               unit="messages")
    counter.labels(node="0").inc(3)
    # A labelled metric nobody touched has no series at all.
    registry.counter("test.unused_total", labels=("node",),
                     unit="things")

    text = registry.as_text()
    assert "run: app=jacobi" in text
    assert "node=0" in text
    assert "(no data)" in text

    trimmed = registry.as_text(skip_empty=True)
    assert "test.unused_total" not in trimmed
    assert "test.msgs_total" in trimmed
