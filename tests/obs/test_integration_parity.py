"""Registry vs. legacy-counter parity on a real run.

Every legacy ``NodeMetrics`` / ``NetworkStats`` increment is mirrored
into the metrics registry at the same call site, in the same order, so
the two accountings must agree *bit for bit* — including float cycle
sums.  A Jacobi run on the 100 Mbit ATM network exercises every layer:
the event kernel, the ATM model, the protocol engine, and the
lock/barrier managers.
"""

import json

import pytest

from repro.apps import create_app
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.runner import run_app
from repro.net.message import MsgKind


def _jacobi_run(protocol="li", nprocs=4):
    return run_app(create_app("jacobi", n=24, iterations=3),
                   MachineConfig(nprocs=nprocs,
                                 network=NetworkConfig.atm()),
                   protocol=protocol)


@pytest.fixture(scope="module")
def result():
    return _jacobi_run()


def _per_node(result, attr):
    # NodeInstruments binds every node's child eagerly, so the
    # registry reports a (possibly zero) series for every node.
    return {str(m.proc): getattr(m, attr)
            for m in result.node_metrics}


def test_message_counts_match_per_node_and_kind(result):
    registry = result.registry
    legacy_total = result.total_messages
    assert registry.total("dsm.messages_total") == legacy_total
    assert legacy_total > 0

    by_node = registry.by_label("dsm.messages_total", "node")
    for metrics in result.node_metrics:
        assert by_node.get(str(metrics.proc), 0) == \
            metrics.total_messages

    by_type = registry.by_label("dsm.messages_total", "msg_type")
    legacy_by_kind = result.messages_by_kind()
    assert by_type == {kind.value: count
                       for kind, count in legacy_by_kind.items()}


def test_sync_message_accounting_matches(result):
    assert result.registry_sync_messages() == result.sync_messages


@pytest.mark.parametrize("metric,attr", [
    ("dsm.data_bytes_total", "data_bytes_sent"),
    ("dsm.wire_bytes_total", "wire_bytes_sent"),
    ("dsm.read_misses_total", "read_misses"),
    ("dsm.write_misses_total", "write_misses"),
    ("dsm.cold_misses_total", "cold_misses"),
    ("dsm.page_transfers_total", "page_transfers"),
    ("dsm.diffs_created_total", "diffs_created"),
    ("dsm.diff_words_total", "diff_words_created"),
    ("dsm.diffs_applied_total", "diffs_applied"),
    ("dsm.invalidations_total", "invalidations"),
    ("sync.lock_acquires_total", "lock_acquires"),
    ("sync.lock_local_acquires_total", "lock_local_acquires"),
    ("sync.barrier_waits_total", "barrier_waits"),
])
def test_counter_totals_match_legacy(result, metric, attr):
    registry = result.registry
    legacy = sum(getattr(m, attr) for m in result.node_metrics)
    assert registry.total(metric) == legacy
    assert registry.by_label(metric, "node") == _per_node(result, attr)


@pytest.mark.parametrize("metric,attr", [
    ("sync.lock_wait_cycles", "lock_wait_cycles"),
    ("sync.barrier_wait_cycles", "barrier_wait_cycles"),
    ("dsm.miss_wait_cycles", "miss_wait_cycles"),
    ("cpu.compute_cycles_total", "compute_cycles"),
    ("cpu.overhead_cycles_total", "overhead_cycles"),
])
def test_cycle_sums_match_legacy_bit_for_bit(result, metric, attr):
    # Float sums: mirrored at the same sites in the same order, so
    # exact equality is required, not approx.
    registry = result.registry
    legacy = sum(getattr(m, attr) for m in result.node_metrics)
    assert registry.total(metric) == legacy
    assert registry.by_label(metric, "node") == _per_node(result, attr)


def test_network_stats_match_registry(result):
    registry = result.registry
    assert registry.total("net.messages_total") == \
        result.network_messages
    assert registry.total("net.wire_bytes_total") == \
        result.network_bytes
    assert registry.total("net.contention_cycles_total") == \
        result.network_contention_cycles
    # The wire-time histogram saw every message.
    wire = registry.get("net.wire_cycles").labels()
    assert wire.count == result.network_messages


def test_sim_event_count_matches_registry(result):
    assert result.registry.total("sim.events_dispatched_total") > 0
    assert result.registry.total("sim.queue_depth_peak") >= 1


def test_const_labels_describe_the_run(result):
    assert result.registry.const_labels == {
        "protocol": "li", "network": "atm", "nprocs": "4",
        "app": "jacobi"}


def test_barrier_messages_exist_on_multiproc_run(result):
    by_type = result.registry.by_label("dsm.messages_total",
                                       "msg_type")
    assert by_type.get(MsgKind.BARRIER_ARRIVE.value, 0) > 0
    assert by_type.get(MsgKind.BARRIER_DEPART.value, 0) > 0


def test_stats_cli_json_matches_run_counters():
    """Acceptance: ``repro stats`` emits a JSON dump for a Jacobi /
    ATM / LI run whose message and diff counts equal the values the
    pre-existing experiments path reports."""
    from repro.cli import main

    import contextlib
    import io
    import os
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        out_path = os.path.join(tmp, "stats.json")
        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = main(["stats", "jacobi", "--protocol", "li",
                         "--network", "atm", "--procs", "4",
                         "--scale", "small", "--output", out_path])
        assert code == 0
        with open(out_path) as handle:
            dump = json.load(handle)

    reference = run_app(
        create_app("jacobi", n=48, iterations=3),
        MachineConfig(nprocs=4, network=NetworkConfig.atm()),
        protocol="li")

    assert dump["const_labels"]["protocol"] == "li"
    assert dump["const_labels"]["network"] == "atm"
    by_name = {m["name"]: m for m in dump["metrics"]}
    assert by_name["dsm.messages_total"]["total"] == \
        reference.total_messages
    assert by_name["dsm.diffs_created_total"]["total"] == \
        reference.diffs_created
    assert by_name["net.messages_total"]["total"] == \
        reference.network_messages
