"""CausalTrace indexing and the happens-before DAG."""

import pytest

from repro.analysis.experiments import APP_PARAMS
from repro.apps import create_app
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.runner import run_app
from repro.obs import (CausalTrace, JsonlSink, MemorySink,
                       Observability, TraceEvent, Tracer)


def traced_run(app="jacobi", protocol="li", network=None, nprocs=4):
    sink = MemorySink()
    obs = Observability(tracer=Tracer(sink))
    config = MachineConfig(nprocs=nprocs,
                           network=network or NetworkConfig.atm())
    result = run_app(create_app(app, **APP_PARAMS["small"][app]),
                     config, protocol=protocol, obs=obs)
    return CausalTrace(sink.events), result


@pytest.fixture(scope="module")
def jacobi_trace():
    return traced_run()


def test_message_lifecycles_are_ordered(jacobi_trace):
    trace, _ = jacobi_trace
    assert trace.messages
    for record in trace.messages.values():
        assert record.send_ts is not None
        assert record.recv_ts is not None
        assert record.accept_ts is not None
        assert (record.send_ts <= record.accept_ts
                <= record.accept_ts + record.waited
                <= record.recv_ts)
        assert record.src != record.dst


def test_handler_sends_carry_a_live_cause(jacobi_trace):
    trace, _ = jacobi_trace
    handler_sends = [r for r in trace.messages.values()
                     if r.context == "handler"]
    assert handler_sends, "no handler-context sends traced"
    for record in handler_sends:
        assert record.cause is not None
        cause = trace.messages[record.cause]
        # The cause was delivered to the node that then sent this.
        assert cause.dst == record.src
        assert cause.recv_ts <= record.send_ts


def test_wakes_name_the_delivering_message(jacobi_trace):
    trace, _ = jacobi_trace
    assert trace.wakes
    for node, records in trace.wakes.items():
        assert [w.ts for w in records] == sorted(w.ts for w in records)
        for wake in records:
            assert wake.cause in trace.messages
            assert trace.messages[wake.cause].recv_ts <= wake.ts
            assert trace.messages[wake.cause].dst == node


def test_worker_finish_times_reconcile_with_result(jacobi_trace):
    trace, result = jacobi_trace
    assert set(trace.finish) == {0, 1, 2, 3}
    assert trace.elapsed == max(trace.finish.values())
    assert trace.elapsed == pytest.approx(result.elapsed_cycles,
                                          rel=0.01)


def test_latest_wake_bisects(jacobi_trace):
    trace, _ = jacobi_trace
    node = trace.last_finisher()
    records = trace.wakes[node]
    assert trace.latest_wake(node, records[0].ts - 1.0) is None
    assert trace.latest_wake(node, records[0].ts) is records[0]
    mid = (records[0].ts + records[1].ts) / 2.0
    assert trace.latest_wake(node, mid) is records[0]
    assert trace.latest_wake(node, trace.elapsed) is records[-1]


def test_compute_spans_clip_to_window(jacobi_trace):
    trace, _ = jacobi_trace
    node = trace.last_finisher()
    spans = trace.computes[node]
    assert spans
    assert all(cycles > 0 for _, _, cycles in spans)
    # Window ending at the first span's end captures exactly it.
    first_end = spans[0][1]
    inside = trace.compute_spans_in(node, 0.0, first_end)
    assert inside[-1][1] == first_end
    assert trace.compute_spans_in(node, first_end,
                                  first_end) == []


def test_graph_is_acyclic_with_all_edge_kinds(jacobi_trace):
    trace, _ = jacobi_trace
    graph = trace.graph()
    assert graph.is_acyclic()
    assert graph.edge_count() >= len(trace.events) / 2
    kinds = set(graph.kinds.values())
    assert {"program", "message"} <= kinds


def test_lock_edges_on_a_lock_heavy_app():
    trace, _ = traced_run(app="water", protocol="lh")
    graph = trace.graph()
    assert graph.is_acyclic()
    assert "lock" in set(graph.kinds.values())


def test_duplicates_and_retransmits_keep_first_timestamps():
    wire = {"src": 0, "dst": 1, "kind": "page_req"}
    events = [
        TraceEvent(0.0, "msg.send", dict(wire, msg=7, data_bytes=64)),
        TraceEvent(5.0, "net.xmit", dict(wire, msg=7, wire=2.0,
                                         waited=1.0)),
        TraceEvent(9.0, "msg.recv", dict(wire, msg=7)),
        TraceEvent(12.0, "msg.recv", dict(wire, msg=7)),   # duplicate
        TraceEvent(14.0, "net.xmit", dict(wire, msg=7, wire=2.0,
                                          waited=99.0)),   # retransmit
    ]
    record = CausalTrace(events).messages[7]
    assert record.accept_ts == 5.0
    assert record.waited == 1.0
    assert record.recv_ts == 9.0


def test_from_jsonl_round_trips(tmp_path):
    path = str(tmp_path / "run.jsonl")
    sink = JsonlSink(path)
    obs = Observability(tracer=Tracer(sink))
    run_app(create_app("jacobi", **APP_PARAMS["small"]["jacobi"]),
            MachineConfig(nprocs=4, network=NetworkConfig.atm()),
            protocol="li", obs=obs)
    obs.close()
    replayed = CausalTrace.from_jsonl(path)
    live, _ = traced_run(protocol="li")
    assert len(replayed.events) == len(live.events)
    assert replayed.elapsed == live.elapsed
    # Message ids are a process-global counter, so compare the
    # structure of the journeys rather than the raw ids.
    def journeys(trace):
        return sorted((r.src, r.dst, r.kind, r.send_ts, r.recv_ts)
                      for r in trace.messages.values())
    assert journeys(replayed) == journeys(live)
