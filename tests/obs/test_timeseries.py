"""Windowed time-series telemetry: sampler semantics, zero-perturb
guarantee, golden parity, and the Perfetto counter tracks."""

import json

import pytest

from repro.apps import create_app
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.runner import run_app
from repro.obs import (CausalTrace, MemorySink, Observability,
                       TIMESERIES_SCHEMA, TimeseriesSampler, Tracer,
                       chrome_trace, format_timeseries_table,
                       merge_windows, validate_chrome_trace)
from repro.serve.workload import SERVE_APP_PARAMS

CONFIG = MachineConfig(nprocs=4, network=NetworkConfig.atm())


def _run_sampled(window_us=200.0, app="jacobi", obs=None, **kwargs):
    sampler = TimeseriesSampler(window_us=window_us, **kwargs)
    if app == "kvstore":
        result = run_app(create_app("kvstore",
                                    **SERVE_APP_PARAMS["small"]),
                         CONFIG, protocol="lh", obs=obs,
                         sampler=sampler)
    else:
        result = run_app(create_app("jacobi", n=24, iterations=4),
                         CONFIG, protocol="li", obs=obs,
                         sampler=sampler)
    return sampler, result


def test_constructor_validation():
    with pytest.raises(ValueError, match="window must be > 0"):
        TimeseriesSampler(window_us=0.0)
    with pytest.raises(ValueError, match="window must be > 0"):
        TimeseriesSampler(window_us=-5.0)
    with pytest.raises(ValueError, match="SLO must be > 0"):
        TimeseriesSampler(window_us=100.0, slo_us=0.0)
    with pytest.raises(ValueError, match=r"within \(0, 1\)"):
        TimeseriesSampler(window_us=100.0, slo_target=1.0)
    with pytest.raises(ValueError, match=r"within \(0, 1\)"):
        TimeseriesSampler(window_us=100.0, slo_target=0.0)


def test_subtick_window_rejected_at_bind():
    # 0.01 µs at 40 MHz is 0.4 cycles — finer than the scheduler can
    # ever resolve, so bind() refuses it.
    with pytest.raises(ValueError, match="scheduler tick"):
        _run_sampled(window_us=0.01)


def test_windows_partition_the_run():
    sampler, result = _run_sampled()
    windows = sampler.windows
    assert windows, "run produced no windows"
    # Delta windows tile the run exactly: contiguous boundaries on the
    # grid, totals matching the end-of-run aggregates.
    for before, after in zip(windows, windows[1:]):
        assert before.t1_cycles == after.t0_cycles
    assert windows[0].t0_cycles == 0.0
    assert windows[-1].t1_cycles == result.elapsed_cycles
    assert sum(w.events for w in windows) == int(
        result.registry.get("sim.events_dispatched_total")
        .labels().value)
    messages = {}
    for w in windows:
        for kind, count in w.messages.items():
            messages[kind] = messages.get(kind, 0) + count
    assert messages == {
        kind: count for kind, count in result.metric_by(
            "dsm.messages_total", "msg_type").items() if count}


def test_sampling_does_not_perturb_the_run():
    # The sampler only reads: the RunResult (elapsed, metrics, app
    # output — the full canonical dump) must be byte-identical with
    # and without it.
    plain = run_app(create_app("jacobi", n=24, iterations=4),
                    CONFIG, protocol="li")
    _sampler, sampled = _run_sampled()
    assert (json.dumps(sampled.to_dict(), sort_keys=True)
            == json.dumps(plain.to_dict(), sort_keys=True))


def test_serving_windows_carry_latency_series():
    sampler, result = _run_sampled(app="kvstore")
    windows = sampler.windows
    total = sum(w.requests for w in windows)
    assert total == SERVE_APP_PARAMS["small"]["requests"]
    served = [w for w in windows if w.requests]
    assert served
    for w in served:
        assert 0 < w.p50_us <= w.p99_us
        assert w.slo_violations <= w.requests
        # burn = violations/requests / (1 - 0.999)
        assert w.burn_rate == pytest.approx(
            w.slo_violations / w.requests / 0.001)
    for w in windows:
        if not w.requests:
            assert (w.p50_us, w.p99_us, w.burn_rate) == (0, 0, 0)


def test_export_schema_and_table():
    sampler, _result = _run_sampled(app="kvstore")
    dump = json.loads(sampler.as_json())
    assert dump["schema"] == TIMESERIES_SCHEMA
    assert dump["window_us"] == 200.0
    assert dump["cpu_mhz"] == CONFIG.cpu_mhz
    assert len(dump["windows"]) == len(sampler.windows)
    for exported in dump["windows"]:
        assert "latencies_us" not in exported  # raw data stays local
        assert exported["t0_cycles"] < exported["t1_cycles"]
    table = format_timeseries_table(sampler)
    assert "burn" in table.splitlines()[0]
    assert len(table.splitlines()) == len(sampler.windows) + 1


def test_merge_windows_matches_coarser_sampling():
    fine, _result = _run_sampled(window_us=100.0)
    coarse, _result = _run_sampled(window_us=300.0)
    merged = merge_windows(fine.windows, 3)
    assert [w.to_dict() for w in merged] \
        == [w.to_dict() for w in coarse.windows]


def test_merge_factor_validation():
    with pytest.raises(ValueError, match="factor"):
        merge_windows([], 0)


def test_chrome_counter_tracks():
    sink = MemorySink()
    sampler, _result = _run_sampled(
        app="kvstore", obs=Observability(tracer=Tracer(sink)))
    exported = chrome_trace(CausalTrace(sink.events),
                            timeseries=sampler)
    assert validate_chrome_trace(exported) == []
    counters = [e for e in exported["traceEvents"]
                if e.get("ph") == "C"]
    # 8 tracks per window for a serving run (5 core + 3 request).
    assert len(counters) == 8 * len(sampler.windows)
    names = {e["name"] for e in counters}
    assert {"events dispatched", "queue depth", "p99 us",
            "SLO burn rate"} <= names
    for event in counters:
        assert event["pid"] == 3
        assert isinstance(event["args"]["value"], (int, float))
    # Without a sampler the export is unchanged (no telemetry pid).
    bare = chrome_trace(CausalTrace(sink.events))
    assert all(e.get("pid") != 3 for e in bare["traceEvents"])


def test_counter_validation_catches_bad_events():
    bad = {"traceEvents": [
        {"ph": "C", "pid": 3, "ts": 0.0, "args": {"value": 1.0}},
        {"ph": "C", "pid": 3, "name": "x", "ts": 0.0},
        {"ph": "C", "pid": 3, "name": "x", "ts": 0.0,
         "args": {"value": "fast"}},
    ]}
    errors = validate_chrome_trace(bad)
    assert len(errors) == 3
    assert any("without name" in e for e in errors)
    assert any("non-empty args" in e for e in errors)
    assert any("numeric" in e for e in errors)
