"""Zero-overhead acceptance: with faults disabled, the robustness
layer must be invisible.

``tests/obs/golden/jacobi_atm_li.json`` is the full metrics dump of a
reference run (jacobi n=24/iterations=3, 4 procs, ATM, protocol li)
captured *before* the fault/transport subsystem existed.  A fault-free
run today must reproduce it bit for bit — same metric set (no
``faults.*`` / ``transport.*`` series), same counts, same float cycle
sums, same elapsed time.
"""

import json
import os

from repro.apps import create_app
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.runner import run_app

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "jacobi_atm_li.json")


def _reference_run():
    return run_app(create_app("jacobi", n=24, iterations=3),
                   MachineConfig(nprocs=4,
                                 network=NetworkConfig.atm()),
                   protocol="li")


def test_fault_free_run_matches_pre_subsystem_golden_dump():
    with open(GOLDEN) as handle:
        golden = json.load(handle)
    golden_elapsed = golden.pop("elapsed_cycles")
    result = _reference_run()
    current = json.loads(result.registry.as_json())
    assert current == golden
    assert result.elapsed_cycles == golden_elapsed


def test_fault_free_run_registers_no_robustness_metrics():
    result = _reference_run()
    registry = result.registry
    robustness = [name for name in registry.names()
                  if name.startswith(("faults.", "transport."))]
    assert robustness == []
