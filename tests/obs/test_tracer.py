"""Unit coverage for the tracer, its sinks, and simulated-time spans."""

import io
import json

from repro.net.message import MsgKind
from repro.obs import (JsonlSink, MemorySink, MetricsRegistry, NullSink,
                       Observability, Span, TraceEvent, Tracer,
                       read_jsonl)


# -- sinks -------------------------------------------------------------

def test_null_sink_disables_tracer():
    tracer = Tracer()  # NullSink by default
    assert not tracer
    assert not tracer.enabled
    tracer.emit("ignored", x=1)  # must be a no-op
    tracer.close()


def test_memory_sink_collects_and_filters():
    sink = MemorySink()
    clock_value = [0.0]
    tracer = Tracer(sink, clock=lambda: clock_value[0])
    assert tracer and tracer.enabled
    tracer.emit("msg.send", src=0, dst=1)
    clock_value[0] = 25.0
    tracer.emit("msg.recv", src=0, dst=1)
    tracer.emit("msg.send", src=1, dst=0)
    assert len(sink.events) == 3
    assert [e.name for e in sink.named("msg.send")] == ["msg.send",
                                                        "msg.send"]
    assert sink.events[0].ts == 0.0
    assert sink.events[1].ts == 25.0
    assert sink.events[1].fields == {"src": 0, "dst": 1}


def test_jsonl_sink_writes_one_json_object_per_line():
    buffer = io.StringIO()
    tracer = Tracer(JsonlSink(buffer), clock=lambda: 7.0)
    tracer.emit("sync.lock_acquired", lock=3, node=1, wait_cycles=40.0)
    tracer.emit("msg.send", kind=MsgKind.PAGE_REQ)  # enum -> .value
    tracer.close()  # flush; does not close a caller-owned file
    lines = buffer.getvalue().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first == {"ts": 7.0, "name": "sync.lock_acquired",
                     "lock": 3, "node": 1, "wait_cycles": 40.0}
    second = json.loads(lines[1])
    assert second["kind"] == MsgKind.PAGE_REQ.value


def test_jsonl_round_trip_through_file(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    tracer = Tracer(JsonlSink(path), clock=lambda: 1.5)
    tracer.emit("a", x=1)
    tracer.emit("b", y="two")
    tracer.close()
    events = list(read_jsonl(path))
    assert events == [TraceEvent(ts=1.5, name="a", fields={"x": 1}),
                      TraceEvent(ts=1.5, name="b",
                                 fields={"y": "two"})]


# -- spans -------------------------------------------------------------

def test_span_observes_histogram_and_emits_begin_end():
    clock_value = [100.0]
    sink = MemorySink()
    tracer = Tracer(sink, clock=lambda: clock_value[0])
    registry = MetricsRegistry()
    hist = registry.histogram("test.phase_cycles", unit="cycles")

    with Span(lambda: clock_value[0], "phase", histogram=hist,
              tracer=tracer, node=0):
        clock_value[0] = 340.0

    child = hist.labels()
    assert child.count == 1
    assert child.sum == 240.0
    begin, end = sink.events
    assert begin.name == "phase.begin" and begin.ts == 100.0
    assert end.name == "phase.end" and end.ts == 340.0
    assert end.fields["cycles"] == 240.0
    assert end.fields["node"] == 0


def test_span_survives_generator_yields():
    clock_value = [0.0]
    registry = MetricsRegistry()
    hist = registry.histogram("test.phase_cycles")

    def process():
        with Span(lambda: clock_value[0], "work", histogram=hist):
            yield "first"
            yield "second"

    gen = process()
    next(gen)
    clock_value[0] = 10.0
    next(gen)
    clock_value[0] = 55.0
    gen.close()  # GeneratorExit unwinds the with-block
    assert hist.labels().sum == 55.0


def test_observability_span_uses_bound_clock():
    clock_value = [5.0]
    obs = Observability(tracer=Tracer(MemorySink()))
    obs.bind_clock(lambda: clock_value[0])
    hist = obs.registry.histogram("test.phase_cycles")
    with obs.span("phase", histogram=hist):
        clock_value[0] = 9.0
    assert hist.labels().sum == 4.0
    names = [e.name for e in obs.tracer.sink.events]
    assert names == ["phase.begin", "phase.end"]


def test_observability_defaults_to_disabled_tracing():
    obs = Observability()
    assert isinstance(obs.tracer.sink, NullSink)
    assert not obs.tracer
