"""Unit coverage for the tracer, its sinks, and simulated-time spans."""

import io
import json

from repro.net.message import MsgKind
from repro.obs import (JsonlSink, MemorySink, MetricsRegistry, NullSink,
                       Observability, Span, TraceEvent, Tracer,
                       read_jsonl)


# -- sinks -------------------------------------------------------------

def test_null_sink_disables_tracer():
    tracer = Tracer()  # NullSink by default
    assert not tracer
    assert not tracer.enabled
    tracer.emit("ignored", x=1)  # must be a no-op
    tracer.close()


def test_memory_sink_collects_and_filters():
    sink = MemorySink()
    clock_value = [0.0]
    tracer = Tracer(sink, clock=lambda: clock_value[0])
    assert tracer and tracer.enabled
    tracer.emit("msg.send", src=0, dst=1)
    clock_value[0] = 25.0
    tracer.emit("msg.recv", src=0, dst=1)
    tracer.emit("msg.send", src=1, dst=0)
    assert len(sink.events) == 3
    assert [e.name for e in sink.named("msg.send")] == ["msg.send",
                                                        "msg.send"]
    assert sink.events[0].ts == 0.0
    assert sink.events[1].ts == 25.0
    assert sink.events[1].fields == {"src": 0, "dst": 1}


def test_jsonl_sink_writes_one_json_object_per_line():
    buffer = io.StringIO()
    tracer = Tracer(JsonlSink(buffer), clock=lambda: 7.0)
    tracer.emit("sync.lock_acquired", lock=3, node=1, wait_cycles=40.0)
    tracer.emit("msg.send", kind=MsgKind.PAGE_REQ)  # enum -> .value
    tracer.close()  # flush; does not close a caller-owned file
    lines = buffer.getvalue().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first == {"ts": 7.0, "name": "sync.lock_acquired",
                     "lock": 3, "node": 1, "wait_cycles": 40.0}
    second = json.loads(lines[1])
    assert second["kind"] == MsgKind.PAGE_REQ.value


def test_jsonl_round_trip_through_file(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    tracer = Tracer(JsonlSink(path), clock=lambda: 1.5)
    tracer.emit("a", x=1)
    tracer.emit("b", y="two")
    tracer.close()
    events = list(read_jsonl(path))
    assert events == [TraceEvent(ts=1.5, name="a", fields={"x": 1}),
                      TraceEvent(ts=1.5, name="b",
                                 fields={"y": "two"})]


def test_jsonable_serializes_containers_recursively():
    buffer = io.StringIO()
    tracer = Tracer(JsonlSink(buffer), clock=lambda: 0.0)
    tracer.emit("protocol.seal", vc=[1, (2, 3)],
                copyset={2, 1, 0},
                by_kind={MsgKind.PAGE_REQ: [1, {"n": (4,)}]},
                who=frozenset(["b", "a"]))
    tracer.close()
    record = json.loads(buffer.getvalue())
    assert record["vc"] == [1, [2, 3]]
    assert record["copyset"] == [0, 1, 2]   # sets sort for determinism
    assert record["by_kind"] == {           # dict keys stringify
        str(MsgKind.PAGE_REQ): [1, {"n": [4]}]}
    assert record["who"] == ["a", "b"]


def test_jsonl_sink_buffers_and_flushes_on_close(tmp_path):
    path = str(tmp_path / "buffered.jsonl")
    sink = JsonlSink(path, buffer_lines=100)
    tracer = Tracer(sink, clock=lambda: 2.0)
    for index in range(7):
        tracer.emit("msg.send", msg=index)
    # Under the buffer threshold: nothing has reached the file yet.
    assert open(path).read() == ""
    sink.flush()
    assert len(open(path).read().splitlines()) == 7
    tracer.emit("msg.send", msg=7)
    tracer.close()  # flush-on-close picks up the straggler
    lines = open(path).read().splitlines()
    assert [json.loads(line)["msg"] for line in lines] == list(range(8))


def test_jsonl_sink_flushes_at_buffer_threshold(tmp_path):
    path = str(tmp_path / "threshold.jsonl")
    sink = JsonlSink(path, buffer_lines=3)
    tracer = Tracer(sink, clock=lambda: 0.0)
    tracer.emit("a")
    tracer.emit("b")
    assert open(path).read() == ""
    tracer.emit("c")  # third line trips the buffer
    assert len(open(path).read().splitlines()) == 3
    sink.close()


def test_jsonl_sink_is_a_context_manager(tmp_path):
    path = str(tmp_path / "ctx.jsonl")
    with JsonlSink(path, buffer_lines=100) as sink:
        Tracer(sink, clock=lambda: 1.0).emit("a", x=1)
    events = list(read_jsonl(path))
    assert events == [TraceEvent(ts=1.0, name="a", fields={"x": 1})]


def test_jsonl_sink_writes_gzip_transparently(tmp_path):
    path = str(tmp_path / "trace.jsonl.gz")
    with JsonlSink(path) as sink:
        tracer = Tracer(sink, clock=lambda: 3.0)
        tracer.emit("msg.send", msg=1)
        tracer.emit("msg.recv", msg=1)
    raw = open(path, "rb").read()
    assert raw[:2] == b"\x1f\x8b"  # gzip magic: actually compressed
    events = list(read_jsonl(path))
    assert [e.name for e in events] == ["msg.send", "msg.recv"]


def test_sink_swap_toggles_every_emission_site_mid_run():
    """``if tracer:`` reads ``sink.enabled`` live, so swapping the
    sink mid-run enables/disables all instrumentation at once."""
    tracer = Tracer()  # disabled
    assert not tracer
    tracer.emit("msg.send", msg=0)
    sink = MemorySink()
    tracer.sink = sink  # enable mid-run
    assert tracer
    tracer.emit("msg.send", msg=1)
    tracer.sink = NullSink()  # disable again
    assert not tracer
    tracer.emit("msg.send", msg=2)
    assert [e.fields["msg"] for e in sink.events] == [1]


# -- spans -------------------------------------------------------------

def test_span_observes_histogram_and_emits_begin_end():
    clock_value = [100.0]
    sink = MemorySink()
    tracer = Tracer(sink, clock=lambda: clock_value[0])
    registry = MetricsRegistry()
    hist = registry.histogram("test.phase_cycles", unit="cycles")

    with Span(lambda: clock_value[0], "phase", histogram=hist,
              tracer=tracer, node=0):
        clock_value[0] = 340.0

    child = hist.labels()
    assert child.count == 1
    assert child.sum == 240.0
    begin, end = sink.events
    assert begin.name == "phase.begin" and begin.ts == 100.0
    assert end.name == "phase.end" and end.ts == 340.0
    assert end.fields["cycles"] == 240.0
    assert end.fields["node"] == 0


def test_span_survives_generator_yields():
    clock_value = [0.0]
    registry = MetricsRegistry()
    hist = registry.histogram("test.phase_cycles")

    def process():
        with Span(lambda: clock_value[0], "work", histogram=hist):
            yield "first"
            yield "second"

    gen = process()
    next(gen)
    clock_value[0] = 10.0
    next(gen)
    clock_value[0] = 55.0
    gen.close()  # GeneratorExit unwinds the with-block
    assert hist.labels().sum == 55.0


def test_observability_span_uses_bound_clock():
    clock_value = [5.0]
    obs = Observability(tracer=Tracer(MemorySink()))
    obs.bind_clock(lambda: clock_value[0])
    hist = obs.registry.histogram("test.phase_cycles")
    with obs.span("phase", histogram=hist):
        clock_value[0] = 9.0
    assert hist.labels().sum == 4.0
    names = [e.name for e in obs.tracer.sink.events]
    assert names == ["phase.begin", "phase.end"]


def test_observability_defaults_to_disabled_tracing():
    obs = Observability()
    assert isinstance(obs.tracer.sink, NullSink)
    assert not obs.tracer
