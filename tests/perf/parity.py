"""Shared fixture matrix for the performance golden-parity suite.

The goldens under ``tests/perf/golden/`` are full canonical
:class:`repro.RunResult` dumps captured *before* the hot-path
optimizations (engine dispatch inlining, incremental run-merge,
pre-bound metric children) landed.  The optimized code must reproduce
every one of them byte for byte — same elapsed cycles, same
``sim.events_dispatched_total``, same interval/diff metrics, same
series ordering — which pins the optimizations to "faster, not
different".

Regenerate (only when an *intentional* behavior change lands) with::

    PYTHONPATH=src:. python -m tests.perf.regen
"""

import json
import os

from repro.core.config import MachineConfig, NetworkConfig
from repro.lab.spec import RunSpec, execute_spec

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: Small-scale app parameters (mirrors APP_PARAMS["small"], pinned here
#: so recalibrating the presets never silently rewrites the parity
#: matrix).
_PARAMS = {
    "jacobi": dict(n=48, iterations=3),
    "tsp": dict(ncities=8),
    "water": dict(nmols=20, steps=1),
}

PROTOCOLS = ("lh", "li", "lu", "ei", "eu")


def cases():
    """(name, RunSpec) for every golden case: the three most
    protocol-exercising apps under all five protocols on ATM, plus one
    Ethernet run (contention/backoff path) and the BENCH_core
    workload's exact jacobi/LI configuration."""
    out = []
    for app, params in _PARAMS.items():
        for protocol in PROTOCOLS:
            out.append((f"{app}_{protocol}_atm4",
                        RunSpec(app, params, protocol=protocol,
                                config=MachineConfig(
                                    nprocs=4,
                                    network=NetworkConfig.atm()))))
    out.append(("jacobi_lh_eth4",
                RunSpec("jacobi", _PARAMS["jacobi"], protocol="lh",
                        config=MachineConfig(
                            nprocs=4,
                            network=NetworkConfig.ethernet()))))
    out.append(("perfcore_jacobi_li_atm8",
                RunSpec("jacobi", dict(n=96, iterations=30),
                        protocol="li",
                        config=MachineConfig(
                            nprocs=8,
                            network=NetworkConfig.atm()))))
    # The exact benchmarks/test_perf_core.py workload (iterations=120):
    # BENCH_core's byte_identical gate reuses this golden.
    out.append(("perfcore_jacobi_li_atm8_it120",
                RunSpec("jacobi", dict(n=96, iterations=120),
                        protocol="li",
                        config=MachineConfig(
                            nprocs=8,
                            network=NetworkConfig.atm()))))
    # The BENCH_core32 workload: the large-configuration arm (32
    # processors) that keeps the scheduler/protocol fast paths honest
    # at high nprocs; benchmarks/test_perf_core.py reuses this golden
    # for its byte_identical gate.
    out.append(("perfcore_jacobi_li_atm32",
                RunSpec("jacobi", dict(n=128, iterations=40),
                        protocol="li",
                        config=MachineConfig(
                            nprocs=32,
                            network=NetworkConfig.atm()))))
    return out


def canonical_dump(spec: RunSpec) -> str:
    """Canonical JSON of the run's full result (metrics registry
    included): the byte-identity unit of the parity gate."""
    result = execute_spec(spec)
    return json.dumps(result.to_dict(), sort_keys=True, indent=1)


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json")
