"""Golden parity of the timeseries-sampler plumbing.

Two gates around :mod:`repro.obs.timeseries`:

- **disabled**: a run threaded through ``run_app(..., sampler=None)``
  — exercising the engine's per-run sampler check, the machine
  attribute, and the worker-pump guard — must reproduce every golden
  dump byte for byte (the zero-overhead-when-off contract also bounded
  by BENCH_core's NullSink arm);
- **enabled**: attaching a live sampler must *still* reproduce the
  golden bytes, because sampling only reads — it never schedules,
  never perturbs dispatch order, and never shows up in the RunResult.
"""

import json

import pytest

from repro.apps import create_app
from repro.core.runner import run_app
from repro.obs import TimeseriesSampler
from tests.perf.parity import cases, golden_path

CASES = cases()
#: Enabled-sampler parity runs a representative subset (three apps,
#: lazy and eager, both networks) — the full matrix would double the
#: slowest suite in the tree for no additional coverage of the
#: sampled dispatch loop.
ENABLED_CASES = [(name, spec) for name, spec in CASES
                 if name in ("jacobi_lh_atm4", "jacobi_lh_eth4",
                             "tsp_li_atm4", "water_eu_atm4")]


def _dump(spec, sampler):
    result = run_app(create_app(spec.app, **spec.app_params),
                     spec.config, protocol=spec.protocol,
                     protocol_options=spec.protocol_options,
                     lock_broadcast=spec.lock_broadcast,
                     sampler=sampler)
    return json.dumps(result.to_dict(), sort_keys=True, indent=1)


@pytest.mark.parametrize("name,spec", CASES,
                         ids=[name for name, _ in CASES])
def test_sampler_disabled_golden_parity(name, spec):
    with open(golden_path(name)) as handle:
        golden = handle.read()
    assert _dump(spec, sampler=None) + "\n" == golden, (
        f"sampler-disabled run diverged from golden {name!r}")


@pytest.mark.parametrize("name,spec", ENABLED_CASES,
                         ids=[name for name, _ in ENABLED_CASES])
def test_sampler_enabled_golden_parity(name, spec):
    with open(golden_path(name)) as handle:
        golden = handle.read()
    sampler = TimeseriesSampler(window_us=250.0)
    assert _dump(spec, sampler) + "\n" == golden, (
        f"attaching a sampler changed the simulation for {name!r}")
    assert sampler.windows, "sampler recorded nothing"
