"""Regenerate the perf parity goldens (see tests/perf/parity.py)."""

import os

from tests.perf.parity import canonical_dump, cases, golden_path


def main() -> None:
    os.makedirs(os.path.dirname(golden_path("x")), exist_ok=True)
    for name, spec in cases():
        dump = canonical_dump(spec)
        with open(golden_path(name), "w") as handle:
            handle.write(dump + "\n")
        print(f"wrote {golden_path(name)} ({len(dump)} bytes)")


if __name__ == "__main__":
    main()
