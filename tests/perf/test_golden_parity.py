"""Byte-for-byte parity against the pre-optimization goldens.

Every hot-path change (inlined dispatch loop, incremental run-merge,
due-notice memoization, cached interval notices, pre-bound metric
children, ...) must leave the simulation's observable output — the
full canonical RunResult dump, metrics registry included — unchanged
down to the byte.  See tests/perf/parity.py for the matrix and
docs/performance.md for why this gate exists.
"""

import pytest

from tests.perf.parity import canonical_dump, cases, golden_path

CASES = cases()


@pytest.mark.parametrize("name,spec", CASES,
                         ids=[name for name, _ in CASES])
def test_golden_byte_parity(name, spec):
    with open(golden_path(name)) as handle:
        golden = handle.read()
    # regen.py writes the dump plus a trailing newline.
    assert canonical_dump(spec) + "\n" == golden, (
        f"optimized simulation diverged from golden {name!r}; if the "
        "behavior change is intentional, regenerate with "
        "`PYTHONPATH=src:. python -m tests.perf.regen`")
