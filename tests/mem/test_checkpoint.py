"""Unit tests for the RCKP crash checkpoint (repro.mem.checkpoint).

The contract the lifecycle manager depends on: checkpointing is
read-only, ``checkpoint -> wipe -> restore -> checkpoint`` is
byte-identical, restore keeps the identities of objects that frozen
worker continuations still reference, and corrupt or mismatched blobs
are rejected loudly instead of half-restoring a node.
"""

import pytest

from repro.apps import create_app
from repro.core.api import DsmApi
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.machine import Machine
from repro.mem.checkpoint import (CheckpointError, checkpoint_node,
                                  restore_node, wipe_node)


def machine_after_run(protocol="li", nprocs=2):
    """A machine that has completed a small run, so every node holds
    real pages, twins, intervals, diffs, and copyset state."""
    app = create_app("jacobi", n=16, iterations=2)
    machine = Machine(MachineConfig(nprocs=nprocs,
                                    network=NetworkConfig.ideal()),
                      protocol=protocol)
    shared = app.setup(machine)
    machine.run(lambda p: app.worker(DsmApi(machine.nodes[p]), p,
                                     shared), app=app.name)
    return machine


def test_round_trip_is_byte_identical():
    machine = machine_after_run()
    for node in machine.nodes:
        blob = checkpoint_node(node)
        assert checkpoint_node(node) == blob  # read-only
        wipe_node(node)
        assert checkpoint_node(node) != blob  # wipe really erased
        restore_node(node, blob)
        assert checkpoint_node(node) == blob


def test_restore_preserves_object_identities():
    """Paused continuations hold references to page copies across
    yields; restore must refill those objects, not replace them."""
    machine = machine_after_run()
    node = machine.nodes[0]
    before = dict(node.pagetable.copies)
    values_before = {page: copy.values.copy()
                     for page, copy in before.items()}
    blob = checkpoint_node(node)
    wipe_node(node)
    for copy in before.values():
        assert not copy.valid  # wiped in place
    restore_node(node, blob)
    for page, copy in node.pagetable.copies.items():
        assert copy is before[page]
        assert (copy.values == values_before[page]).all()


def test_restore_rejects_corrupt_and_mismatched_blobs():
    machine = machine_after_run()
    node = machine.nodes[0]
    blob = checkpoint_node(node)
    with pytest.raises(CheckpointError):
        restore_node(node, b"JUNK" + blob[4:])
    with pytest.raises(CheckpointError):
        restore_node(node, blob[:len(blob) // 2])
    with pytest.raises(CheckpointError):
        restore_node(node, blob + b"\x00")
    # Node identity is part of the header: a peer's blob is rejected.
    with pytest.raises(CheckpointError):
        restore_node(machine.nodes[1], blob)


def test_sc_protocol_refuses_checkpoints():
    machine = machine_after_run(protocol="sc")
    with pytest.raises(CheckpointError):
        checkpoint_node(machine.nodes[0])


def test_crash_faults_reject_sc_at_machine_build():
    from repro.core.config import CrashSpec, FaultConfig
    from repro.sim.engine import SimulationError
    config = MachineConfig(
        nprocs=2, network=NetworkConfig.ideal(),
        faults=FaultConfig(crashes=(CrashSpec(proc=1, at_us=100.0,
                                              down_us=100.0),)))
    with pytest.raises(SimulationError):
        Machine(config, protocol="sc")
