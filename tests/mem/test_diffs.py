"""Unit tests for run-length encoded diffs."""

import numpy as np
import pytest

from repro.mem.diffs import (Diff, normalize_ranges, ranges_word_count)


def test_normalize_merges_overlaps_and_adjacency():
    assert normalize_ranges([(5, 10), (0, 3), (3, 5)]) == [(0, 10)]
    assert normalize_ranges([(0, 2), (4, 6)]) == [(0, 2), (4, 6)]
    assert normalize_ranges([(0, 5), (2, 3)]) == [(0, 5)]


def test_normalize_drops_empty_ranges():
    assert normalize_ranges([(3, 3), (5, 4)]) == []


def test_ranges_word_count():
    assert ranges_word_count([(0, 4), (10, 11)]) == 5


def test_from_ranges_snapshots_values():
    values = np.arange(16, dtype=np.float64)
    diff = Diff.from_ranges(7, values, [(2, 5), (8, 10)])
    values[:] = -1  # later mutation must not leak into the diff
    assert diff.page == 7
    assert diff.ranges() == [(2, 5), (8, 10)]
    assert diff.word_count == 5
    np.testing.assert_array_equal(diff.runs[0][1], [2.0, 3.0, 4.0])


def test_apply_round_trip():
    source = np.arange(32, dtype=np.float64)
    diff = Diff.from_ranges(0, source, [(0, 4), (20, 32)])
    target = np.zeros(32)
    diff.apply(target)
    np.testing.assert_array_equal(target[0:4], source[0:4])
    np.testing.assert_array_equal(target[20:32], source[20:32])
    assert (target[4:20] == 0).all()


def test_apply_out_of_bounds_raises():
    diff = Diff(0, [(30, np.ones(8))])
    with pytest.raises(ValueError):
        diff.apply(np.zeros(32))


def test_size_bytes_is_runlength_encoding():
    values = np.zeros(1024)
    diff = Diff.from_ranges(0, values, [(0, 10), (100, 101)])
    # two runs: 8-byte headers + 10*4 + 1*4 payload
    assert diff.size_bytes == 8 + 40 + 8 + 4


def test_empty_diff_has_zero_size():
    diff = Diff.from_ranges(0, np.zeros(8), [])
    assert diff.size_bytes == 0
    assert diff.word_count == 0


def test_overlaps():
    values = np.zeros(64)
    a = Diff.from_ranges(0, values, [(0, 8)])
    b = Diff.from_ranges(0, values, [(8, 16)])
    c = Diff.from_ranges(0, values, [(4, 6)])
    assert not a.overlaps(b)
    assert a.overlaps(c)
    assert c.overlaps(a)


def test_disjoint_diffs_apply_commutatively():
    base = np.zeros(16)
    left = np.full(16, 1.0)
    right = np.full(16, 2.0)
    d1 = Diff.from_ranges(0, left, [(0, 8)])
    d2 = Diff.from_ranges(0, right, [(8, 16)])

    ab = base.copy()
    d1.apply(ab)
    d2.apply(ab)
    ba = base.copy()
    d2.apply(ba)
    d1.apply(ba)
    np.testing.assert_array_equal(ab, ba)
