"""Unit tests for page copies, page tables, and the address space."""

import numpy as np
import pytest

from repro.mem.addressing import AddressSpace
from repro.mem.intervals import WriteNotice
from repro.mem.pages import PageCopy, PageTable
from repro.mem.timestamps import VectorClock


class TestPageCopy:
    def test_defaults_to_zeroed_valid_page(self):
        copy = PageCopy(3, 16)
        assert copy.valid
        assert not copy.dirty
        assert (copy.values == 0).all()

    def test_record_write_and_take_ranges(self):
        copy = PageCopy(0, 32)
        copy.record_write(0, 4)
        copy.record_write(2, 8)
        copy.record_write(16, 20)
        assert copy.dirty
        assert copy.take_written_ranges() == [(0, 8), (16, 20)]
        assert not copy.dirty
        assert copy.take_written_ranges() == []

    def test_record_write_bounds_checked(self):
        copy = PageCopy(0, 8)
        with pytest.raises(ValueError):
            copy.record_write(4, 12)
        with pytest.raises(ValueError):
            copy.record_write(5, 5)

    def test_notices_deduplicated_by_interval(self):
        copy = PageCopy(0, 8)
        vc = VectorClock((1, 0))
        n1 = WriteNotice(page=0, proc=1, index=1, vc=vc)
        assert copy.add_notice(n1)
        assert not copy.add_notice(WriteNotice(page=0, proc=1, index=1,
                                               vc=vc))
        assert len(copy.pending_notices) == 1
        assert copy.clear_notices() == [n1]
        assert copy.pending_notices == []


class TestPageTable:
    def test_install_and_validity(self):
        table = PageTable(words_per_page=8)
        assert not table.has_copy(0)
        table.install(0, values=np.arange(8))
        assert table.is_valid(0)
        table.invalidate(0)
        assert table.has_copy(0)
        assert not table.is_valid(0)
        assert table.valid_pages() == []
        assert table.pages() == [0]

    def test_install_existing_updates_values(self):
        table = PageTable(words_per_page=4)
        table.install(1)
        table.install(1, values=np.ones(4))
        assert (table.get(1).values == 1).all()

    def test_drop(self):
        table = PageTable(words_per_page=4)
        table.install(2)
        table.drop(2)
        assert not table.has_copy(2)


class TestAddressSpace:
    def test_allocation_is_page_aligned(self):
        space = AddressSpace(words_per_page=8)
        a = space.allocate("a", 10)  # 2 pages
        b = space.allocate("b", 8)   # 1 page
        assert a.first_page == 0 and a.npages == 2
        assert b.first_page == 2 and b.npages == 1
        assert space.allocated_pages == 3

    def test_duplicate_name_rejected(self):
        space = AddressSpace(words_per_page=8)
        space.allocate("x", 1)
        with pytest.raises(ValueError):
            space.allocate("x", 1)

    def test_locate(self):
        space = AddressSpace(words_per_page=8)
        space.allocate("pad", 8)
        seg = space.allocate("data", 20)
        assert seg.locate(0) == (1, 0)
        assert seg.locate(9) == (2, 1)
        with pytest.raises(IndexError):
            seg.locate(20)

    def test_page_ranges_splits_on_page_boundaries(self):
        space = AddressSpace(words_per_page=8)
        seg = space.allocate("data", 24)
        pieces = list(seg.page_ranges(4, 20))
        assert pieces == [(0, 4, 8), (1, 0, 8), (2, 0, 4)]

    def test_page_ranges_bounds_checked(self):
        space = AddressSpace(words_per_page=8)
        seg = space.allocate("data", 8)
        with pytest.raises(IndexError):
            list(seg.page_ranges(0, 9))

    def test_segment_pages_property(self):
        space = AddressSpace(words_per_page=4)
        seg = space.allocate("s", 9)
        assert list(seg.pages) == [0, 1, 2]
