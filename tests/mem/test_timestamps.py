"""Unit tests for vector timestamps."""

import pytest

from repro.mem.timestamps import VectorClock


def test_zero_and_indexing():
    vc = VectorClock.zero(4)
    assert len(vc) == 4
    assert vc[2] == 0


def test_immutability():
    vc = VectorClock.zero(2)
    with pytest.raises(AttributeError):
        vc.components = (1, 2)


def test_incremented_returns_new_clock():
    vc = VectorClock.zero(3)
    vc2 = vc.incremented(1)
    assert vc2.components == (0, 1, 0)
    assert vc.components == (0, 0, 0)


def test_merge_componentwise_max():
    a = VectorClock((3, 0, 5))
    b = VectorClock((1, 4, 2))
    assert a.merged(b).components == (3, 4, 5)


def test_dominance_and_concurrency():
    a = VectorClock((1, 2))
    b = VectorClock((1, 1))
    c = VectorClock((0, 3))
    assert a.dominates(b)
    assert a.strictly_dominates(b)
    assert not b.dominates(a)
    assert a.concurrent_with(c)
    assert a.dominates(a)
    assert not a.strictly_dominates(a)


def test_total_is_linear_extension():
    a = VectorClock((1, 2))
    b = VectorClock((2, 2))
    assert b.strictly_dominates(a)
    assert b.total() > a.total()


def test_size_mismatch_raises():
    with pytest.raises(ValueError):
        VectorClock((1,)).merged(VectorClock((1, 2)))


def test_equality_and_hash():
    assert VectorClock((1, 2)) == VectorClock((1, 2))
    assert hash(VectorClock((1, 2))) == hash(VectorClock((1, 2)))
    assert VectorClock((1, 2)) != VectorClock((2, 1))
