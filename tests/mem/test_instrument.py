"""Opt-in mem.* instrumentation (repro.mem.instrument).

The parity-critical property: nothing is registered or recorded
unless ``enable`` was called, so a default run's registry dump is
bit-for-bit identical to a build without the instrumentation.
"""

import numpy as np
import pytest

from repro.mem import Diff, instrument
from repro.mem.pages import PageTable
from repro.obs import MEM_CATALOG, MetricsRegistry


@pytest.fixture(autouse=True)
def _reset_instruments():
    instrument.disable()
    yield
    instrument.disable()


def _exercise_substrate():
    table = PageTable(words_per_page=8)
    copy = table.install(0)
    copy.make_twin()
    copy.make_twin()  # no-op: twin already frozen
    diff = Diff(0, [(1, np.array([2.0, 3.0])), (5, np.array([7.0]))])
    Diff.decode(diff.encode())
    return table


def test_disabled_by_default_registers_nothing():
    registry = MetricsRegistry()
    _exercise_substrate()
    assert not any(name.startswith("mem.")
                   for name in registry.names())


def test_enable_records_substrate_activity():
    registry = MetricsRegistry()
    ins = instrument.enable(registry)
    assert instrument.active is ins
    _exercise_substrate()

    assert registry.total("mem.page_installs_total") == 1
    assert registry.total("mem.twin_snapshots_total") == 1
    assert registry.total("mem.diffs_encoded_total") == 1
    assert registry.total("mem.diffs_decoded_total") == 1
    runs = registry.get("mem.diff_runs").labels()
    assert runs.count == 1 and runs.sum == 2.0
    encoded = registry.get("mem.diff_encoded_bytes").labels()
    # 16-byte header + 2 runs x 8 + 3 words x 8 host bytes.
    assert encoded.sum == 16 + 16 + 24
    accounted = registry.get("mem.diff_accounted_bytes").labels()
    # 2 runs x 8 + 3 words x 4 simulated bytes.
    assert accounted.sum == 16 + 12


def test_enable_installs_full_mem_catalogue():
    registry = MetricsRegistry()
    instrument.enable(registry)
    for spec in MEM_CATALOG:
        assert registry.get(spec.name).spec is spec


def test_disable_stops_recording_but_keeps_series():
    registry = MetricsRegistry()
    instrument.enable(registry)
    _exercise_substrate()
    instrument.disable()
    assert instrument.active is None
    _exercise_substrate()
    assert registry.total("mem.diffs_encoded_total") == 1


def test_default_machine_dump_has_no_mem_series():
    """A normal simulation never touches the mem catalogue."""
    from repro.apps import create_app
    from repro.core.config import MachineConfig, NetworkConfig
    from repro.core.runner import run_app

    result = run_app(create_app("jacobi", n=16, iterations=2),
                     MachineConfig(nprocs=2,
                                   network=NetworkConfig.atm()),
                     protocol="li")
    names = [m["name"] for m in result.registry.dump()["metrics"]]
    assert not any(name.startswith("mem.") for name in names)
