"""The canonical RDIF diff serialization (repro.mem.wire).

Two layers of pinning (docs/memory.md documents the format):

- **Golden fixtures** — hand-written diffs with their exact expected
  byte strings.  If any of these change, the wire format changed:
  bump ``WIRE_VERSION`` and update docs/memory.md's worked example.
- **Property tests** — Hypothesis drives random diffs through
  ``encode -> decode`` and demands identity, plus exactness of the
  two size accountings (``size_bytes``/``accounted_size`` for the
  simulated wire, ``encoded_size`` for the host blob).
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.diffs import Diff, normalize_ranges, ranges_word_count
from repro.mem.wire import (DIFF_HEADER_BYTES, HOST_WORD_BYTES,
                            RUN_HEADER_BYTES, WIRE_VERSION,
                            WireFormatError, accounted_size,
                            decode_diff, encode_diff, encoded_size)

# -- golden fixtures ----------------------------------------------------

# Empty diff: header only, run_count == 0, no payload.
GOLDEN_EMPTY = bytes.fromhex(
    "52444946"    # magic  "RDIF"
    "01"          # version 1
    "04"          # word_size 4
    "0000"        # flags 0
    "00000000"    # page 0
    "00000000")   # run_count 0

# One run of three words on page 7: [2, 5) = 1.0, 2.0, 3.0.
GOLDEN_SINGLE_RUN = bytes.fromhex(
    "52444946" "01" "04" "0000"
    "07000000"                  # page 7
    "01000000"                  # run_count 1
    "02000000" "03000000"       # run: offset 2, count 3
    "000000000000f03f"          # 1.0
    "0000000000000040"          # 2.0
    "0000000000000840")         # 3.0

# Two runs, 8-byte machine words, multi-byte page number 0x01020304
# (pins little-endianness): [0,1) = -1.5 and [5,7) = 0.0, 5e-324.
GOLDEN_TWO_RUNS = bytes.fromhex(
    "52444946" "01" "08" "0000"
    "04030201"                  # page 0x01020304, little-endian
    "02000000"                  # run_count 2
    "00000000" "01000000"       # run: offset 0, count 1
    "05000000" "02000000"       # run: offset 5, count 2
    "000000000000f8bf"          # -1.5
    "0000000000000000"          # 0.0
    "0100000000000000")         # 5e-324 (smallest subnormal)


def test_golden_empty_diff():
    diff = Diff(0, [], word_size=4)
    assert diff.encode() == GOLDEN_EMPTY
    assert diff.size_bytes == 0
    assert decode_diff(GOLDEN_EMPTY) == diff


def test_golden_single_run():
    diff = Diff(7, [(2, np.array([1.0, 2.0, 3.0]))], word_size=4)
    assert diff.encode() == GOLDEN_SINGLE_RUN
    # Accounted wire cost: one 8-byte run header + 3 4-byte words.
    assert diff.size_bytes == 8 + 3 * 4 == 20
    assert len(GOLDEN_SINGLE_RUN) == 16 + 8 + 3 * 8 == 48
    assert decode_diff(GOLDEN_SINGLE_RUN) == diff


def test_golden_two_runs():
    diff = Diff(0x01020304,
                [(0, np.array([-1.5])), (5, np.array([0.0, 5e-324]))],
                word_size=8)
    assert diff.encode() == GOLDEN_TWO_RUNS
    assert diff.size_bytes == 2 * 8 + 3 * 8 == 40
    back = decode_diff(GOLDEN_TWO_RUNS)
    assert back == diff
    assert back.page == 0x01020304
    assert back.word_size == 8


def test_golden_header_constants():
    assert WIRE_VERSION == 1
    assert DIFF_HEADER_BYTES == 16
    assert RUN_HEADER_BYTES == 8
    assert HOST_WORD_BYTES == 8


# -- round-trip property ------------------------------------------------

PAGE_WORDS = 64

ranges_strategy = st.lists(
    st.tuples(st.integers(0, PAGE_WORDS - 1),
              st.integers(0, PAGE_WORDS - 1)).map(
        lambda t: (min(t), max(t) + 1)),
    min_size=0, max_size=8)

values_strategy = st.lists(
    st.floats(allow_nan=False, width=64),
    min_size=PAGE_WORDS, max_size=PAGE_WORDS)


@given(values_strategy, ranges_strategy,
       st.integers(0, 2 ** 32 - 1), st.sampled_from([4, 8]))
def test_encode_decode_identity(values, ranges, page, word_size):
    source = np.array(values)
    diff = Diff.from_ranges(page, source, ranges, word_size=word_size)
    blob = encode_diff(diff)
    back = decode_diff(blob)
    assert back == diff
    assert back.ranges() == diff.ranges()
    # Bit-exact payload, even for signed zeros / subnormals.
    assert back.payload == diff.payload


@given(values_strategy, ranges_strategy, st.sampled_from([4, 8]))
def test_size_accounting_is_exact(values, ranges, word_size):
    source = np.array(values)
    diff = Diff.from_ranges(0, source, ranges, word_size=word_size)
    runs = len(diff.starts)
    words = ranges_word_count(normalize_ranges(ranges))
    assert diff.word_count == words
    assert diff.size_bytes == accounted_size(runs, words, word_size)
    assert diff.size_bytes == RUN_HEADER_BYTES * runs \
        + words * word_size
    assert len(encode_diff(diff)) == encoded_size(runs, words)


@given(st.binary(max_size=2 * DIFF_HEADER_BYTES))
def test_decoder_never_crashes_on_noise(blob):
    """Arbitrary bytes either decode or raise WireFormatError; never
    an unannounced exception."""
    try:
        decode_diff(blob)
    except WireFormatError:
        pass


# -- validation errors --------------------------------------------------

def _valid_blob():
    return Diff(7, [(2, np.array([1.0, 2.0, 3.0]))]).encode()


def test_rejects_short_blob():
    with pytest.raises(WireFormatError, match="header"):
        decode_diff(b"RDIF")


def test_rejects_bad_magic():
    blob = b"XDIF" + _valid_blob()[4:]
    with pytest.raises(WireFormatError, match="magic"):
        decode_diff(blob)


def test_rejects_unknown_version():
    blob = bytearray(_valid_blob())
    blob[4] = 99
    with pytest.raises(WireFormatError, match="version"):
        decode_diff(bytes(blob))


def test_rejects_unknown_flags():
    blob = bytearray(_valid_blob())
    blob[6] = 1
    with pytest.raises(WireFormatError, match="flags"):
        decode_diff(bytes(blob))


def test_rejects_truncated_run_table():
    blob = bytearray(_valid_blob())
    blob[12] = 10  # claim 10 runs; only one entry present
    with pytest.raises(WireFormatError, match="truncated"):
        decode_diff(bytes(blob))


def test_rejects_empty_run():
    blob = bytearray(_valid_blob())
    blob[20:24] = (0).to_bytes(4, "little")  # count = 0
    with pytest.raises(WireFormatError, match="empty"):
        decode_diff(bytes(blob))


def test_rejects_overlapping_runs():
    diff = Diff(0, [(0, np.array([1.0])), (4, np.array([2.0]))])
    blob = bytearray(diff.encode())
    blob[24:28] = (0).to_bytes(4, "little")  # second run offset -> 0
    with pytest.raises(WireFormatError, match="overlaps"):
        decode_diff(bytes(blob))


def test_rejects_payload_length_mismatch():
    with pytest.raises(WireFormatError, match="payload"):
        decode_diff(_valid_blob() + b"\x00" * 8)


def test_rejects_unsorted_runs():
    diff = Diff(0, [(0, np.array([1.0])), (8, np.array([2.0]))])
    blob = bytearray(diff.encode())
    # Swap the two run entries: (8,1) before (0,1).
    blob[16:24], blob[24:32] = blob[24:32], blob[16:24]
    with pytest.raises(WireFormatError, match="overlaps"):
        decode_diff(bytes(blob))


def test_diff_methods_wrap_module_functions():
    diff = Diff(3, [(1, np.array([4.0, 5.0]))])
    assert Diff.decode(diff.encode()) == diff
