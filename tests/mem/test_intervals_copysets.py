"""Unit tests for interval logs, diff stores, and copyset tables."""

import numpy as np
import pytest

from repro.mem.copyset import CopysetTable
from repro.mem.diffs import Diff
from repro.mem.intervals import (DiffStore, IntervalLog, IntervalRecord,
                                 WriteNotice)
from repro.mem.timestamps import VectorClock


def record(proc, index, vc, pages):
    return IntervalRecord(proc=proc, index=index,
                          vc=VectorClock(vc), pages=frozenset(pages),
                          pending_ranges={p: [(0, 1)] for p in pages})


class TestIntervalRecord:
    def test_notices_cover_every_page(self):
        rec = record(1, 3, (0, 3, 1), [5, 2])
        notices = rec.notices()
        assert [(n.page, n.proc, n.index) for n in notices] == \
            [(2, 1, 3), (5, 1, 3)]
        assert all(n.vc == rec.vc for n in notices)
        assert notices[0].interval_id == (1, 3)


class TestIntervalLog:
    def test_add_is_idempotent(self):
        log = IntervalLog()
        rec = record(0, 1, (1, 0, 0), [0])
        log.add(rec)
        log.add(record(0, 1, (9, 9, 9), [7]))  # same id, ignored
        assert len(log) == 1
        assert log.get((0, 1)) is rec

    def test_records_after_filters_by_component(self):
        log = IntervalLog()
        log.add(record(0, 1, (1, 0, 0), [0]))
        log.add(record(0, 2, (2, 0, 0), [0]))
        log.add(record(1, 1, (2, 1, 0), [1]))
        after = log.records_after(VectorClock((1, 0, 0)))
        assert [r.interval_id for r in after] == [(0, 2), (1, 1)]

    def test_records_after_sorted_by_hb1_extension(self):
        log = IntervalLog()
        log.add(record(1, 1, (0, 1, 0), [0]))
        log.add(record(2, 1, (0, 1, 1), [0]))  # after (1,1)
        after = log.records_after(VectorClock.zero(3))
        totals = [r.vc.total() for r in after]
        assert totals == sorted(totals)

    def test_all_records(self):
        log = IntervalLog()
        log.add(record(0, 1, (1, 0, 0), [0]))
        log.add(record(1, 1, (0, 1, 0), [0]))
        assert len(log.all_records()) == 2
        assert (0, 1) in log
        assert (5, 5) not in log


class TestDiffStore:
    def make_diff(self, page=0):
        return Diff.from_ranges(page, np.arange(8.0), [(0, 2)])

    def test_put_get_has(self):
        store = DiffStore()
        diff = self.make_diff()
        store.put(1, 2, diff)
        assert store.has(1, 2, 0)
        assert store.get(1, 2, 0) is diff
        assert store.get(1, 2, 9) is None
        assert not store.has(0, 0, 0)
        assert len(store) == 1

    def test_put_does_not_overwrite(self):
        store = DiffStore()
        first = self.make_diff()
        store.put(1, 2, first)
        store.put(1, 2, self.make_diff())
        assert store.get(1, 2, 0) is first


class TestCopysetTable:
    def test_add_and_others_exclude_self(self):
        table = CopysetTable(self_proc=2)
        table.add(0, 2)
        table.add(0, 3)
        table.add_many(0, [1, 3])
        assert table.get(0) == {1, 2, 3}
        assert table.others(0) == {1, 3}

    def test_remove_and_replace(self):
        table = CopysetTable(0)
        table.add_many(5, [0, 1, 2])
        table.remove(5, 1)
        assert table.get(5) == {0, 2}
        table.replace(5, [3])
        assert table.get(5) == {3}
        table.remove(99, 1)  # unknown page: no-op

    def test_believes_cached(self):
        table = CopysetTable(0)
        assert not table.believes_cached(1, 0)
        table.add(1, 4)
        assert table.believes_cached(1, 4)


class TestWriteNotice:
    def test_interval_id(self):
        notice = WriteNotice(page=3, proc=1, index=7,
                             vc=VectorClock((0, 7)))
        assert notice.interval_id == (1, 7)
