"""Unit tests for the machine, node CPU model, and application API."""

import numpy as np
import pytest

from repro.core import DsmApi, Machine, MachineConfig, NetworkConfig
from repro.net.message import Message, MsgKind
from repro.sim.engine import SimulationError


def make_machine(nprocs=4, protocol="lh", **kwargs):
    config = MachineConfig(nprocs=nprocs,
                           network=NetworkConfig.ideal(), **kwargs)
    return Machine(config, protocol=protocol)


class TestAllocation:
    def test_striped_ownership(self):
        machine = make_machine(nprocs=4)
        seg = machine.allocate("a", machine.config.words_per_page * 6,
                               owner="striped")
        owners = [machine.page_owner(p) for p in seg.pages]
        assert owners == [0, 1, 2, 3, 0, 1]

    def test_block_ownership(self):
        machine = make_machine(nprocs=4)
        seg = machine.allocate("a", machine.config.words_per_page * 8,
                               owner="block")
        owners = [machine.page_owner(p) for p in seg.pages]
        assert owners == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_fixed_ownership(self):
        machine = make_machine(nprocs=4)
        seg = machine.allocate("a", 64, owner=2)
        assert machine.page_owner(seg.first_page) == 2
        copy = machine.nodes[2].pagetable.get(seg.first_page)
        assert copy is not None and copy.valid

    def test_init_values_land_at_owner(self):
        machine = make_machine(nprocs=2)
        init = np.arange(100, dtype=float)
        seg = machine.allocate("a", 100, init=init, owner=0)
        copy = machine.nodes[0].pagetable.get(seg.first_page)
        np.testing.assert_array_equal(copy.values[:100], init)

    def test_bad_owner_spec_rejected(self):
        machine = make_machine(nprocs=2)
        with pytest.raises(ValueError):
            machine.allocate("a", 8, owner="diagonal")
        with pytest.raises(ValueError):
            machine.allocate("b", 8, owner=7)

    def test_init_length_checked(self):
        machine = make_machine(nprocs=2)
        with pytest.raises(ValueError):
            machine.allocate("a", 8, init=np.zeros(9))

    def test_unallocated_page_owner_rejected(self):
        machine = make_machine(nprocs=2)
        with pytest.raises(SimulationError):
            machine.page_owner(99)


class TestRun:
    def test_run_collects_per_proc_results(self):
        machine = make_machine(nprocs=3)
        machine.allocate("a", 8)

        def worker(api, proc):
            yield from api.compute(100 * (proc + 1))
            return proc * 10

        result = machine.run(
            lambda p: worker(DsmApi(machine.nodes[p]), p))
        assert result.app_result == [0, 10, 20]
        assert result.elapsed_cycles == 300.0

    def test_deadlock_reported_with_culprits(self):
        machine = make_machine(nprocs=2)
        machine.allocate("a", 8)

        def worker(api, proc):
            if proc == 0:
                yield from api.barrier(0)  # proc 1 never arrives
            else:
                yield from api.compute(1)

        with pytest.raises(SimulationError, match=r"\[0\]"):
            machine.run(lambda p: worker(DsmApi(machine.nodes[p]), p))


class TestApi:
    def test_write_scalar_broadcast(self):
        machine = make_machine(nprocs=1)
        seg = machine.allocate("a", 32)

        def worker(api, proc):
            yield from api.write_region(seg, 4, 8, 7.5)
            data = yield from api.read_region(seg, 0, 10)
            return data.tolist()

        result = machine.run(
            lambda p: worker(DsmApi(machine.nodes[p]), p))
        assert result.app_result[0] == [0, 0, 0, 0, 7.5, 7.5, 7.5,
                                        7.5, 0, 0]

    def test_write_length_mismatch_rejected(self):
        machine = make_machine(nprocs=1)
        seg = machine.allocate("a", 32)

        def worker(api, proc):
            yield from api.write_region(seg, 0, 4, np.zeros(5))

        with pytest.raises(ValueError):
            machine.run(lambda p: worker(DsmApi(machine.nodes[p]), p))

    def test_region_ops_cross_page_boundaries(self):
        machine = make_machine(nprocs=2)
        words = machine.config.words_per_page
        seg = machine.allocate("a", words * 3)

        def worker(api, proc):
            if proc == 0:
                span = np.arange(words * 2, dtype=float)
                yield from api.write_region(seg, words // 2,
                                            words // 2 + len(span),
                                            span)
            yield from api.barrier(0)
            data = yield from api.read_region(seg, words // 2,
                                              words // 2 + words * 2)
            return float(data.sum())

        result = machine.run(
            lambda p: worker(DsmApi(machine.nodes[p]), p))
        expected = float(np.arange(words * 2).sum())
        assert result.app_result == [expected, expected]


class TestCpuModel:
    def test_compute_accounts_interrupt_cycles(self):
        """Handler (interrupt) work that lands inside an application
        compute window stretches the window."""
        machine = make_machine(nprocs=2)
        machine.allocate("a", 8)
        node = machine.nodes[0]
        finished = {}

        def busy(api, proc):
            if proc == 0:
                yield from api.compute(10_000)
                finished["t"] = api.now
            else:
                yield from api.compute(1)

        # Inject an interrupt at t=5000 worth 2000 cycles.
        machine.sim.schedule(5_000.0, node.handler_charge, 2_000.0)
        machine.run(lambda p: busy(DsmApi(machine.nodes[p]), p))
        assert finished["t"] == 12_000.0

    def test_handlers_serialize(self):
        machine = make_machine(nprocs=2)
        node = machine.nodes[0]
        first_end = node.handler_charge(100.0)
        second_end = node.handler_charge(50.0)
        assert first_end == 100.0
        assert second_end == 150.0

    def test_negative_compute_rejected(self):
        machine = make_machine(nprocs=1)
        machine.allocate("a", 8)

        def worker(api, proc):
            yield from api.compute(-5)

        with pytest.raises(ValueError):
            machine.run(lambda p: worker(DsmApi(machine.nodes[p]), p))


class TestMessagePlumbing:
    def test_send_with_wrong_source_rejected(self):
        machine = make_machine(nprocs=2)
        node = machine.nodes[0]
        message = Message(src=1, dst=0, kind=MsgKind.PAGE_REQ)

        def proc():
            yield from node.app_send(message)

        machine.sim.spawn(proc())
        with pytest.raises(SimulationError, match="src"):
            machine.sim.run()

    def test_unexpected_reply_rejected(self):
        machine = make_machine(nprocs=2)
        message = Message(src=1, dst=0, kind=MsgKind.PAGE_REPLY,
                          reply_to=12345)
        machine.nodes[1].metrics.record_send(message)
        machine.network.transmit(message)
        with pytest.raises(SimulationError, match="unexpected reply"):
            machine.sim.run()
