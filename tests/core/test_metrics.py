"""Unit tests for metrics aggregation."""

import pytest

from repro.core.metrics import NodeMetrics, RunResult
from repro.net.message import Message, MsgKind


def make_result(nodes=2, **overrides):
    metrics = []
    for proc in range(nodes):
        m = NodeMetrics(proc=proc)
        m.finish_time = 1000.0
        metrics.append(m)
    defaults = dict(app="test", protocol="lh", nprocs=nodes,
                    elapsed_cycles=1000.0, node_metrics=metrics,
                    network_messages=0, network_bytes=0,
                    network_contention_cycles=0.0)
    defaults.update(overrides)
    return RunResult(**defaults)


def test_record_send_accumulates():
    m = NodeMetrics(proc=0)
    m.record_send(Message(src=0, dst=1, kind=MsgKind.LOCK_REQ))
    m.record_send(Message(src=0, dst=1, kind=MsgKind.PAGE_REPLY,
                          data_bytes=100))
    assert m.total_messages == 2
    assert m.sync_messages == 1
    assert m.data_bytes_sent == 100
    assert m.wire_bytes_sent > 100  # headers included


def test_run_result_aggregates_over_nodes():
    result = make_result(nodes=3)
    result.node_metrics[0].record_send(
        Message(src=0, dst=1, kind=MsgKind.DIFF_REPLY, data_bytes=512))
    result.node_metrics[2].record_send(
        Message(src=2, dst=0, kind=MsgKind.BARRIER_ARRIVE))
    assert result.total_messages == 2
    assert result.sync_messages == 1
    assert result.data_kbytes == pytest.approx(0.5)
    by_kind = result.messages_by_kind()
    assert by_kind[MsgKind.DIFF_REPLY] == 1


def test_speedup_over():
    base = make_result(elapsed_cycles=8000.0)
    fast = make_result(elapsed_cycles=2000.0)
    assert fast.speedup_over(base) == pytest.approx(4.0)
    broken = make_result(elapsed_cycles=0.0)
    with pytest.raises(ValueError):
        broken.speedup_over(base)


def test_summary_mentions_key_numbers():
    result = make_result()
    text = result.summary()
    assert "test/lh" in text
    assert "2 procs" in text


def test_time_breakdown_fractions():
    result = make_result(nodes=2)
    for m in result.node_metrics:
        m.compute_cycles = 400.0
        m.lock_wait_cycles = 500.0
        m.overhead_cycles = 50.0
    breakdown = result.time_breakdown()
    assert breakdown["compute"] == pytest.approx(0.4)
    assert breakdown["lock_wait"] == pytest.approx(0.5)
    assert breakdown["other"] >= 0.0


def test_time_breakdown_empty_run():
    result = make_result()
    for m in result.node_metrics:
        m.finish_time = 0.0
    assert result.time_breakdown() == {}
