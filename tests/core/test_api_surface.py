"""API surface details: touch, single-word helpers, read isolation."""

import numpy as np
import pytest

from repro.core import DsmApi, Machine, MachineConfig, NetworkConfig


def make_machine(protocol="lh", nprocs=2):
    return Machine(MachineConfig(nprocs=nprocs,
                                 network=NetworkConfig.atm()),
                   protocol=protocol)


def run(machine, worker):
    return machine.run(lambda p: worker(DsmApi(machine.nodes[p]), p))


def test_touch_faults_pages_without_reading():
    machine = make_machine()
    words = machine.config.words_per_page
    seg = machine.allocate("x", words * 2, owner=0)

    def worker(api, proc):
        if proc == 1:
            yield from api.touch(seg, 0, words * 2)
        yield from api.compute(1)

    run(machine, worker)
    # Node 1 now holds valid copies of both pages.
    for page in seg.pages:
        assert machine.nodes[1].pagetable.is_valid(page)


def test_read_returns_copy_not_view():
    """Mutating the array a read returned must not corrupt the page."""
    machine = make_machine(nprocs=1)
    seg = machine.allocate("x", 16, init=np.arange(16, dtype=float))

    def worker(api, proc):
        data = yield from api.read_region(seg, 0, 16)
        data[:] = -1.0  # caller-side scribble
        again = yield from api.read_region(seg, 0, 16)
        return again.tolist()

    result = run(machine, worker)
    assert result.app_result[0] == list(range(16))


def test_single_word_helpers_round_trip():
    machine = make_machine(nprocs=1)
    seg = machine.allocate("x", 8)

    def worker(api, proc):
        yield from api.write(seg, 3, 2.5)
        value = yield from api.read(seg, 3)
        return value

    result = run(machine, worker)
    assert result.app_result == [2.5]


def test_out_of_segment_access_rejected():
    machine = make_machine(nprocs=1)
    seg = machine.allocate("x", 8)

    def worker(api, proc):
        yield from api.read(seg, 8)

    with pytest.raises(IndexError):
        run(machine, worker)


def test_now_property_tracks_simulated_time():
    machine = make_machine(nprocs=1)
    machine.allocate("x", 8)
    times = []

    def worker(api, proc):
        times.append(api.now)
        yield from api.compute(123.0)
        times.append(api.now)

    run(machine, worker)
    assert times == [0.0, 123.0]


def test_page_values_debug_helper():
    machine = make_machine(nprocs=2)
    seg = machine.allocate("x", 8, init=np.arange(8, dtype=float),
                           owner=0)
    values = machine.page_values(seg.first_page, 0)
    assert values[3] == 3.0
    with pytest.raises(KeyError):
        machine.page_values(seg.first_page, 1)  # node 1 has no copy
