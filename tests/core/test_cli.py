"""CLI smoke tests (small scale to stay fast)."""

import pytest

from repro.cli import build_parser, main


def test_parser_builds_and_rejects_unknown_app():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "doom"])


def test_run_command(capsys):
    assert main(["run", "water", "--procs", "2",
                 "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "water/lh on 2 procs" in out
    assert "time breakdown" in out


def test_run_with_speedup(capsys):
    assert main(["run", "jacobi", "--procs", "2", "--scale", "small",
                 "--speedup"]) == 0
    assert "speedup over sequential" in capsys.readouterr().out


def test_compare_command_lists_all_protocols(capsys):
    assert main(["compare", "water", "--procs", "2",
                 "--scale", "small"]) == 0
    out = capsys.readouterr().out
    for protocol in ("lh", "li", "lu", "ei", "eu"):
        assert f"\n{protocol:>6s}" in out or out.startswith(protocol)


def test_sweep_command(capsys):
    assert main(["sweep", "jacobi", "--scale", "small",
                 "--proc-list", "1,2", "--protocol", "li"]) == 0
    out = capsys.readouterr().out
    assert "jacobi/li" in out
    assert "speedup=" in out


def test_networks_command(capsys):
    assert main(["networks", "--app", "jacobi", "--procs", "2",
                 "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "Ethernet" in out
    assert "ATM" in out


def test_run_with_loss_reports_transport_stats(capsys):
    assert main(["run", "jacobi", "--procs", "4", "--scale", "small",
                 "--network", "ethernet", "--loss", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "transport:" in out
    assert "retransmits=" in out


def test_run_without_faults_prints_no_transport_line(capsys):
    assert main(["run", "jacobi", "--procs", "2",
                 "--scale", "small"]) == 0
    assert "transport:" not in capsys.readouterr().out


def test_stall_flag_parses_and_rejects_garbage():
    parser = build_parser()
    args = parser.parse_args(["run", "jacobi", "--stall", "1:500:200",
                              "--stall", "0:10:20"])
    assert [(s.proc, s.at_us, s.duration_us) for s in args.stall] == \
        [(1, 500.0, 200.0), (0, 10.0, 20.0)]
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "jacobi", "--stall", "nope"])


def test_losssweep_command(capsys):
    assert main(["losssweep", "jacobi", "--procs", "4",
                 "--scale", "small", "--network", "ethernet",
                 "--rates", "0.0,0.01", "--protocols", "lh"]) == 0
    out = capsys.readouterr().out
    assert "slowdown" in out
    assert "1.00x" in out          # the 0.0-rate baseline row
    with pytest.raises(SystemExit):
        main(["losssweep", "jacobi", "--protocols", "doom"])


def test_report_command(tmp_path, capsys):
    target = tmp_path / "report.md"
    assert main(["report", str(target), "--scale", "small",
                 "--no-cache"]) == 0
    text = target.read_text()
    assert "# EXPERIMENTS" in text
    assert "Table 2" in text


def test_report_warm_cache_executes_nothing(tmp_path, capsys):
    cache = tmp_path / "cache"
    cold = tmp_path / "cold.md"
    warm = tmp_path / "warm.md"
    assert main(["report", str(cold), "--scale", "small",
                 "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    assert main(["report", str(warm), "--scale", "small",
                 "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "lab: executed 0, " in out      # zero simulations re-run
    assert warm.read_bytes() == cold.read_bytes()


def test_stats_save_load_roundtrip(tmp_path, capsys):
    saved = tmp_path / "result.json"
    assert main(["stats", "jacobi", "--procs", "2", "--scale",
                 "small", "--no-cache", "--save", str(saved)]) == 0
    first = capsys.readouterr().out
    assert saved.exists()
    assert main(["stats", "--load", str(saved)]) == 0
    assert capsys.readouterr().out == first


def test_stats_load_accepts_cache_envelopes(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["stats", "jacobi", "--procs", "2", "--scale",
                 "small", "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    entries = list(cache.glob("??/*.json"))
    assert entries
    assert main(["stats", "--load", str(entries[0]),
                 "--format", "table"]) == 0
    assert "dsm.messages_total" in capsys.readouterr().out


def test_stats_requires_app_or_load(capsys):
    with pytest.raises(SystemExit):
        main(["stats"])


def test_cached_cli_run_is_identical(tmp_path, capsys):
    cache = tmp_path / "cache"
    args = ["run", "water", "--procs", "2", "--scale", "small",
            "--cache-dir", str(cache)]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0                 # served from the cache
    assert capsys.readouterr().out == first


def test_serve_command_reports_percentiles(capsys):
    assert main(["serve", "--requests", "40", "--rate", "30000",
                 "--protocols", "li,lh", "--networks", "ethernet,atm",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "p50us" in out and "p99us" in out and "p999us" in out
    for cell in ("li", "lh", "ethernet", "atm"):
        assert cell in out


def test_serve_tail_attribution(capsys):
    assert main(["serve", "--requests", "30", "--rate", "30000",
                 "--protocols", "lh", "--networks", "atm",
                 "--tail", "3", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "slowest 3 requests" in out
    assert "queue" in out and "contend" in out


def test_servesweep_writes_artifact(tmp_path, capsys):
    out_file = tmp_path / "sweep.json"
    assert main(["servesweep", "--requests", "30",
                 "--rates", "10000,40000", "--protocols", "lh",
                 "--networks", "atm", "--out", str(out_file),
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "lh/atm" in out
    import json as json_module
    dump = json_module.loads(out_file.read_text())
    assert len(dump["cells"][0]["points"]) == 2


@pytest.mark.parametrize("flags", [
    ["serve", "--rate", "0"],
    ["serve", "--rate", "-100"],
    ["serve", "--rate", "fast"],
    ["serve", "--read-fraction", "1.5"],
    ["serve", "--read-fraction", "-0.1"],
    ["serve", "--zipf-s", "-0.5"],
    ["serve", "--slo-us", "-1"],
    ["serve", "--arrival", "bursty"],
    ["servesweep", "--read-fraction", "2"],
    ["servesweep", "--zipf-s", "-1"],
])
def test_serve_flag_validation(flags):
    with pytest.raises(SystemExit):
        build_parser().parse_args(flags)


@pytest.mark.parametrize("argv,message", [
    (["servesweep", "--rates", "10000,0"], "arrival rate"),
    (["serve", "--protocols", "li,bogus"], "unknown protocol"),
    (["serve", "--networks", "token-ring"], "unknown network"),
    (["serve", "--requests", "0"], "at least one request"),
    (["serve", "--crash-mttf", "50000", "--crash-horizon", "100000"],
     "crash-stop"),
    (["serve", "--crash", "0:5000"], "crash-stop"),
])
def test_serve_rejects_unrunnable_cells(argv, message):
    with pytest.raises(SystemExit, match=message):
        main(argv)


def test_run_and_stats_accept_kvstore(capsys):
    assert main(["run", "kvstore", "--procs", "2", "--scale",
                 "small", "--no-cache"]) == 0
    assert "kvstore/lh on 2 procs" in capsys.readouterr().out
