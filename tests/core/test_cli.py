"""CLI smoke tests (small scale to stay fast)."""

import pytest

from repro.cli import build_parser, main


def test_parser_builds_and_rejects_unknown_app():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "doom"])


def test_run_command(capsys):
    assert main(["run", "water", "--procs", "2",
                 "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "water/lh on 2 procs" in out
    assert "time breakdown" in out


def test_run_with_speedup(capsys):
    assert main(["run", "jacobi", "--procs", "2", "--scale", "small",
                 "--speedup"]) == 0
    assert "speedup over sequential" in capsys.readouterr().out


def test_compare_command_lists_all_protocols(capsys):
    assert main(["compare", "water", "--procs", "2",
                 "--scale", "small"]) == 0
    out = capsys.readouterr().out
    for protocol in ("lh", "li", "lu", "ei", "eu"):
        assert f"\n{protocol:>6s}" in out or out.startswith(protocol)


def test_sweep_command(capsys):
    assert main(["sweep", "jacobi", "--scale", "small",
                 "--proc-list", "1,2", "--protocol", "li"]) == 0
    out = capsys.readouterr().out
    assert "jacobi/li" in out
    assert "speedup=" in out


def test_networks_command(capsys):
    assert main(["networks", "--app", "jacobi", "--procs", "2",
                 "--scale", "small"]) == 0
    out = capsys.readouterr().out
    assert "Ethernet" in out
    assert "ATM" in out


def test_report_command(tmp_path, capsys):
    target = tmp_path / "report.md"
    assert main(["report", str(target), "--scale", "small"]) == 0
    text = target.read_text()
    assert "# EXPERIMENTS" in text
    assert "Table 2" in text
