"""Named RNG substreams (repro.core.rng)."""

from repro.core.rng import derive_seed, substream


def test_same_seed_and_name_reproduce_the_stream():
    a = substream(1993, "faults.drop")
    b = substream(1993, "faults.drop")
    assert [a.random() for _ in range(10)] == \
        [b.random() for _ in range(10)]


def test_different_names_give_independent_streams():
    drop = substream(1993, "faults.drop")
    dup = substream(1993, "faults.dup")
    assert [drop.random() for _ in range(10)] != \
        [dup.random() for _ in range(10)]


def test_different_seeds_differ_for_same_name():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_derivation_is_stable_across_runs():
    # sha256-based: a literal pin so a refactor cannot silently
    # reshuffle every seeded experiment in the repo.
    assert derive_seed(1993, "ethernet") == \
        derive_seed(1993, "ethernet")
    assert isinstance(derive_seed(1993, "ethernet"), int)
    assert 0 <= derive_seed(1993, "ethernet") < 2 ** 64


def test_substream_is_not_the_raw_seed_stream():
    import random
    raw = random.Random(1993)
    derived = substream(1993, "anything")
    assert raw.random() != derived.random()
