"""Unit tests for the architectural configuration and cost model."""

import pytest

from repro.core.config import (MachineConfig, NetworkConfig,
                               OverheadConfig)


class TestMachineConfig:
    def test_defaults_match_paper_model(self):
        config = MachineConfig()
        assert config.cpu_mhz == 40.0
        assert config.page_size == 4096
        assert config.words_per_page == 1024
        assert config.network.kind == "atm"

    def test_invalid_nprocs_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(nprocs=0)

    def test_page_size_must_align_to_words(self):
        with pytest.raises(ValueError):
            MachineConfig(page_size=4097)

    def test_time_conversions(self):
        config = MachineConfig(cpu_mhz=40.0)
        assert config.seconds_to_cycles(1.0) == 40e6
        assert config.us_to_cycles(25.0) == pytest.approx(1000.0)

    def test_wire_cycles_scale_with_bandwidth(self):
        slow = MachineConfig(network=NetworkConfig.atm(10.0))
        fast = MachineConfig(network=NetworkConfig.atm(100.0))
        assert slow.wire_cycles(1000) == pytest.approx(
            10 * fast.wire_cycles(1000))

    def test_replace_returns_modified_copy(self):
        config = MachineConfig(nprocs=4)
        other = config.replace(nprocs=8)
        assert other.nprocs == 8
        assert config.nprocs == 4
        assert other.network == config.network


class TestOverheadConfig:
    def test_message_cycles_formula(self):
        overhead = OverheadConfig()
        # (1000 + bytes * 1.5/4) per end.
        assert overhead.message_cycles(400, lazy=False) == \
            pytest.approx(1000 + 400 * 0.375)

    def test_lazy_doubles_per_byte_term_only(self):
        overhead = OverheadConfig()
        eager = overhead.message_cycles(1000, lazy=False)
        lazy = overhead.message_cycles(1000, lazy=True)
        assert lazy - eager == pytest.approx(1000 * 0.375)

    def test_scale_zero_removes_all_costs(self):
        overhead = OverheadConfig(scale=0.0)
        assert overhead.message_cycles(9999, lazy=True) == 0.0
        assert overhead.diff_cycles(1024) == 0.0

    def test_diff_cost_is_per_word_per_page(self):
        overhead = OverheadConfig()
        assert overhead.diff_cycles(1024) == 4096.0


class TestNetworkConfig:
    def test_factories(self):
        assert NetworkConfig.ethernet().collisions
        assert not NetworkConfig.ethernet(collisions=False).collisions
        assert NetworkConfig.atm().kind == "atm"
        assert NetworkConfig.ideal().latency_us == 0.0

    def test_bandwidth_conversion(self):
        assert NetworkConfig.atm(100.0).bandwidth_bps == 100e6
