"""RunSpec fingerprinting: the cache-key contract.

The fingerprint must commit to *everything* that can change a run's
outcome (app, params, protocol, full machine config, protocol
options, execution knobs, code version) and to nothing else — two
specs that describe the same run must collide.
"""

import json

import pytest

from repro.core.config import MachineConfig, NetworkConfig
from repro.core.runner import run_app
from repro.apps import create_app
from repro.lab import RunSpec, code_version, execute_spec, \
    payload_fingerprint

SMALL = {"n": 24, "iterations": 2}


def _spec(**overrides) -> RunSpec:
    kwargs = dict(app="jacobi", app_params=SMALL, protocol="lh",
                  config=MachineConfig(nprocs=2,
                                       network=NetworkConfig.atm()))
    kwargs.update(overrides)
    return RunSpec(**kwargs)


def test_fingerprint_is_stable_and_64_hex():
    fp = _spec().fingerprint()
    assert fp == _spec().fingerprint()
    assert len(fp) == 64
    int(fp, 16)  # raises if not hex


@pytest.mark.parametrize("change", [
    dict(app="water", app_params={"molecules": 8, "steps": 1}),
    dict(app_params={"n": 32, "iterations": 2}),
    dict(protocol="eu"),
    dict(config=MachineConfig(nprocs=4, network=NetworkConfig.atm())),
    dict(config=MachineConfig(nprocs=2,
                              network=NetworkConfig.ethernet())),
    dict(protocol_options={"piggyback_policy": "never"}),
    dict(lock_broadcast=True),
    dict(threads_per_proc=2),
    dict(max_events=1000),
])
def test_fingerprint_commits_to_every_field(change):
    assert _spec(**change).fingerprint() != _spec().fingerprint()


def test_empty_protocol_options_normalize_to_none():
    # None and {} describe the same run: same address.
    assert _spec(protocol_options={}).fingerprint() == \
        _spec(protocol_options=None).fingerprint()


def test_fingerprint_commits_to_code_version(monkeypatch):
    base = _spec().fingerprint()
    assert _spec().fingerprint(version="deadbeef") != base
    monkeypatch.setenv("REPRO_CODE_VERSION", "v-test")
    assert _spec().fingerprint() != base
    assert _spec().fingerprint() == _spec().fingerprint("v-test")


def test_code_version_is_stable_hex():
    version = code_version()
    assert version == code_version()
    assert len(version) == 64


def test_roundtrip_preserves_canonical_form():
    spec = _spec(protocol_options={"piggyback_policy": "always"},
                 max_events=5000)
    clone = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert clone.canonical() == spec.canonical()
    assert clone.fingerprint() == spec.fingerprint()


def test_label_names_the_run():
    label = _spec().label()
    assert "jacobi" in label and "lh" in label and "2p" in label


def test_payload_fingerprint_commits_to_kind_and_params():
    fp = payload_fingerprint("table1", {"scenario": "unlock"})
    assert fp == payload_fingerprint("table1", {"scenario": "unlock"})
    assert fp != payload_fingerprint("table2", {"scenario": "unlock"})
    assert fp != payload_fingerprint("table1", {"scenario": "lock"})


def test_execute_spec_matches_run_app():
    spec = _spec()
    direct = run_app(create_app("jacobi", **SMALL), spec.config,
                     protocol="lh")
    via_spec = execute_spec(spec)
    assert json.dumps(via_spec.to_dict(), sort_keys=True) == \
        json.dumps(direct.to_dict(), sort_keys=True)
