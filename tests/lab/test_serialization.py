"""RunResult / NodeMetrics / MachineConfig JSON round-trips.

The lab's disk cache and process-pool transport both rely on
``to_dict``/``from_dict`` being lossless; this checks the property on
*real* runs — every application at the small preset — not synthetic
fixtures, so any field the simulator actually populates is covered.
"""

import json

import pytest

from repro.analysis.experiments import APP_PARAMS
from repro.core.config import (FaultConfig, MachineConfig,
                               NetworkConfig, StallSpec)
from repro.core.metrics import RunResult
from repro.lab import RunSpec, execute_spec

APPS = sorted(APP_PARAMS["small"])


@pytest.fixture(scope="module")
def results():
    return {app: execute_spec(RunSpec(
        app, APP_PARAMS["small"][app], protocol="lh",
        config=MachineConfig(nprocs=2, network=NetworkConfig.atm())))
        for app in APPS}


@pytest.mark.parametrize("app", APPS)
def test_roundtrip_is_lossless(results, app):
    result = results[app]
    wire = json.dumps(result.to_dict(), sort_keys=True)
    restored = RunResult.from_dict(json.loads(wire))
    assert json.dumps(restored.to_dict(), sort_keys=True) == wire


@pytest.mark.parametrize("app", APPS)
def test_restored_results_answer_the_same_queries(results, app):
    result = results[app]
    restored = RunResult.from_dict(
        json.loads(json.dumps(result.to_dict())))
    assert restored.elapsed_cycles == result.elapsed_cycles
    assert restored.total_messages == result.total_messages
    assert restored.sync_messages == result.sync_messages
    assert restored.data_kbytes == result.data_kbytes
    assert restored.access_misses == result.access_misses
    assert restored.summary() == result.summary()
    assert restored.time_breakdown() == result.time_breakdown()
    assert restored.metric_total("dsm.messages_total") == \
        result.metric_total("dsm.messages_total")
    assert restored.metric_by("dsm.messages_total", "msg_type") == \
        result.metric_by("dsm.messages_total", "msg_type")
    assert restored.speedup_over(result) == 1.0


def test_schema_version_is_checked(results):
    data = results["jacobi"].to_dict()
    assert data["schema"] == RunResult.SCHEMA_VERSION
    data["schema"] = 999
    with pytest.raises(ValueError):
        RunResult.from_dict(data)


def test_machine_config_roundtrips_with_faults():
    config = MachineConfig(
        nprocs=4, cpu_mhz=80.0, page_size=1024,
        network=NetworkConfig.ethernet(),
        faults=FaultConfig(drop_prob=0.01, dup_prob=0.002,
                           stalls=(StallSpec(proc=1, at_us=10.0,
                                             duration_us=5.0),),
                           seed=7))
    clone = MachineConfig.from_dict(
        json.loads(json.dumps(config.to_dict())))
    assert clone == config
