"""On-disk cache: sharded layout, atomicity, corruption handling."""

import json

import pytest

from repro.core.config import MachineConfig, NetworkConfig
from repro.lab import ResultCache, RunSpec, execute_spec


@pytest.fixture(scope="module")
def run():
    spec = RunSpec("jacobi", {"n": 24, "iterations": 2},
                   config=MachineConfig(nprocs=2,
                                        network=NetworkConfig.atm()))
    return spec, execute_spec(spec)


def test_roundtrip_preserves_result_bytes(tmp_path, run):
    spec, result = run
    cache = ResultCache(tmp_path)
    fp = spec.fingerprint()
    assert cache.get(fp) is None
    cache.put(fp, result, spec=spec)
    restored = cache.get(fp)
    assert json.dumps(restored.to_dict(), sort_keys=True) == \
        json.dumps(result.to_dict(), sort_keys=True)
    assert len(cache) == 1


def test_entries_are_sharded_by_prefix(tmp_path, run):
    spec, result = run
    cache = ResultCache(tmp_path)
    fp = spec.fingerprint()
    cache.put(fp, result)
    assert (tmp_path / fp[:2] / f"{fp}.json").exists()
    # ... and no stray temp files survive the atomic write.
    assert not list(tmp_path.glob("**/*.tmp"))


def test_bad_fingerprint_rejected(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(tmp_path).get("short")


def test_corrupt_entry_reads_as_miss_and_is_evicted(tmp_path, run):
    spec, result = run
    cache = ResultCache(tmp_path)
    fp = spec.fingerprint()
    cache.put(fp, result)
    path = tmp_path / fp[:2] / f"{fp}.json"
    path.write_text("{ not json")
    assert cache.get(fp) is None
    assert not path.exists()


def test_fingerprint_mismatch_evicts(tmp_path, run):
    spec, result = run
    cache = ResultCache(tmp_path)
    fp = spec.fingerprint()
    other = "0" * 64
    cache.put(fp, result)
    # Copy the valid envelope under the wrong address.
    path = cache._path(other)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text((tmp_path / fp[:2] / f"{fp}.json").read_text())
    assert cache.get(other) is None
    assert not path.exists()


def test_payload_and_run_kinds_do_not_alias(tmp_path, run):
    spec, result = run
    cache = ResultCache(tmp_path)
    fp = spec.fingerprint()
    cache.put_payload(fp, {"rows": [1, 2]}, kind_label="table1")
    assert cache.get(fp) is None          # wrong kind
    assert cache.get_payload(fp) == {"rows": [1, 2]}


def test_clear_empties_the_store(tmp_path, run):
    spec, result = run
    cache = ResultCache(tmp_path)
    cache.put(spec.fingerprint(), result)
    cache.put_payload("f" * 64, 42)
    assert cache.clear() == 2
    assert len(cache) == 0
