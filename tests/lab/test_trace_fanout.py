"""Tracing under the experiment harness: per-spec sink files under
pool fan-out (no shared sinks, no corrupt lines), cache interaction,
and mid-run tracer toggling at the engine level."""

import json

import pytest

from repro.core.config import MachineConfig, NetworkConfig
from repro.lab import Lab, RunSpec
from repro.obs import (CausalTrace, MemorySink, NullSink,
                       Observability, Tracer, read_jsonl)

JACOBI = {"n": 16, "iterations": 2}


def specs(protocols=("lh", "li", "lu", "ei")):
    return [RunSpec("jacobi", JACOBI, protocol=protocol,
                    config=MachineConfig(
                        nprocs=4, network=NetworkConfig.atm()))
            for protocol in protocols]


def _check_traces(trace_dir, run_specs, results):
    files = {path.name: path for path in trace_dir.glob("*.jsonl")}
    assert len(files) == len(run_specs)
    for spec, result in zip(run_specs, results):
        name = (f"{spec.app}-{spec.protocol}-"
                f"{spec.fingerprint()[:12]}.jsonl")
        assert name in files, f"missing trace {name}"
        # Every line is one complete JSON object (no interleaving,
        # no truncation), and the trace reconciles with the result.
        lines = files[name].read_text().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert "ts" in record and "name" in record
        trace = CausalTrace(read_jsonl(str(files[name])))
        assert trace.elapsed == pytest.approx(result.elapsed_cycles,
                                              rel=0.01)


def test_pool_fanout_writes_one_valid_trace_per_spec(tmp_path):
    run_specs = specs()
    with Lab(jobs=2, cache=False,
             trace_dir=str(tmp_path / "traces")) as lab:
        results = lab.run_many(run_specs)
    _check_traces(tmp_path / "traces", run_specs, results)


def test_serial_path_traces_identically(tmp_path):
    run_specs = specs()
    with Lab(cache=False, trace_dir=str(tmp_path / "traces")) as lab:
        results = lab.run_many(run_specs)
    _check_traces(tmp_path / "traces", run_specs, results)


def test_cache_hits_produce_no_trace(tmp_path):
    spec = specs(("lh",))[0]
    cache_dir = str(tmp_path / "cache")
    with Lab(cache_dir=cache_dir) as lab:
        lab.run(spec)  # populate, untraced
    trace_dir = tmp_path / "traces"
    with Lab(cache_dir=cache_dir,
             trace_dir=str(trace_dir)) as lab:
        lab.run(spec)  # disk hit: executes nothing, traces nothing
        assert lab.stats()["cache_hits_disk"] == 1
    assert list(trace_dir.glob("*.jsonl")) == []


def test_trace_dir_does_not_change_fingerprints(tmp_path):
    spec = specs(("lh",))[0]
    with Lab(cache=False,
             trace_dir=str(tmp_path / "traces")) as traced_lab:
        traced = traced_lab.run(spec)
    with Lab(cache=False) as plain_lab:
        plain = plain_lab.run(spec)
    # Tracing observes the run without perturbing it.
    assert traced.elapsed_cycles == plain.elapsed_cycles
    assert traced.total_messages == plain.total_messages
    assert traced.registry.dump() == plain.registry.dump()


def test_tracer_toggles_mid_simulation():
    """Swapping the sink mid-run flips every emission site at once:
    events recorded only while the MemorySink was attached."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    obs = Observability(tracer=Tracer())  # starts disabled
    sim.attach_obs(obs)
    obs.bind_clock(lambda: sim.now)

    def worker():
        yield 10.0
        yield 10.0

    sim.spawn(worker(), name="worker-0")   # spawn while disabled
    sim.run(until=5.0)
    sink = MemorySink()
    obs.tracer.sink = sink                 # enable mid-run
    sim.spawn(worker(), name="worker-1")
    sim.run(until=15.0)
    obs.tracer.sink = NullSink()           # disable again
    sim.run()
    names = [(e.name, e.fields.get("process")) for e in sink.events]
    # worker-1's spawn and nothing after the second toggle.
    assert ("sim.process_spawn", "worker-1") in names
    assert ("sim.process_spawn", "worker-0") not in names
    assert all(name != "sim.process_done" for name, _ in names)
