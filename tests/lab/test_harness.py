"""Lab harness: dedupe, cache tiers, failure isolation, parallelism.

Everything here runs at the small preset so the whole module stays in
tier-1 time.  The acceptance-level parallel-speedup claims live in CI
and ``benchmarks/test_lab.py``; what must hold *everywhere* is
equivalence: serial, pooled, and cache-served resolution produce
byte-identical results.
"""

import json

import pytest

from repro.core.config import MachineConfig, NetworkConfig
from repro.lab import Lab, LabError, RunSpec

SMALL = {"n": 24, "iterations": 2}


def _spec(nprocs=2, protocol="lh", **overrides) -> RunSpec:
    kwargs = dict(app="jacobi", app_params=SMALL, protocol=protocol,
                  config=MachineConfig(nprocs=nprocs,
                                       network=NetworkConfig.atm()))
    kwargs.update(overrides)
    return RunSpec(**kwargs)


def _dump(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def test_batch_dedupes_identical_specs():
    lab = Lab()
    a, b = lab.run_many([_spec(), _spec()])
    assert _dump(a) == _dump(b)
    stats = lab.stats()
    assert stats["executed"] == 1
    assert stats["cache_misses"] == 1


def test_memo_serves_repeat_runs():
    lab = Lab()
    first = lab.run(_spec())
    again = lab.run(_spec())
    assert _dump(first) == _dump(again)
    stats = lab.stats()
    assert stats["executed"] == 1
    assert stats["cache_hits_memory"] == 1


def test_disk_tier_survives_lab_instances(tmp_path):
    with Lab(cache_dir=tmp_path) as lab:
        first = lab.run(_spec())
        assert lab.stats()["executed"] == 1
    with Lab(cache_dir=tmp_path) as lab:
        again = lab.run(_spec())
        stats = lab.stats()
    assert _dump(again) == _dump(first)
    assert stats["executed"] == 0
    assert stats["cache_hits_disk"] == 1


def test_cache_false_always_executes(tmp_path):
    lab = Lab(cache_dir=tmp_path, cache=False)
    lab.run(_spec())
    lab.run(_spec())
    stats = lab.stats()
    assert stats["executed"] == 2
    assert stats["cache_hits_memory"] == 0
    assert stats["cache_misses"] == 0     # not counting when disabled
    assert lab.disk is None               # nothing written either


def test_pool_matches_serial_byte_for_byte(tmp_path):
    specs = [_spec(protocol="lh"), _spec(protocol="eu"),
             _spec(nprocs=4)]
    serial = Lab().run_many(specs)
    with Lab(jobs=2, cache_dir=tmp_path) as lab:
        pooled = lab.run_many(specs)
        assert lab.stats()["executed"] == 3
    assert [_dump(r) for r in pooled] == [_dump(r) for r in serial]
    # The pool's results are cached like any other.
    with Lab(cache_dir=tmp_path) as lab:
        warm = lab.run_many(specs)
        assert lab.stats()["executed"] == 0
    assert [_dump(r) for r in warm] == [_dump(r) for r in serial]


def test_failures_are_isolated_not_fatal():
    # max_events=10 aborts the simulation mid-flight.
    bad = _spec(max_events=10)
    good = _spec()
    lab = Lab(retries=1)
    results = lab.run_many([bad, good], strict=False)
    assert results[0] is None
    assert _dump(results[1]) == _dump(Lab().run(good))
    assert len(lab.failures) == 1
    failure = lab.failures[0]
    assert failure.fingerprint == bad.fingerprint()
    assert failure.attempts == 2          # initial try + 1 retry
    stats = lab.stats()
    assert stats["failures"] == 1
    assert stats["retries"] == 1


def test_strict_batch_raises_after_settling():
    lab = Lab(retries=0)
    with pytest.raises(LabError) as err:
        lab.run_many([_spec(max_events=10), _spec()])
    assert "jacobi/lh" in str(err.value)
    # The healthy sibling still completed (and is memoized).
    assert lab.stats()["executed"] == 1


def test_pool_isolates_failures(tmp_path):
    bad = _spec(max_events=10)
    good = _spec()
    with Lab(jobs=2, retries=0) as lab:
        results = lab.run_many([bad, good], strict=False)
    assert results[0] is None
    assert results[1] is not None
    assert len(lab.failures) == 1
    assert "SimulationError" in lab.failures[0].error or \
        lab.failures[0].error


def test_cached_payloads_memoize(tmp_path):
    calls = []

    def compute():
        calls.append(1)
        return {"cells": (1, 2, 3)}      # tuple -> list via json_safe

    with Lab(cache_dir=tmp_path) as lab:
        first = lab.cached("scenario", {"x": 1}, compute)
        again = lab.cached("scenario", {"x": 1}, compute)
    assert first == {"cells": [1, 2, 3]}
    assert again == first
    assert len(calls) == 1
    with Lab(cache_dir=tmp_path) as lab:   # disk tier
        assert lab.cached("scenario", {"x": 1}, compute) == first
        assert lab.stats()["cache_hits_disk"] == 1
    assert len(calls) == 1


def test_format_stats_line():
    lab = Lab()
    lab.run(_spec())
    lab.run(_spec())
    line = lab.format_stats()
    assert line.startswith("lab: executed 1, cache hits 1")


def test_constructor_validation():
    with pytest.raises(ValueError):
        Lab(jobs=0)
    with pytest.raises(ValueError):
        Lab(retries=-1)


# -- CPU detection (effective_jobs clamp) ---------------------------------


def test_available_cpus_env_override(monkeypatch):
    from repro.lab import harness
    monkeypatch.setenv("REPRO_LAB_CPUS", "6")
    assert harness.available_cpus() == 6
    monkeypatch.setenv("REPRO_LAB_CPUS", "0")
    assert harness.available_cpus() == 1     # clamped to >= 1
    monkeypatch.setenv("REPRO_LAB_CPUS", "lots")
    assert harness.available_cpus() >= 1     # garbage falls through


def test_available_cpus_takes_min_of_signals(monkeypatch):
    from repro.lab import harness
    monkeypatch.delenv("REPRO_LAB_CPUS", raising=False)
    monkeypatch.setattr(harness.os, "sched_getaffinity",
                        lambda pid: set(range(8)), raising=False)
    monkeypatch.setattr(harness.os, "cpu_count", lambda: 16)
    monkeypatch.setattr(harness, "_cgroup_cpus", lambda: 2)
    # The cgroup quota is the binding constraint, not the host count.
    assert harness.available_cpus() == 2


def test_cgroup_v2_quota_parsing(monkeypatch, tmp_path):
    from repro.lab import harness
    cpu_max = tmp_path / "cpu.max"
    monkeypatch.setattr(harness, "_CGROUP_V2_CPU_MAX", str(cpu_max))
    monkeypatch.setattr(harness, "_CGROUP_V1_QUOTA",
                        str(tmp_path / "missing-quota"))
    monkeypatch.setattr(harness, "_CGROUP_V1_PERIOD",
                        str(tmp_path / "missing-period"))
    cpu_max.write_text("max 100000\n")
    assert harness._cgroup_cpus() is None      # unlimited
    cpu_max.write_text("400000 100000\n")
    assert harness._cgroup_cpus() == 4
    cpu_max.write_text("150000 100000\n")
    assert harness._cgroup_cpus() == 2         # 1.5 CPUs rounds up


def test_cgroup_v1_quota_parsing(monkeypatch, tmp_path):
    from repro.lab import harness
    monkeypatch.setattr(harness, "_CGROUP_V2_CPU_MAX",
                        str(tmp_path / "missing-cpu.max"))
    quota = tmp_path / "cpu.cfs_quota_us"
    period = tmp_path / "cpu.cfs_period_us"
    monkeypatch.setattr(harness, "_CGROUP_V1_QUOTA", str(quota))
    monkeypatch.setattr(harness, "_CGROUP_V1_PERIOD", str(period))
    quota.write_text("-1\n")
    period.write_text("100000\n")
    assert harness._cgroup_cpus() is None      # unlimited
    quota.write_text("300000\n")
    assert harness._cgroup_cpus() == 3


def test_effective_jobs_allows_bounded_oversubscription(monkeypatch):
    from repro.lab import harness
    monkeypatch.setattr(harness, "available_cpus", lambda: 2)
    assert Lab(jobs=None).effective_jobs == 1    # serial stays serial
    assert Lab(jobs=1).effective_jobs == 1
    assert Lab(jobs=3).effective_jobs == 3       # within 2x headroom
    assert Lab(jobs=16).effective_jobs == 4      # clamped at 2x CPUs
