"""Unit tests for the master-based barrier protocol."""

import pytest

from repro.core import DsmApi, Machine, MachineConfig, NetworkConfig
from repro.net.message import MsgKind


def make_machine(nprocs=4, protocol="li"):
    return Machine(MachineConfig(nprocs=nprocs,
                                 network=NetworkConfig.ideal()),
                   protocol=protocol)


def run(machine, worker):
    return machine.run(lambda p: worker(DsmApi(machine.nodes[p]), p))


def test_barrier_synchronizes_time():
    """No node proceeds past the barrier before the slowest arrives."""
    machine = make_machine()
    machine.allocate("x", 8)
    after = {}

    def worker(api, proc):
        yield from api.compute(1000 * (proc + 1))
        yield from api.barrier(0)
        after[proc] = api.now

    run(machine, worker)
    slowest_arrival = 4000.0
    assert all(t >= slowest_arrival for t in after.values())


def test_barrier_message_count_is_2n_minus_2():
    machine = make_machine(nprocs=6)
    machine.allocate("x", 8)

    def worker(api, proc):
        yield from api.barrier(0)

    result = run(machine, worker)
    by_kind = result.messages_by_kind()
    assert by_kind[MsgKind.BARRIER_ARRIVE] == 5
    assert by_kind[MsgKind.BARRIER_DEPART] == 5
    assert result.total_messages == 10


def test_single_processor_barrier_is_free():
    machine = make_machine(nprocs=1)
    machine.allocate("x", 8)

    def worker(api, proc):
        yield from api.barrier(0)
        yield from api.barrier(0)

    result = run(machine, worker)
    assert result.total_messages == 0


def test_same_barrier_reused_across_episodes():
    machine = make_machine(nprocs=3)
    machine.allocate("x", 8)
    ticks = []

    def worker(api, proc):
        for episode in range(4):
            yield from api.compute(100 * (proc + 1))
            yield from api.barrier(7)
            ticks.append((episode, proc, api.now))

    run(machine, worker)
    # Within one episode every node departs at >= the episode's
    # slowest arrival; episodes are totally ordered.
    by_episode = {}
    for episode, _proc, t in ticks:
        by_episode.setdefault(episode, []).append(t)
    previous_max = -1.0
    for episode in range(4):
        times = by_episode[episode]
        assert len(times) == 3
        assert min(times) > previous_max
        previous_max = max(times)


def test_different_barriers_have_different_masters():
    """Barrier ids spread across masters (bid mod nprocs)."""
    machine = make_machine(nprocs=4)
    assert machine.barrier_master(0) == 0
    assert machine.barrier_master(5) == 1
    assert machine.barrier_master(7) == 3


def test_master_can_arrive_first_or_last():
    """Works whether the master (proc 0 for barrier 0) is the first
    or the last to arrive."""
    for master_delay in (1, 10_000):
        machine = make_machine(nprocs=3)
        machine.allocate("x", 8)

        def worker(api, proc, master_delay=master_delay):
            delay = master_delay if proc == 0 else 5_000
            yield from api.compute(delay)
            yield from api.barrier(0)
            return api.now

        result = run(machine, worker)
        times = result.app_result
        assert max(times) - min(times) < 100_000


def test_barrier_wait_time_recorded():
    machine = make_machine(nprocs=2)
    machine.allocate("x", 8)

    def worker(api, proc):
        yield from api.compute(100 if proc == 0 else 100_000)
        yield from api.barrier(0)

    result = run(machine, worker)
    assert result.node_metrics[0].barrier_wait_cycles > 90_000
    assert result.node_metrics[1].barrier_wait_cycles < 20_000
