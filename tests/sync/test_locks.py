"""Unit tests for the distributed lock protocol."""

import pytest

from repro.core import DsmApi, Machine, MachineConfig, NetworkConfig
from repro.net.message import MsgKind
from repro.sim.engine import SimulationError


def make_machine(nprocs=4, protocol="li"):
    return Machine(MachineConfig(nprocs=nprocs,
                                 network=NetworkConfig.ideal()),
                   protocol=protocol)


def run(machine, worker):
    return machine.run(lambda p: worker(DsmApi(machine.nodes[p]), p))


def test_owner_initially_holds_token():
    machine = make_machine()
    machine.allocate("x", 8)

    def worker(api, proc):
        if proc == 2:  # lock 2 is owned by proc 2
            yield from api.acquire(2)
            yield from api.release(2)
        yield from api.compute(1)

    result = run(machine, worker)
    assert result.total_messages == 0
    assert result.node_metrics[2].lock_local_acquires == 1


def test_mutual_exclusion_under_contention():
    machine = make_machine(nprocs=4)
    machine.allocate("x", 8)
    holders = []

    def worker(api, proc):
        for _ in range(3):
            yield from api.acquire(0)
            holders.append(("in", proc, api.now))
            yield from api.compute(500)
            holders.append(("out", proc, api.now))
            yield from api.release(0)

    run(machine, worker)
    inside = 0
    for kind, _proc, _t in holders:
        inside += 1 if kind == "in" else -1
        assert 0 <= inside <= 1, "two holders at once"
    assert len(holders) == 24


def test_fifo_like_fairness_no_starvation():
    """Every requester eventually gets the lock."""
    machine = make_machine(nprocs=4)
    machine.allocate("x", 8)
    got = []

    def worker(api, proc):
        yield from api.acquire(1)
        got.append(proc)
        yield from api.compute(100)
        yield from api.release(1)

    run(machine, worker)
    assert sorted(got) == [0, 1, 2, 3]


def test_grant_carries_distributed_queue():
    """Requests queued at a holder travel with the token, so no
    requester is stranded when the token moves on."""
    machine = make_machine(nprocs=4)
    machine.allocate("x", 8)
    order = []

    def worker(api, proc):
        if proc == 0:
            yield from api.acquire(0)
            yield from api.compute(50_000)  # let everyone queue up
            yield from api.release(0)
        else:
            yield from api.compute(100 * proc)
            yield from api.acquire(0)
            order.append(proc)
            yield from api.release(0)

    run(machine, worker)
    assert sorted(order) == [1, 2, 3]


def test_double_acquire_rejected():
    machine = make_machine(nprocs=2)
    machine.allocate("x", 8)

    def worker(api, proc):
        if proc == 0:
            yield from api.acquire(0)
            yield from api.acquire(0)
        yield from api.compute(1)

    with pytest.raises(SimulationError, match="re-acquiring"):
        run(machine, worker)


def test_release_unheld_rejected():
    machine = make_machine(nprocs=2)
    machine.allocate("x", 8)

    def worker(api, proc):
        if proc == 1:
            yield from api.release(0)
        yield from api.compute(1)

    with pytest.raises(SimulationError, match="unheld"):
        run(machine, worker)


def test_remote_acquire_costs_two_or_three_messages():
    """Owner-held token: 2 messages (REQ + GRANT); third-party token:
    3 (REQ + FWD + GRANT)."""
    machine = make_machine(nprocs=4)
    machine.allocate("x", 8)
    counts = {}

    def worker(api, proc):
        if proc == 3:
            start = machine.network.stats.messages
            yield from api.acquire(1)  # owner 1 still has the token
            counts["direct"] = machine.network.stats.messages - start
            yield from api.release(1)
        yield from api.compute(1)

    run(machine, worker)
    assert counts["direct"] == 2

    machine2 = make_machine(nprocs=4)
    machine2.allocate("x", 8)

    def worker2(api, proc):
        if proc == 2:
            yield from api.acquire(1)  # token moves 1 -> 2
            yield from api.release(1)
        yield from api.barrier(0)
        if proc == 3:
            start = machine2.network.stats.messages
            yield from api.acquire(1)  # REQ->1, FWD->2, GRANT->3
            counts["forwarded"] = (machine2.network.stats.messages
                                   - start)
            yield from api.release(1)
        yield from api.barrier(1)

    machine2.run(lambda p: worker2(DsmApi(machine2.nodes[p]), p))
    assert counts["forwarded"] == 3


def test_lock_messages_classified_as_synchronization():
    machine = make_machine(nprocs=2)
    machine.allocate("x", 8)

    def worker(api, proc):
        if proc == 0:
            yield from api.acquire(1)
            yield from api.release(1)
        yield from api.compute(1)

    result = run(machine, worker)
    by_kind = result.messages_by_kind()
    assert by_kind.get(MsgKind.LOCK_REQ, 0) == 1
    assert by_kind.get(MsgKind.LOCK_GRANT, 0) == 1
    assert result.sync_messages == result.total_messages
