"""Trace recording and replay."""

import pytest

from repro.apps import Jacobi, Tsp, Water
from repro.core import MachineConfig, NetworkConfig
from repro.trace import Trace, TraceOp, record_app, replay_trace


def config(nprocs=4):
    return MachineConfig(nprocs=nprocs, network=NetworkConfig.atm())


def test_trace_op_validates_kind():
    with pytest.raises(ValueError):
        TraceOp("teleport")


def test_record_captures_everything():
    trace, result = record_app(Jacobi(n=16, iterations=2), config())
    assert trace.nprocs == 4
    assert {s.name for s in trace.segments} == {"jacobi_a", "jacobi_b"}
    assert trace.total_ops > 0
    kinds = {op.kind for ops in trace.ops.values() for op in ops}
    assert {"read", "write", "barrier", "compute"} <= kinds
    assert "Trace" in trace.summary()


def test_replay_reproduces_value_independent_run_exactly():
    """Jacobi's control flow is value-independent, so a replay under
    the same configuration reproduces messages and simulated time."""
    trace, original = record_app(Jacobi(n=16, iterations=2), config(),
                                 protocol="lh")
    replayed = replay_trace(trace, config(), protocol="lh")
    assert replayed.total_messages == original.total_messages
    assert replayed.data_kbytes == pytest.approx(original.data_kbytes)
    assert replayed.elapsed_cycles == pytest.approx(
        original.elapsed_cycles, rel=0.01)


def test_replay_under_other_protocols_runs_and_differs():
    trace, original = record_app(Water(nmols=12, steps=1), config(),
                                 protocol="lh")
    replay_eu = replay_trace(trace, config(), protocol="eu")
    assert replay_eu.elapsed_cycles > 0
    # Different protocol, same requests: traffic profile changes.
    assert replay_eu.total_messages != original.total_messages


def test_replay_proc_count_mismatch_rejected():
    trace, _result = record_app(Jacobi(n=16, iterations=1), config(4))
    with pytest.raises(ValueError, match="recorded on 4"):
        replay_trace(trace, config(2))


def test_trace_driven_freezes_control_flow():
    """The paper's reason for execution-driven simulation: replaying
    an eager-protocol TSP trace under a lazy protocol re-issues the
    *eager* run's search decisions — it cannot model the extra
    exploration a stale bound would really cause."""
    app = Tsp(ncities=8, seed=7)
    trace, eager_run = record_app(app, config(), protocol="eu")
    eager_ops = trace.total_ops

    # Execution-driven lazy run: the search itself changes.
    lazy_app = Tsp(ncities=8, seed=7)
    from repro.core import run_app
    lazy_run = run_app(lazy_app, config(), protocol="li")

    # Trace-driven lazy run: identical op stream as the eager run.
    lazy_replay = replay_trace(trace, config(), protocol="li")
    assert trace.total_ops == eager_ops  # replay cannot add work
    assert lazy_replay.elapsed_cycles > 0


class TestSerialization:
    def _record(self):
        return record_app(Jacobi(n=16, iterations=1), config(2))

    def test_round_trip_preserves_everything(self, tmp_path):
        from repro.trace import load_trace, save_trace
        trace, _result = self._record()
        path = tmp_path / "trace.json"
        save_trace(trace, str(path))
        loaded = load_trace(str(path))
        assert loaded.nprocs == trace.nprocs
        assert loaded.segments == trace.segments
        assert loaded.ops == trace.ops

    def test_replay_of_loaded_trace_matches_original(self, tmp_path):
        from repro.trace import load_trace, save_trace
        trace, original = self._record()
        path = tmp_path / "trace.json"
        save_trace(trace, str(path))
        replayed = replay_trace(load_trace(str(path)), config(2))
        assert replayed.total_messages == original.total_messages

    def test_version_check(self):
        import pytest as _pytest
        from repro.trace import trace_from_dict
        with _pytest.raises(ValueError, match="version"):
            trace_from_dict({"version": 99})

    def test_file_object_round_trip(self):
        import io
        from repro.trace import load_trace, save_trace
        trace, _result = self._record()
        buffer = io.StringIO()
        save_trace(trace, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert loaded.total_ops == trace.total_ops
