"""Jacobi application: numerical correctness under every protocol."""

import numpy as np
import pytest

from repro.apps.jacobi import Jacobi, boundary_grid, sequential_jacobi
from repro.core import MachineConfig, NetworkConfig, run_app
from repro.protocols import PROTOCOL_NAMES


def test_sequential_oracle_converges_toward_boundary_average():
    grid = sequential_jacobi(16, 200)
    # Interior values must have moved off zero toward the hot edges.
    assert grid[1:-1, 1:-1].min() > 0.0
    assert grid[8, 8] < 100.0


def test_boundary_grid_shape():
    grid = boundary_grid(8)
    assert grid[0, 1:-1].tolist() == [100.0] * 6  # corners are sides
    assert grid[4, 0] == 50.0
    assert grid[4, 4] == 0.0


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_jacobi_matches_oracle_all_protocols(protocol):
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    result = run_app(Jacobi(n=32, iterations=4), config,
                     protocol=protocol)
    # finish() raises on mismatch; confirm the run did real work.
    assert result.elapsed_cycles > 0
    assert result.total_messages > 0


def test_jacobi_single_processor_no_messages():
    config = MachineConfig(nprocs=1)
    result = run_app(Jacobi(n=16, iterations=3), config)
    assert result.total_messages == 0


def test_jacobi_uneven_partition():
    """More processors than convenient divisors: 5 procs, 16 rows."""
    config = MachineConfig(nprocs=5, network=NetworkConfig.atm())
    result = run_app(Jacobi(n=16, iterations=3), config, protocol="lh")
    assert result.elapsed_cycles > 0


def test_jacobi_more_procs_than_rows():
    config = MachineConfig(nprocs=8, network=NetworkConfig.atm())
    result = run_app(Jacobi(n=6, iterations=2), config, protocol="li")
    assert result.elapsed_cycles > 0


def test_jacobi_scales_on_atm():
    """Simulated time must drop substantially from 1 to 4 processors
    on the ATM network (the paper's headline coarse-grain result)."""
    base = run_app(Jacobi(n=128, iterations=4),
                   MachineConfig(nprocs=1, network=NetworkConfig.atm()))
    par = run_app(Jacobi(n=128, iterations=4),
                  MachineConfig(nprocs=4, network=NetworkConfig.atm()),
                  protocol="lh")
    speedup = base.elapsed_cycles / par.elapsed_cycles
    assert speedup > 1.5, f"Jacobi 4-proc speedup only {speedup:.2f}"


def test_jacobi_too_small_grid_does_not_scale():
    """Communication dominates tiny grids: the simulator must show the
    paper's compute/communication tradeoff, not free parallelism."""
    base = run_app(Jacobi(n=32, iterations=4),
                   MachineConfig(nprocs=1, network=NetworkConfig.atm()))
    par = run_app(Jacobi(n=32, iterations=4),
                  MachineConfig(nprocs=8, network=NetworkConfig.atm()),
                  protocol="lh")
    assert base.elapsed_cycles / par.elapsed_cycles < 2.0
