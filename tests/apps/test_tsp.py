"""TSP application: optimality under every protocol, and the paper's
stale-minimum exploration effect."""

import numpy as np
import pytest

from repro.apps.tsp import (Tsp, city_coordinates, distance_matrix,
                            sequential_tsp)
from repro.core import MachineConfig, NetworkConfig, run_app
from repro.protocols import PROTOCOL_NAMES


def test_distance_matrix_symmetric_zero_diagonal():
    dist = distance_matrix(city_coordinates(6))
    assert np.allclose(dist, dist.T)
    assert np.allclose(np.diag(dist), 0.0)


def test_sequential_oracle_small_instance():
    # 4 cities on a unit square: optimal tour is the perimeter (4.0).
    coords = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
    assert sequential_tsp(distance_matrix(coords)) == pytest.approx(4.0)


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_tsp_finds_optimum_all_protocols(protocol):
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    result = run_app(Tsp(ncities=8), config, protocol=protocol)
    # finish() raises if any processor's final minimum is wrong.
    assert result.elapsed_cycles > 0


def test_tsp_single_processor():
    result = run_app(Tsp(ncities=8), MachineConfig(nprocs=1))
    assert result.total_messages == 0


def test_tsp_stale_minimum_lazy_explores_at_least_as_much():
    """The eager protocols refresh the global minimum at every release,
    so lazy runs must explore at least as many tours (section 6.2)."""
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    app_eager = Tsp(ncities=9, seed=7)
    eager = run_app(app_eager, config, protocol="eu")
    app_lazy = Tsp(ncities=9, seed=7)
    lazy = run_app(app_lazy, config, protocol="li")
    assert (app_lazy.total_explored(lazy)
            >= app_eager.total_explored(eager))


def test_tsp_queue_lock_contention_recorded():
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    result = run_app(Tsp(ncities=8), config, protocol="lh")
    assert result.lock_wait_cycles > 0
    assert sum(m.lock_acquires for m in result.node_metrics) > 8
