"""Unit tests for application internals: partitioning, TSP queue
mechanics, Cholesky symbolic structures, Water layout."""

import numpy as np
import pytest

from repro.apps import create_app
from repro.apps.base import block_range
from repro.apps.cholesky import Cholesky, grid_laplacian
from repro.apps.tsp import Tsp
from repro.apps.water import MOL_WORDS, Water
from repro.core import DsmApi, Machine, MachineConfig, NetworkConfig


class TestBlockRange:
    def test_even_partition(self):
        blocks = [block_range(12, 4, p) for p in range(4)]
        assert [list(b) for b in blocks] == [[0, 1, 2], [3, 4, 5],
                                             [6, 7, 8], [9, 10, 11]]

    def test_uneven_partition_covers_everything_once(self):
        covered = []
        for proc in range(5):
            covered.extend(block_range(13, 5, proc))
        assert covered == list(range(13))

    def test_more_procs_than_items(self):
        sizes = [len(block_range(3, 8, p)) for p in range(8)]
        assert sum(sizes) == 3
        assert max(sizes) <= 1 or sum(sizes) == 3


class TestRegistry:
    def test_create_app_by_name(self):
        app = create_app("water", nmols=8)
        assert app.nmols == 8

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            create_app("doom")


class TestTspQueue:
    def run_queue_ops(self):
        """Push/pop through the DSM on one processor."""
        app = Tsp(ncities=6)
        machine = Machine(MachineConfig(nprocs=1))
        shared = app.setup(machine)
        popped = []

        def worker(api, proc):
            yield from api.acquire(0)
            yield from app._push_tour(api, shared, [0, 2], 10.0)
            yield from app._push_tour(api, shared, [0, 3, 1], 20.0)
            first = yield from app._pop_tour(api, shared)
            second = yield from app._pop_tour(api, shared)
            third = yield from app._pop_tour(api, shared)
            yield from api.release(0)
            popped.extend([first, second, third])

        machine.run(lambda p: worker(DsmApi(machine.nodes[p]), p))
        return popped

    def test_lifo_order_and_payload(self):
        first, second, third = self.run_queue_ops()
        assert first == ([0, 3, 1], 20.0)
        assert second == ([0, 2], 10.0)
        assert third is None

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Tsp(ncities=2)
        with pytest.raises(ValueError):
            Tsp(ncities=25)


class TestCholeskyStructures:
    def test_laplacian_values_break_symmetry(self):
        a = grid_laplacian(3)
        assert a[0, 0] != a[1, 1] or a[1, 1] != a[2, 2]

    def test_column_slots_cover_matrix(self):
        app = Cholesky(k=3)
        machine = Machine(MachineConfig(nprocs=1))
        shared = app.setup(machine)
        assert shared.col_ptr[-1] == sum(
            1 + len(s) for s in shared.structs)
        # Initial column slots hold A's entries.
        page = shared.cols_seg.first_page
        copy = machine.nodes[0].pagetable.get(page)
        assert copy.values[shared.col_ptr[0]] == app.a[0, 0]

    def test_update_counters_match_structures(self):
        app = Cholesky(k=3)
        machine = Machine(MachineConfig(nprocs=1))
        shared = app.setup(machine)
        meta_page = shared.meta_seg.first_page
        counters = machine.nodes[0].pagetable.get(meta_page).values
        for j in range(app.n):
            expected = sum(1 for k in range(j)
                           if j in shared.structs[k])
            assert counters[2 + j] == expected

    def test_k_validation(self):
        with pytest.raises(ValueError):
            Cholesky(k=1)


class TestWaterLayout:
    def test_molecule_slots_do_not_overlap(self):
        app = Water(nmols=10, steps=1)
        machine = Machine(MachineConfig(nprocs=1))
        shared = app.setup(machine)
        page = shared.pos_seg.first_page
        values = machine.nodes[0].pagetable.get(page).values
        for i in range(app.nmols):
            np.testing.assert_allclose(
                values[i * MOL_WORDS:i * MOL_WORDS + 3],
                app.positions[i])

    def test_minimum_molecules(self):
        with pytest.raises(ValueError):
            Water(nmols=2)

    def test_false_sharing_by_construction(self):
        """Many molecules per page: the paper's stress condition."""
        app = Water(nmols=64, steps=1)
        machine = Machine(MachineConfig(nprocs=1))
        shared = app.setup(machine)
        per_page = machine.config.words_per_page // MOL_WORDS
        assert per_page >= 64  # all 64 molecules share one page
        assert shared.force_seg.npages == 1
