"""Water application: force correctness and sharing behaviour."""

import numpy as np
import pytest

from repro.apps.water import (Water, initial_positions, pair_force,
                              sequential_forces)
from repro.core import MachineConfig, NetworkConfig, run_app
from repro.protocols import PROTOCOL_NAMES


def test_pair_force_antisymmetric():
    a = np.array([1.0, 2.0, 3.0])
    b = np.array([4.0, 5.0, 6.0])
    np.testing.assert_allclose(pair_force(a, b, 50.0),
                               -pair_force(b, a, 50.0))


def test_pair_force_respects_cutoff():
    a = np.zeros(3)
    b = np.array([30.0, 0.0, 0.0])
    assert pair_force(a, b, 10.0).tolist() == [0.0, 0.0, 0.0]
    assert pair_force(a, b, 40.0).any()


def test_pair_force_periodic_wraparound():
    a = np.array([1.0, 0.0, 0.0])
    b = np.array([99.0, 0.0, 0.0])  # 2 apart across the boundary
    force = pair_force(a, b, 10.0)
    assert force.any()


def test_sequential_forces_sum_to_zero():
    positions = initial_positions(10)
    forces = sequential_forces(positions, 50.0)
    np.testing.assert_allclose(forces.sum(axis=0), 0.0, atol=1e-9)


@pytest.mark.parametrize("nmols", [9, 10])
def test_sequential_forces_each_pair_once(nmols):
    """All-pairs reference: the ring enumeration must cover each
    unordered pair exactly once (odd and even N)."""
    positions = initial_positions(nmols)
    ring = sequential_forces(positions, 1e9)
    allpairs = np.zeros((nmols, 3))
    for i in range(nmols):
        for j in range(i + 1, nmols):
            f = pair_force(positions[i], positions[j], 1e9)
            allpairs[i] += f
            allpairs[j] -= f
    np.testing.assert_allclose(ring, allpairs, atol=1e-9)


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_water_matches_oracle_all_protocols(protocol):
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    result = run_app(Water(nmols=16, steps=2), config,
                     protocol=protocol)
    assert result.elapsed_cycles > 0
    assert sum(m.lock_acquires for m in result.node_metrics) > 0


def test_water_single_processor_no_messages():
    result = run_app(Water(nmols=12, steps=1), MachineConfig(nprocs=1))
    assert result.total_messages == 0


def test_water_many_lock_acquires_medium_grain():
    """Water is lock-heavy: roughly one lock per touched molecule per
    processor per step."""
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    result = run_app(Water(nmols=24, steps=2), config, protocol="lh")
    acquires = sum(m.lock_acquires for m in result.node_metrics)
    assert acquires >= 24 * 2  # every molecule locked by several procs
