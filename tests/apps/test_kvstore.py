"""The DSM-backed key-value store and the event-driven pump."""

import pytest

from repro.apps import EventDrivenApplication, create_app
from repro.apps.kvstore import KvStore
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.runner import run_app
from repro.obs import MemorySink, Observability, Tracer

SMALL = dict(nkeys=16, value_words=8, shards=4, requests=60,
             rate_rps=40_000.0)


def _config(nprocs=4):
    return MachineConfig(nprocs=nprocs, network=NetworkConfig.atm())


def test_create_app_knows_kvstore():
    app = create_app("kvstore", **SMALL)
    assert isinstance(app, KvStore)
    assert isinstance(app, EventDrivenApplication)


@pytest.mark.parametrize("protocol", ["li", "lh", "ei", "sc"])
def test_counters_match_schedule_across_protocols(protocol):
    # finish() raises AssertionError if any per-key write counter
    # diverges from the generator's schedule.
    result = run_app(create_app("kvstore", **SMALL), _config(),
                     protocol=protocol)
    served = sum(len(r["requests"]) for r in result.app_result if r)
    assert served == SMALL["requests"]


def test_finish_raises_on_diverged_counters():
    from repro.core.machine import Machine
    app = create_app("kvstore", **SMALL)
    machine = Machine(_config(), protocol="lh")
    shared = app.setup(machine)
    shared["observed"] = [0] * SMALL["nkeys"]
    shared["expected"] = [1] * SMALL["nkeys"]
    with pytest.raises(AssertionError, match="diverged"):
        app.finish(machine, shared, result=None)


def test_request_records_are_consistent():
    result = run_app(create_app("kvstore", **SMALL), _config(),
                     protocol="lh")
    seen = set()
    for per_proc in result.app_result:
        for (req_id, key, is_write, arrival, started,
             done) in per_proc["requests"]:
            seen.add(req_id)
            assert 0 <= key < SMALL["nkeys"]
            assert is_write in (0, 1)
            # Open loop: service never starts before the scheduled
            # arrival, and completion never precedes the start.
            assert started >= arrival
            assert done >= started
    assert seen == set(range(SMALL["requests"]))


def test_serve_metrics_are_installed_and_counted():
    result = run_app(create_app("kvstore", **SMALL), _config(),
                     protocol="lh")
    registry = result.registry
    assert registry.total("serve.requests_total") == SMALL["requests"]
    by_op = registry.by_label("serve.requests_total", "op")
    assert sum(by_op.values()) == SMALL["requests"]
    latency = registry.get("serve.request_latency_cycles").labels()
    wait = registry.get("serve.queue_wait_cycles").labels()
    assert latency.count == SMALL["requests"]
    assert wait.count == SMALL["requests"]
    # Latency includes queue wait plus at least the service time.
    assert latency.sum >= wait.sum


def test_paper_apps_do_not_grow_serve_metrics():
    result = run_app(create_app("jacobi", n=16, iterations=1),
                     _config(2), protocol="lh")
    assert "serve.requests_total" not in result.registry


def test_req_events_are_traced_with_causal_ids():
    sink = MemorySink()
    obs = Observability(tracer=Tracer(sink))
    run_app(create_app("kvstore", **SMALL), _config(),
            protocol="lh", obs=obs)
    arrives = sink.named("req.arrive")
    dones = sink.named("req.done")
    assert len(arrives) == SMALL["requests"]
    assert len(dones) == SMALL["requests"]
    assert ({e.fields["req"] for e in arrives}
            == {e.fields["req"] for e in dones}
            == set(range(SMALL["requests"])))
    for event in arrives:
        # The worker can only dequeue at or after the scheduled
        # arrival it reports.
        assert event.ts >= event.fields["arrival"]
        assert event.fields["op"] in ("get", "put")


def test_shards_clamp_to_nkeys():
    app = KvStore(nkeys=2, shards=64, requests=1)
    assert app.shards == 2


def test_kvstore_rejects_bad_workload_at_setup():
    from repro.core.machine import Machine
    app = KvStore(**dict(SMALL, rate_rps=0.0))
    with pytest.raises(ValueError, match="arrival rate"):
        app.setup(Machine(_config(), protocol="lh"))
