"""Cholesky application: numeric correctness and grain behaviour."""

import numpy as np
import pytest

from repro.apps.cholesky import (Cholesky, grid_laplacian,
                                 sequential_cholesky,
                                 symbolic_factorization)
from repro.core import MachineConfig, NetworkConfig, run_app
from repro.protocols import PROTOCOL_NAMES


def test_grid_laplacian_is_spd():
    a = grid_laplacian(4)
    assert np.allclose(a, a.T)
    assert np.linalg.eigvalsh(a).min() > 0


def test_sequential_cholesky_oracle():
    a = grid_laplacian(3)
    l = sequential_cholesky(a)
    np.testing.assert_allclose(l @ l.T, a, atol=1e-10)
    assert np.allclose(l, np.tril(l))


def test_symbolic_factorization_covers_numeric_fill():
    a = grid_laplacian(4)
    structs = symbolic_factorization(a)
    l = sequential_cholesky(a)
    for j in range(len(a)):
        numeric_rows = set(np.nonzero(np.abs(l[j + 1:, j]) > 1e-12)[0]
                           + j + 1)
        assert numeric_rows <= set(structs[j]), f"column {j}"


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_cholesky_factors_correctly_all_protocols(protocol):
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    result = run_app(Cholesky(k=4), config, protocol=protocol)
    # finish() verifies L L^T == A and that all columns were factored.
    assert result.elapsed_cycles > 0


def test_cholesky_single_processor():
    result = run_app(Cholesky(k=3), MachineConfig(nprocs=1))
    assert result.total_messages == 0


def test_cholesky_synchronization_dominates():
    """Fine grain: lock traffic must dwarf everything else, and most
    messages must be synchronization (paper: 96%)."""
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    result = run_app(Cholesky(k=5), config, protocol="lh")
    assert result.sync_messages / result.total_messages > 0.5
    acquires = sum(m.lock_acquires for m in result.node_metrics)
    assert acquires > result.nprocs * 25  # n + cmod locks at least


def test_cholesky_poor_speedup():
    """The headline: fine-grained synchronization caps the speedup at
    a small value regardless of processor count."""
    base = run_app(Cholesky(k=5), MachineConfig(nprocs=1))
    par = run_app(Cholesky(k=5),
                  MachineConfig(nprocs=8, network=NetworkConfig.atm()),
                  protocol="lh")
    speedup = base.elapsed_cycles / par.elapsed_cycles
    assert speedup < 3.0, f"Cholesky sped up {speedup:.2f}x?!"
