"""Acceptance: every application x protocol combination survives a
lossy Ethernet.

At 1% message loss the reliable transport must mask every fault: all
four applications terminate under all five protocols with *correct
results* (each app's ``finish`` hook asserts its answer — Jacobi
against a sequential solve, TSP against the known best tour, and so
on), having actually exercised the retransmission path.
"""

import pytest

from repro.analysis.experiments import APP_PARAMS
from repro.apps import create_app
from repro.core.config import FaultConfig, MachineConfig, NetworkConfig
from repro.core.runner import run_app
from repro.protocols import PROTOCOL_NAMES

LOSSY = MachineConfig(nprocs=4, network=NetworkConfig.ethernet(),
                      faults=FaultConfig(drop_prob=0.01))


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
@pytest.mark.parametrize("app_name", sorted(APP_PARAMS["small"]))
def test_apps_survive_one_percent_loss(app_name, protocol):
    params = APP_PARAMS["small"][app_name]
    # run_app calls app.finish, which raises on incorrect results.
    result = run_app(create_app(app_name, **params), LOSSY,
                     protocol=protocol)
    registry = result.registry
    assert registry.total("faults.drops_total") > 0
    assert registry.total("transport.retransmits_total") > 0
    assert registry.total("transport.delivered_total") > 0


def test_loss_slows_but_does_not_change_the_answer():
    """The fault-free and lossy runs agree on the application result;
    the lossy one just takes longer."""
    clean_cfg = MachineConfig(nprocs=4,
                              network=NetworkConfig.ethernet())
    clean = run_app(create_app("jacobi", n=24, iterations=3),
                    clean_cfg, protocol="lh")
    lossy = run_app(create_app("jacobi", n=24, iterations=3),
                    clean_cfg.replace(
                        faults=FaultConfig(drop_prob=0.01)),
                    protocol="lh")
    assert lossy.elapsed_cycles > clean.elapsed_cycles
    import numpy as np
    for a, b in zip(clean.app_result, lossy.app_result):
        if a is not None and b is not None:
            np.testing.assert_array_equal(np.asarray(a),
                                          np.asarray(b))
