"""Acceptance: applications survive a node crash with checkpointed
recovery.

A node is killed mid-run and restored from its RCKP checkpoint after
an outage long enough that peers' retransmissions probe a dead NIC.
All four applications must terminate under LI with *correct results*
(``run_app`` calls each app's ``finish`` hook, which asserts the
answer), LH must survive on both Ethernet and ATM, and the whole
crash pipeline must be deterministic: same seed, same config, byte
identical metrics.
"""

import numpy as np
import pytest

from repro.analysis.experiments import APP_PARAMS
from repro.apps import create_app
from repro.core.config import (CrashSpec, FaultConfig, MachineConfig,
                               NetworkConfig)
from repro.core.runner import run_app

# Crash early (t=400 µs), stay down past the default 10 ms RTO so
# retransmissions really hit the dead NIC before recovery bridges it.
CRASH = FaultConfig(crashes=(CrashSpec(proc=1, at_us=400.0,
                                       down_us=60_000.0),))


def _crashed(network=None) -> MachineConfig:
    return MachineConfig(nprocs=4,
                         network=network or NetworkConfig.ethernet(),
                         faults=CRASH)


@pytest.mark.parametrize("app_name", sorted(APP_PARAMS["small"]))
def test_apps_complete_across_crash_recover_li(app_name):
    params = APP_PARAMS["small"][app_name]
    clean = run_app(create_app(app_name, **params),
                    MachineConfig(nprocs=4,
                                  network=NetworkConfig.ethernet()),
                    protocol="li")
    crashed = run_app(create_app(app_name, **params), _crashed(),
                      protocol="li")
    registry = crashed.registry
    assert registry.total("faults.crashes_total") == 1
    assert registry.total("faults.recoveries_total") == 1
    assert registry.total("transport.session_resets_total") > 0
    # The outage costs time but never the answer (run_app already
    # ran the app's own correctness assertions via its finish hook;
    # the data-parallel apps must match the clean run exactly).
    assert crashed.elapsed_cycles > clean.elapsed_cycles
    if app_name in ("jacobi", "water"):
        for a, b in zip(clean.app_result, crashed.app_result):
            np.testing.assert_array_equal(np.asarray(a),
                                          np.asarray(b))


@pytest.mark.parametrize("network",
                         [NetworkConfig.ethernet(),
                          NetworkConfig.atm()],
                         ids=lambda n: n.kind)
def test_lh_crash_recover_on_both_networks(network):
    result = run_app(create_app("jacobi", n=24, iterations=3),
                     _crashed(network), protocol="lh")
    registry = result.registry
    assert registry.total("faults.crashes_total") == 1
    assert registry.total("faults.recoveries_total") == 1
    assert registry.total("faults.crash_checkpoint_bytes") > 0


def test_crash_run_is_deterministic():
    first = run_app(create_app("jacobi", n=24, iterations=3),
                    _crashed(), protocol="li")
    second = run_app(create_app("jacobi", n=24, iterations=3),
                     _crashed(), protocol="li")
    assert first.elapsed_cycles == second.elapsed_cycles
    assert first.registry.as_json() == second.registry.as_json()


def test_crash_under_message_loss_still_completes():
    """The two fault tiers compose: packet loss plus a crash."""
    faults = FaultConfig(drop_prob=0.01, crashes=CRASH.crashes)
    result = run_app(create_app("jacobi", n=24, iterations=3),
                     MachineConfig(nprocs=4,
                                   network=NetworkConfig.ethernet(),
                                   faults=faults),
                     protocol="lh")
    assert result.registry.total("faults.crashes_total") == 1
    assert result.registry.total("faults.drops_total") > 0


def test_rx_log_replays_messages_that_landed_while_down():
    """Messages that cleared receive accounting before the crash are
    replayed after restore, not lost: crash a node the instant a
    barrier episode is in flight toward it."""
    from repro.core.api import DsmApi
    from repro.core.machine import Machine

    # t=40 µs lands between a message's receive-overhead charge and
    # its dispatch on node 0, so the dispatch hits the receive log.
    config = MachineConfig(
        nprocs=2, network=NetworkConfig.ideal(),
        faults=FaultConfig(crashes=(
            CrashSpec(proc=0, at_us=40.0, down_us=50_000.0),)))
    machine = Machine(config, protocol="li")
    seg = machine.allocate("data", nwords=8)

    def worker(proc):
        api = DsmApi(machine.nodes[proc])
        if proc == 1:
            # Lands in node 0's handler pipeline around the crash.
            yield from api.acquire(0)
            yield from api.write_region(seg, 0, 1, [float(proc)])
            yield from api.release(0)
        yield from api.barrier(0)
        value = yield from api.read_region(seg, 0, 1)
        return float(value[0])

    result = machine.run(worker, app="rx-replay")
    assert result.app_result == [1.0, 1.0]
    assert result.registry.total("faults.recoveries_total") == 1
    assert result.registry.total("faults.recovery_replayed_total") >= 1
