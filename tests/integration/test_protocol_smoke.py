"""End-to-end micro-programs run under all five protocols.

These tests check *value propagation* — after proper synchronization,
every node observes every write that happened-before its acquire —
which exercises misses, diffs, grants, flushes, pushes, and barriers.
"""

import numpy as np
import pytest

from repro.core import DsmApi, Machine, MachineConfig, NetworkConfig
from repro.protocols.registry import ALL_PROTOCOL_NAMES as PROTOCOL_NAMES

pytestmark = pytest.mark.parametrize("protocol", PROTOCOL_NAMES)


def make_machine(protocol, nprocs=4, **kwargs):
    config = MachineConfig(nprocs=nprocs,
                           network=NetworkConfig.atm(),
                           **kwargs)
    return Machine(config, protocol=protocol)


def run(machine, worker):
    return machine.run(lambda p: worker(DsmApi(machine.nodes[p]), p))


def test_lock_protected_counter(protocol):
    """Every node increments a shared counter under one lock; the final
    value must equal the number of increments."""
    machine = make_machine(protocol)
    seg = machine.allocate("counter", 16)
    rounds = 3

    def worker(api, proc):
        for _ in range(rounds):
            yield from api.acquire(0)
            value = yield from api.read(seg, 0)
            yield from api.compute(100)
            yield from api.write(seg, 0, value + 1)
            yield from api.release(0)
        yield from api.barrier(0)
        final = yield from api.read(seg, 0)
        return final

    result = run(machine, worker)
    expected = float(rounds * machine.config.nprocs)
    assert result.app_result == [expected] * machine.config.nprocs
    assert result.elapsed_cycles > 0


def test_barrier_propagates_disjoint_writes(protocol):
    """Each node writes its own slice; after a barrier everyone reads
    the full array (classic false sharing: slices share pages)."""
    nprocs = 4
    machine = make_machine(protocol, nprocs=nprocs)
    n = 64  # 64 words in one page: heavy false sharing
    seg = machine.allocate("array", n)

    def worker(api, proc):
        lo = proc * (n // nprocs)
        hi = lo + n // nprocs
        yield from api.write_region(seg, lo, hi,
                                    np.arange(lo, hi, dtype=float))
        yield from api.barrier(0)
        data = yield from api.read_region(seg, 0, n)
        return data.tolist()

    result = run(machine, worker)
    expected = list(np.arange(n, dtype=float))
    for proc_result in result.app_result:
        assert proc_result == expected


def test_multi_page_writes_propagate(protocol):
    """Writes spanning several pages propagate through a lock chain:
    node 0 writes, nodes 1..n-1 read in lock order."""
    machine = make_machine(protocol)
    words = machine.config.words_per_page * 3
    seg = machine.allocate("big", words)

    def worker(api, proc):
        yield from api.acquire(5)
        if proc == 0:
            yield from api.write_region(
                seg, 0, words, np.full(words, 7.0))
            total = float(words) * 7.0
        else:
            data = yield from api.read_region(seg, 0, words)
            total = float(data.sum())
        yield from api.release(5)
        yield from api.barrier(1)
        return total

    # Lock order is not guaranteed to be proc order, so just require
    # that after the barrier all reads saw either the initial zeros or
    # the full write -- and at least the final barrier read sees it.
    result = run(machine, worker)
    assert result.app_result[0] == float(words) * 7.0


def test_migratory_data_through_lock_chain(protocol):
    """A value hops processor to processor under a lock: the classic
    migratory pattern (Water's molecules)."""
    nprocs = 4
    machine = make_machine(protocol, nprocs=nprocs)
    seg = machine.allocate("token", 8)
    hops = 3

    def worker(api, proc):
        for _ in range(hops):
            yield from api.acquire(2)
            value = yield from api.read(seg, 3)
            yield from api.write(seg, 3, value + 1.0)
            yield from api.compute(500)
            yield from api.release(2)
        yield from api.barrier(9)
        final = yield from api.read(seg, 3)
        return final

    result = run(machine, worker)
    assert result.app_result == [float(hops * nprocs)] * nprocs


def test_two_locks_false_sharing_same_page(protocol):
    """Two locks protect different words of the *same page*: the
    multiple-writer protocols must merge, not ping-pong or lose data."""
    machine = make_machine(protocol, nprocs=2)
    seg = machine.allocate("shared_page", 32)
    rounds = 4

    def worker(api, proc):
        my_lock = proc  # proc 0 -> lock 0/word 0, proc 1 -> lock 1/word 9
        my_word = proc * 9
        for _ in range(rounds):
            yield from api.acquire(my_lock)
            value = yield from api.read(seg, my_word)
            yield from api.write(seg, my_word, value + 1.0)
            yield from api.release(my_lock)
        yield from api.barrier(0)
        mine = yield from api.read(seg, my_word)
        other = yield from api.read(seg, 9 - my_word + (0 if proc else 0))
        return mine

    result = run(machine, worker)
    assert result.app_result == [float(rounds)] * 2


def test_sequential_single_processor_is_message_free(protocol):
    machine = make_machine(protocol, nprocs=1)
    seg = machine.allocate("solo", 128)

    def worker(api, proc):
        for i in range(10):
            yield from api.acquire(0)
            yield from api.write(seg, i, float(i))
            yield from api.release(0)
            yield from api.compute(1000)
        yield from api.barrier(0)
        data = yield from api.read_region(seg, 0, 10)
        return float(data.sum())

    result = run(machine, worker)
    assert result.total_messages == 0
    assert result.app_result == [45.0]
    assert result.elapsed_cycles >= 10_000


def test_reacquire_own_lock_is_free(protocol):
    """Re-acquiring a lock nobody else wants sends no messages."""
    machine = make_machine(protocol, nprocs=2)
    machine.allocate("dummy", 8)

    def worker(api, proc):
        if proc == 0:
            for _ in range(5):
                yield from api.acquire(0)  # lock 0 owned by proc 0
                yield from api.release(0)
        yield from api.compute(10)

    result = run(machine, worker)
    assert result.total_messages == 0
    assert result.node_metrics[0].lock_local_acquires == 5


def test_determinism(protocol):
    """Same program, same config: identical times and message counts."""
    def once():
        machine = make_machine(protocol)
        seg = machine.allocate("x", 64)

        def worker(api, proc):
            yield from api.acquire(1)
            value = yield from api.read(seg, 0)
            yield from api.write(seg, 0, value + 1)
            yield from api.release(1)
            yield from api.barrier(0)

        result = run(machine, worker)
        return (result.elapsed_cycles, result.total_messages,
                result.data_kbytes)

    assert once() == once()
