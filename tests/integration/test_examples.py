"""Every example script must run clean end to end.

Examples are part of the public surface: these tests import each one
and execute its ``main()`` (scaled-down where the script allows), so a
library change that breaks an example breaks the build.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart", "protocol_shootout", "network_study",
            "tsp_stale_minimum", "jacobi_scaling", "trace_whatif",
            "multithreading"} <= names


def test_quickstart(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "final counter on every node: [20.0, 20.0, 20.0, 20.0]" \
        in out
    assert "messages exchanged" in out


def test_protocol_shootout(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["protocol_shootout.py", "4"])
    load_example("protocol_shootout").main()
    out = capsys.readouterr().out
    assert "best protocol" in out
    for protocol in ("lh", "li", "lu", "ei", "eu"):
        assert protocol in out


def test_tsp_stale_minimum(capsys):
    load_example("tsp_stale_minimum").main()
    out = capsys.readouterr().out
    assert "eager update" in out
    assert "optimum=" in out


def test_trace_whatif(capsys):
    load_example("trace_whatif").main()
    out = capsys.readouterr().out
    assert "recorded: <Trace" in out
    assert "replaying the same trace" in out


@pytest.mark.slow
def test_network_study(capsys):
    load_example("network_study").main()
    out = capsys.readouterr().out
    assert "ATM crossbar" in out


@pytest.mark.slow
def test_jacobi_scaling(capsys):
    load_example("jacobi_scaling").main()
    out = capsys.readouterr().out
    assert "512^2" in out


@pytest.mark.slow
def test_multithreading_example(capsys):
    load_example("multithreading").main()
    out = capsys.readouterr().out
    assert "threads/node" in out
