"""Documentation hygiene: links resolve, the metrics catalogue is
fully documented.

Every relative markdown link in docs/*.md, README.md, and DESIGN.md
must point at a file that exists (anchors are stripped; external
http(s)/mailto links are skipped), docs/observability.md must mention
every metric registered by the repro.obs catalog *and* every trace
event in ``TRACE_EVENTS``, every literal ``tracer.emit("...")``
in the source must use a catalogued event name, and docs/memory.md
must stay in sync with ``repro.mem``'s public classes — both
directions (every exported class named, every named class real).
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Markdown files whose links we police.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md"]
    + list((REPO_ROOT / "docs").glob("*.md")))

#: ``[text](target)`` — good enough for our hand-written markdown;
#: skips image links' leading ``!`` implicitly (same syntax).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(path: Path):
    for target in LINK_RE.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[str(p.relative_to(REPO_ROOT))
                           for p in DOC_FILES])
def test_relative_links_resolve(doc):
    missing = []
    for target in _relative_links(doc):
        resolved = (doc.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            missing.append(target)
    assert not missing, (
        f"{doc.relative_to(REPO_ROOT)} has dead links: {missing}")


def test_doc_files_found():
    # Guard against the glob silently matching nothing.
    names = {p.name for p in DOC_FILES}
    assert {"README.md", "DESIGN.md", "observability.md",
            "architecture.md"} <= names


def test_observability_doc_catalogues_every_metric():
    from repro.obs import (CATALOG, LAB_CATALOG, MEM_CATALOG,
                           ROBUSTNESS_CATALOG, SERVE_CATALOG)

    text = (REPO_ROOT / "docs" / "observability.md").read_text()
    undocumented = [
        spec.name
        for spec in (CATALOG + ROBUSTNESS_CATALOG + LAB_CATALOG
                     + MEM_CATALOG + SERVE_CATALOG)
        if spec.name not in text]
    assert not undocumented, (
        "metrics missing from docs/observability.md: "
        f"{undocumented}")


def test_observability_doc_tables_every_trace_event():
    """The event-name table must row every ``TRACE_EVENTS`` entry
    (as backticked code, i.e. an actual table row, not a mention)."""
    from repro.obs import TRACE_EVENTS

    text = (REPO_ROOT / "docs" / "observability.md").read_text()
    undocumented = [name for name in TRACE_EVENTS
                    if f"`{name}`" not in text]
    assert not undocumented, (
        "trace events missing from docs/observability.md: "
        f"{undocumented}")


#: A backtick span holding exactly one CamelCase identifier — how
#: docs/memory.md names classes.  Dotted spans (`Diff.encode()`),
#: ALL-CAPS constants, and lowercase names deliberately don't match.
CLASS_TOKEN_RE = re.compile(r"`([A-Z][a-z][A-Za-z0-9]*)`")


def test_memory_doc_names_every_public_mem_class():
    """docs/memory.md must literally name (backticked) every public
    class ``repro.mem`` exports."""
    import inspect

    import repro.mem as mem

    text = (REPO_ROOT / "docs" / "memory.md").read_text()
    public_classes = [name for name in mem.__all__
                      if inspect.isclass(getattr(mem, name))]
    assert public_classes, "repro.mem exports no classes?"
    missing = [name for name in public_classes
               if f"`{name}`" not in text]
    assert not missing, (
        f"repro.mem classes undocumented in docs/memory.md: {missing}")


def test_every_class_named_in_memory_doc_exists():
    """...and the other direction: every backticked CamelCase name in
    docs/memory.md must resolve to a real attribute, so renames can't
    leave the doc pointing at ghosts."""
    import repro.core.api
    import repro.mem
    import repro.mem.instrument
    import repro.obs

    namespaces = (repro.mem, repro.mem.instrument, repro.obs,
                  repro.core.api)
    text = (REPO_ROOT / "docs" / "memory.md").read_text()
    tokens = set(CLASS_TOKEN_RE.findall(text))
    assert tokens, "no class names found in docs/memory.md?"
    ghosts = [token for token in tokens
              if not any(hasattr(ns, token) for ns in namespaces)]
    assert not ghosts, (
        f"docs/memory.md names nonexistent classes: {ghosts}")


#: ``tracer.emit("name", ...)`` with a literal event name.  Dynamic
#: names (Span's ``<name>.begin``/``<name>.end``) are intentionally
#: outside the vocabulary and don't match.
EMIT_RE = re.compile(r'tracer\.emit\(\s*"([^"]+)"')


def test_every_emitted_event_name_is_catalogued():
    from repro.obs import TRACE_EVENTS

    sources = sorted((REPO_ROOT / "src" / "repro").rglob("*.py"))
    assert sources, "source glob matched nothing"
    unknown = {}
    emitted = set()
    for path in sources:
        for name in EMIT_RE.findall(path.read_text()):
            emitted.add(name)
            if name not in TRACE_EVENTS:
                unknown.setdefault(
                    str(path.relative_to(REPO_ROOT)), []).append(name)
    assert not unknown, (
        f"emit sites using uncatalogued event names: {unknown}")
    # ... and the vocabulary carries no dead entries either.
    dead = sorted(set(TRACE_EVENTS) - emitted)
    assert not dead, f"TRACE_EVENTS entries never emitted: {dead}"
