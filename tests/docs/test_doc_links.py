"""Documentation hygiene: links resolve, the metrics catalogue is
fully documented.

Every relative markdown link in docs/*.md, README.md, and DESIGN.md
must point at a file that exists (anchors are stripped; external
http(s)/mailto links are skipped), and docs/observability.md must
mention every metric registered by the repro.obs catalog.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Markdown files whose links we police.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md"]
    + list((REPO_ROOT / "docs").glob("*.md")))

#: ``[text](target)`` — good enough for our hand-written markdown;
#: skips image links' leading ``!`` implicitly (same syntax).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(path: Path):
    for target in LINK_RE.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[str(p.relative_to(REPO_ROOT))
                           for p in DOC_FILES])
def test_relative_links_resolve(doc):
    missing = []
    for target in _relative_links(doc):
        resolved = (doc.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            missing.append(target)
    assert not missing, (
        f"{doc.relative_to(REPO_ROOT)} has dead links: {missing}")


def test_doc_files_found():
    # Guard against the glob silently matching nothing.
    names = {p.name for p in DOC_FILES}
    assert {"README.md", "DESIGN.md", "observability.md",
            "architecture.md"} <= names


def test_observability_doc_catalogues_every_metric():
    from repro.obs import CATALOG, LAB_CATALOG, ROBUSTNESS_CATALOG

    text = (REPO_ROOT / "docs" / "observability.md").read_text()
    undocumented = [
        spec.name
        for spec in CATALOG + ROBUSTNESS_CATALOG + LAB_CATALOG
        if spec.name not in text]
    assert not undocumented, (
        "metrics missing from docs/observability.md: "
        f"{undocumented}")
