"""Table 1 message-cost formulas, verified on micro-scenarios.

(The benchmark `test_tab1_message_costs` prints the full table; these
tests pin the individual formulas so a protocol regression is caught
at unit granularity.)
"""

import pytest

from repro.analysis.table1 import (measure_access_miss, measure_barrier,
                                   measure_lock_transfer,
                                   measure_unlock)
from repro.protocols import PROTOCOL_NAMES

LAZY = ["lh", "li", "lu"]


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_miss_with_one_modifier_costs_two_messages(protocol):
    assert measure_access_miss(protocol, modifiers=1) == 2


@pytest.mark.parametrize("protocol", LAZY)
def test_lazy_miss_costs_2m(protocol):
    assert measure_access_miss(protocol, modifiers=2) == 4
    assert measure_access_miss(protocol, modifiers=3) == 6


@pytest.mark.parametrize("protocol", ["ei", "eu"])
def test_eager_miss_is_flat_regardless_of_modifiers(protocol):
    # Whole-page fetch from the home: always one round trip.
    assert measure_access_miss(protocol, modifiers=3) == 2


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_lock_transfer_costs_three_messages(protocol):
    assert measure_lock_transfer(protocol) == 3


@pytest.mark.parametrize("protocol", LAZY)
def test_lazy_release_is_free(protocol):
    assert measure_unlock(protocol, cachers=2) == 0


@pytest.mark.parametrize("protocol", ["ei", "eu"])
def test_eager_release_costs_2c(protocol):
    assert measure_unlock(protocol, cachers=2) == 4
    assert measure_unlock(protocol, cachers=3) == 6


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_clean_barrier_costs_2n_minus_2(protocol):
    delta = measure_barrier(protocol, nprocs=4, dirty=False)
    assert delta["total"] == 6
    assert delta["sync"] == 6


def test_dirty_barrier_update_terms():
    """With one neighbour cacher per modified page: LH pays +u, LU/EU
    pay +2u (acks), EI pays its merge term, LI stays at 2(n-1)."""
    base = 6  # 2(n-1) for n=4
    assert measure_barrier("li", 4, dirty=True)["total"] == base
    assert measure_barrier("lh", 4, dirty=True)["total"] == base + 4
    assert measure_barrier("lu", 4, dirty=True)["total"] == base + 8
    assert measure_barrier("eu", 4, dirty=True)["total"] == base + 8
    assert measure_barrier("ei", 4, dirty=True)["total"] == base + 8
