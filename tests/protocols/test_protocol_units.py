"""Unit tests for protocol building blocks: interval sealing, notice
incorporation, concurrent-last-modifier analysis, copyset upkeep."""

import numpy as np
import pytest

from repro.core import Machine, MachineConfig, NetworkConfig
from repro.mem.intervals import IntervalRecord, WriteNotice
from repro.mem.timestamps import VectorClock
from repro.protocols.base import ProtocolError


def make_node(protocol="lh", nprocs=4):
    machine = Machine(MachineConfig(nprocs=nprocs,
                                    network=NetworkConfig.ideal()),
                      protocol=protocol)
    machine.allocate("seg", machine.config.words_per_page * 4)
    return machine, machine.nodes[0]


def record(proc, index, vc_components, pages, nprocs=4):
    return IntervalRecord(proc=proc, index=index,
                          vc=VectorClock(vc_components),
                          pages=frozenset(pages),
                          pending_ranges={p: [(0, 4)] for p in pages})


class TestSealing:
    def test_seal_noop_when_clean(self):
        machine, node = make_node()
        assert node.protocol.seal_interval() == 0.0
        assert node.vc == VectorClock.zero(4)

    def test_seal_creates_diff_and_record(self):
        machine, node = make_node()
        copy = node.pagetable.get(0)
        copy.values[3] = 9.0
        node.protocol.record_write(0, 3, 4)
        cost = node.protocol.seal_interval()
        assert cost == node.diff_creation_cost()
        assert node.vc[0] == 1
        assert node.diff_store.has(0, 1, 0)
        assert (0, 1) in node.interval_log
        rec = node.interval_log.get((0, 1))
        assert rec.pages == {0}
        assert node.protocol.unpropagated[(0, 1)] == {0}
        assert not copy.dirty
        assert copy.is_applied(0, 1)

    def test_seal_covers_multiple_pages_in_one_interval(self):
        machine, node = make_node()
        for page in (0, 1):
            copy = node.pagetable.get(page) or \
                node.pagetable.install(page)
            copy.valid = True
            node.protocol.record_write(page, 0, 2)
        cost = node.protocol.seal_interval()
        assert cost == 2 * node.diff_creation_cost()
        assert node.vc[0] == 1
        assert node.interval_log.get((0, 1)).pages == {0, 1}

    def test_single_proc_seal_skips_diffs(self):
        machine, node = make_node(nprocs=1)
        copy = node.pagetable.get(0)
        node.protocol.record_write(0, 0, 4)
        assert node.protocol.seal_interval() == 0.0
        assert len(node.diff_store) == 0
        assert not copy.dirty


class TestIncorporate:
    def test_new_record_attaches_notices(self):
        machine, node = make_node()
        rec = record(proc=1, index=1, vc_components=(0, 1, 0, 0),
                     pages=[0])
        node.protocol.incorporate_records([rec])
        copy = node.pagetable.get(0)
        assert [n.interval_id for n in copy.pending_notices] == [(1, 1)]
        assert node.copysets.believes_cached(0, 1)

    def test_duplicate_record_ignored(self):
        machine, node = make_node()
        rec = record(1, 1, (0, 1, 0, 0), [0])
        node.protocol.incorporate_records([rec])
        node.protocol.incorporate_records([rec])
        assert len(node.pagetable.get(0).pending_notices) == 1

    def test_own_records_skipped(self):
        machine, node = make_node()
        rec = record(0, 1, (1, 0, 0, 0), [0])
        node.protocol.incorporate_records([rec])
        assert node.pagetable.get(0).pending_notices == []

    def test_uncached_page_goes_to_orphans(self):
        machine, node = make_node()
        # Page 37 was never allocated/cached at node 0.
        rec = record(1, 1, (0, 1, 0, 0), [37])
        node.protocol.incorporate_records([rec])
        assert [n.interval_id for n in
                node.protocol.orphan_notices[37].values()] == [(1, 1)]


class TestConcurrentLastModifiers:
    def make(self):
        return make_node()[1].protocol

    def notice(self, proc, index, vc):
        return WriteNotice(page=0, proc=proc, index=index,
                           vc=VectorClock(vc))

    def test_single_writer_chain_collapses_to_latest(self):
        proto = self.make()
        notices = [self.notice(1, 1, (0, 1, 0, 0)),
                   self.notice(1, 2, (0, 2, 0, 0)),
                   self.notice(2, 1, (0, 2, 1, 0))]  # saw 1's writes
        assert proto.concurrent_last_modifiers(notices) == [2]

    def test_truly_concurrent_writers_all_reported(self):
        proto = self.make()
        notices = [self.notice(1, 1, (0, 1, 0, 0)),
                   self.notice(2, 1, (0, 0, 1, 0)),
                   self.notice(3, 2, (0, 0, 0, 2))]
        assert proto.concurrent_last_modifiers(notices) == [1, 2, 3]

    def test_mixed_chain_and_concurrent(self):
        proto = self.make()
        notices = [self.notice(1, 1, (0, 1, 0, 0)),
                   self.notice(2, 1, (0, 1, 1, 0)),  # after 1's
                   self.notice(3, 1, (0, 0, 0, 1))]  # concurrent
        assert proto.concurrent_last_modifiers(notices) == [2, 3]


class TestDueNotices:
    def test_notice_outside_cone_not_due(self):
        machine, node = make_node()
        copy = node.pagetable.get(0)
        ahead = WriteNotice(page=0, proc=1, index=3,
                            vc=VectorClock((0, 3, 0, 0)))
        copy.add_notice(ahead)
        assert node.protocol.due_notices(copy) == []
        # Once the acquirer's clock covers it, it becomes due.
        node.vc = node.vc.merged(VectorClock((0, 3, 0, 0)))
        assert node.protocol.due_notices(copy) == [ahead]

    def test_apply_pending_leaves_undue_notices(self):
        machine, node = make_node()
        copy = node.pagetable.get(0)
        ahead = WriteNotice(page=0, proc=1, index=3,
                            vc=VectorClock((0, 3, 0, 0)))
        copy.add_notice(ahead)
        assert node.protocol.apply_pending(copy)  # vacuously succeeds
        assert copy.pending_notices == [ahead]
        assert copy.valid


class TestInvalidation:
    def test_invalidate_dirty_page_rejected(self):
        machine, node = make_node()
        node.protocol.record_write(0, 0, 1)
        with pytest.raises(ProtocolError, match="dirty"):
            node.protocol.invalidate_page(0)

    def test_invalidate_counts_metric(self):
        machine, node = make_node()
        node.protocol.invalidate_page(0)
        assert not node.pagetable.get(0).valid
        assert node.metrics.invalidations == 1
        node.protocol.invalidate_page(0)  # idempotent
        assert node.metrics.invalidations == 1


class TestGrantPayload:
    def test_lazy_grant_ships_unknown_records_only(self):
        machine, node = make_node("li")
        copy = node.pagetable.get(0)
        copy.values[0] = 5.0
        node.protocol.record_write(0, 0, 1)
        node.protocol.seal_interval()
        node.protocol.record_write(0, 1, 2)
        node.protocol.seal_interval()
        # Requester already knows interval (0, 1).
        info, data = node.protocol.grant_payload(
            1, VectorClock((1, 0, 0, 0)))
        assert [r.interval_id for r in info.records] == [(0, 2)]
        assert info.diffs == []
        assert data == 0

    def test_hybrid_grant_attaches_diffs_for_believed_cachers(self):
        machine, node = make_node("lh")
        copy = node.pagetable.get(0)
        copy.values[0] = 5.0
        node.protocol.record_write(0, 0, 1)
        node.protocol.seal_interval()
        node.copysets.add(0, 1)  # we believe proc 1 caches page 0
        info, data = node.protocol.grant_payload(
            1, VectorClock.zero(4))
        assert [iid for iid, _d in info.diffs] == [(0, 1)]
        assert data > 0
        # A requester we do NOT believe caches the page gets notices
        # only.
        info2, data2 = node.protocol.grant_payload(
            2, VectorClock.zero(4))
        assert info2.diffs == []
        assert data2 == 0

    def test_eager_grant_is_empty(self):
        machine, node = make_node("eu")
        payload, data = node.protocol.grant_payload(
            1, VectorClock.zero(4))
        assert payload is None
        assert data == 0
