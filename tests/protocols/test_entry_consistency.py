"""The entry-consistency-flavored protocol ('ec', Midway-style)."""

import pytest

from repro.apps import Cholesky, Tsp, Water
from repro.core import (DsmApi, Machine, MachineConfig, NetworkConfig,
                        run_app)


def make_machine(nprocs=4):
    return Machine(MachineConfig(nprocs=nprocs,
                                 network=NetworkConfig.atm()),
                   protocol="ec")


def test_bound_data_travels_with_the_lock():
    """A properly annotated counter migrates on grants: after the
    first fault, reacquisitions cause no access misses."""
    machine = make_machine(nprocs=4)
    seg = machine.allocate("counter", 16)
    machine.bind_lock(0, seg)

    def worker(api, proc):
        for _ in range(4):
            yield from api.acquire(0)
            value = yield from api.read(seg, 0)
            yield from api.write(seg, 0, value + 1)
            yield from api.release(0)
        yield from api.barrier(0)
        return (yield from api.read(seg, 0))

    result = machine.run(
        lambda p: worker(DsmApi(machine.nodes[p]), p))
    assert result.app_result == [16.0] * 4
    # One cold fault per node at most; afterwards grants carry the data.
    misses = sum(m.read_misses + m.write_misses
                 for m in result.node_metrics)
    assert misses <= machine.config.nprocs


def test_unbound_data_falls_back_to_invalidation():
    """Without a binding, grants carry notices only: every hop faults
    (the annotation burden the paper notes EC imposes)."""
    machine = make_machine(nprocs=4)
    seg = machine.allocate("counter", 16)  # no bind_lock on purpose

    def worker(api, proc):
        for _ in range(4):
            yield from api.acquire(0)
            value = yield from api.read(seg, 0)
            yield from api.write(seg, 0, value + 1)
            yield from api.release(0)
        yield from api.barrier(0)
        return (yield from api.read(seg, 0))

    result = machine.run(
        lambda p: worker(DsmApi(machine.nodes[p]), p))
    assert result.app_result == [16.0] * 4
    misses = sum(m.read_misses + m.write_misses
                 for m in result.node_metrics)
    assert misses > machine.config.nprocs  # faults on most hops


def test_binding_restricts_payload_to_the_locks_data():
    """Lock A's grant must not haul lock B's pages around."""
    machine = make_machine(nprocs=2)
    words = machine.config.words_per_page
    seg_a = machine.allocate("a", words)
    seg_b = machine.allocate("b", words)
    machine.bind_lock(0, seg_a)
    machine.bind_lock(1, seg_b)
    grant_data = []

    def worker(api, proc):
        if proc == 0:
            yield from api.acquire(0)
            yield from api.write(seg_a, 0, 1.0)
            yield from api.release(0)
            yield from api.acquire(1)
            yield from api.write(seg_b, 0, 2.0)
            yield from api.release(1)
        yield from api.barrier(0)
        if proc == 1:
            yield from api.acquire(0)  # should carry seg_a data only
            value = yield from api.read(seg_a, 0)
            yield from api.release(0)
            return value
        return None

    result = machine.run(
        lambda p: worker(DsmApi(machine.nodes[p]), p))
    assert result.app_result[1] == 1.0


@pytest.mark.parametrize("app_factory", [
    lambda: Tsp(ncities=7),
    lambda: Water(nmols=12, steps=1),
    lambda: Cholesky(k=3),
])
def test_annotated_apps_correct_under_ec(app_factory):
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    result = run_app(app_factory(), config, protocol="ec")
    assert result.elapsed_cycles > 0


def test_ec_beats_lh_on_misses_for_annotated_water():
    """The EC promise: with exact annotations, lock transfers carry
    exactly the right data, so access misses do not exceed LH's
    copyset-heuristic misses."""
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    ec = run_app(Water(nmols=24, steps=2), config, protocol="ec")
    lh = run_app(Water(nmols=24, steps=2), config, protocol="lh")
    assert ec.access_misses <= lh.access_misses * 1.5
    assert ec.data_kbytes <= lh.data_kbytes * 1.2
