"""Barrier-time metadata garbage collection (TreadMarks-style
validate-then-prune)."""

import numpy as np
import pytest

from repro.apps import Jacobi, Water
from repro.core import (DsmApi, Machine, MachineConfig, NetworkConfig,
                        run_app)
from repro.protocols import PROTOCOL_NAMES


def iterative_run(protocol, gc_interval, iterations=12, nprocs=4):
    """A barrier-per-iteration workload that writes new intervals
    every round; returns (result, max per-node metadata footprint)."""
    config = MachineConfig(nprocs=nprocs,
                           network=NetworkConfig.atm(),
                           gc_barrier_interval=gc_interval)
    machine = Machine(config, protocol=protocol)
    words = machine.config.words_per_page
    seg = machine.allocate("data", words * nprocs, owner="striped")

    def worker(api, proc):
        neighbour = (proc + 1) % nprocs
        for step in range(iterations):
            yield from api.write(seg, proc * words + step, float(step))
            value = yield from api.read(seg, neighbour * words)
            yield from api.barrier(0)
        return value

    result = machine.run(
        lambda p: worker(DsmApi(machine.nodes[p]), p))
    footprint = max(node.memory_footprint()["interval_records"]
                    for node in machine.nodes)
    diffs = max(node.memory_footprint()["stored_diffs"]
                for node in machine.nodes)
    return result, footprint, diffs


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_gc_bounds_metadata_growth(protocol):
    _result, no_gc_records, no_gc_diffs = iterative_run(protocol, 0)
    _result, gc_records, gc_diffs = iterative_run(protocol, 2)
    assert gc_records < no_gc_records
    # Lazy protocols hoard received diffs without GC.
    if protocol in ("lh", "li", "lu"):
        assert gc_diffs <= no_gc_diffs


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_apps_correct_with_gc_enabled(protocol):
    """finish() hooks verify numerics; GC must not disturb them."""
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm(),
                           gc_barrier_interval=1)
    run_app(Jacobi(n=24, iterations=5), config, protocol=protocol)
    run_app(Water(nmols=12, steps=2), config, protocol=protocol)


def test_gc_then_late_cold_miss_still_works():
    """A node that never touched a page cold-misses it long after the
    page's history was pruned: content-based fetches must not need the
    pruned diffs."""
    config = MachineConfig(nprocs=3, network=NetworkConfig.atm(),
                           gc_barrier_interval=1)
    machine = Machine(config, protocol="lh")
    seg = machine.allocate("data", 64, owner=0)

    def worker(api, proc):
        for step in range(4):
            if proc == 0:
                yield from api.write(seg, step, float(step + 1))
            yield from api.barrier(0)
        if proc == 2:
            # First-ever touch, after several GC cycles.
            values = yield from api.read_region(seg, 0, 4)
            return values.tolist()
        yield from api.compute(10)
        return None

    result = machine.run(
        lambda p: worker(DsmApi(machine.nodes[p]), p))
    assert result.app_result[2] == [1.0, 2.0, 3.0, 4.0]


def test_gc_costs_validation_messages():
    """GC trades messages for memory: enabling it must not be free for
    a lazy-invalidate workload with stale copies."""
    r_plain, _rec, _d = iterative_run("li", 0)
    r_gc, _rec2, _d2 = iterative_run("li", 1)
    assert r_gc.total_messages >= r_plain.total_messages
