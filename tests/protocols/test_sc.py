"""The sequentially-consistent single-writer baseline ('sc')."""

import numpy as np
import pytest

from repro.apps import Cholesky, Jacobi, Tsp, Water
from repro.core import (DsmApi, Machine, MachineConfig, NetworkConfig,
                        run_app)


def make_machine(nprocs=4):
    return Machine(MachineConfig(nprocs=nprocs,
                                 network=NetworkConfig.atm()),
                   protocol="sc")


def run(machine, worker):
    return machine.run(lambda p: worker(DsmApi(machine.nodes[p]), p))


def test_lock_protected_counter():
    machine = make_machine()
    seg = machine.allocate("counter", 16)

    def worker(api, proc):
        for _ in range(3):
            yield from api.acquire(0)
            value = yield from api.read(seg, 0)
            yield from api.write(seg, 0, value + 1)
            yield from api.release(0)
        yield from api.barrier(0)
        return (yield from api.read(seg, 0))

    result = run(machine, worker)
    assert result.app_result == [12.0] * 4


def test_single_writer_no_stale_reads_without_sync():
    """SC's defining strength: a committed write is visible to the
    very next read anywhere, no synchronization required."""
    machine = make_machine(nprocs=2)
    seg = machine.allocate("flag", 8)
    observed = []

    def worker(api, proc):
        if proc == 0:
            yield from api.write(seg, 0, 42.0)
            yield from api.barrier(0)
        else:
            yield from api.barrier(0)
            value = yield from api.read(seg, 0)
            observed.append(value)

    run(machine, worker)
    assert observed == [42.0]


def test_false_sharing_ping_pong():
    """The RC motivation: two writers of different words of one page
    transfer the whole page back and forth under SC."""
    machine = make_machine(nprocs=2)
    seg = machine.allocate("page", 32, owner=0)
    rounds = 6

    def worker(api, proc):
        for step in range(rounds):
            yield from api.write(seg, proc * 8, float(step))
            yield from api.barrier(0)  # force strict alternation

    result = run(machine, worker)
    # Each round bounces exclusive ownership of the page: at least one
    # whole-page transfer per round after the first.
    transfers = sum(m.page_transfers for m in result.node_metrics)
    assert transfers >= rounds - 1
    assert result.data_kbytes >= transfers * 4  # whole pages each time


@pytest.mark.parametrize("app_factory", [
    lambda: Jacobi(n=24, iterations=3),
    lambda: Tsp(ncities=7),
    lambda: Water(nmols=12, steps=1),
    lambda: Cholesky(k=3),
])
def test_applications_correct_under_sc(app_factory):
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    result = run_app(app_factory(), config, protocol="sc")
    assert result.elapsed_cycles > 0


def test_sc_moves_more_data_than_lh_on_false_sharing():
    """The headline comparison: multiple-writer RC vs single-writer SC
    on Water's falsely-shared force array."""
    config = MachineConfig(nprocs=4, network=NetworkConfig.atm())
    sc = run_app(Water(nmols=16, steps=1), config, protocol="sc")
    lh = run_app(Water(nmols=16, steps=1), config, protocol="lh")
    assert sc.data_kbytes > 2 * lh.data_kbytes
    assert sc.elapsed_cycles > lh.elapsed_cycles


def test_sc_single_processor_free():
    result = run_app(Jacobi(n=16, iterations=2),
                     MachineConfig(nprocs=1), protocol="sc")
    assert result.total_messages == 0
