"""Targeted tests for the protocol-correctness mechanisms DESIGN.md
section 4.1 documents — each was the fix for a real bug, so each gets
a regression test that exercises the precise scenario."""

import numpy as np
import pytest

from repro.core import DsmApi, Machine, MachineConfig, NetworkConfig
from repro.mem.intervals import WriteNotice
from repro.mem.timestamps import VectorClock
from repro.protocols.base import ProtocolError


def make_machine(protocol="lh", nprocs=4, **kwargs):
    return Machine(MachineConfig(nprocs=nprocs,
                                 network=NetworkConfig.atm(), **kwargs),
                   protocol=protocol)


def run(machine, worker):
    return machine.run(lambda p: worker(DsmApi(machine.nodes[p]), p))


class TestCanonicalDiffs:
    """4.1(1): diffs served verbatim; escalation to the writer."""

    def test_chained_overlapping_writes_converge(self):
        """Three nodes write the same word in lock order, with a
        fourth reading mid-chain and at the end: the final value must
        be the last writer's on every node (the Water mol-11 bug)."""
        machine = make_machine("lh", nprocs=4)
        seg = machine.allocate("x", 16)

        def worker(api, proc):
            if proc < 3:
                yield from api.compute(proc * 5_000)
                yield from api.acquire(7)
                value = yield from api.read(seg, 0)
                yield from api.write(seg, 0, value + 10.0)
                yield from api.release(7)
            yield from api.barrier(0)
            return (yield from api.read(seg, 0))

        result = run(machine, worker)
        assert result.app_result == [30.0] * 4

    def test_escalation_reaches_the_writer(self):
        """A cold reader fetches page contents from one concurrent
        modifier and the other modifier's diff separately; every write
        must land in the merged copy."""
        machine = make_machine("li", nprocs=4)
        words = machine.config.words_per_page
        seg = machine.allocate("x", words, owner=3)

        def worker(api, proc):
            # Procs 0 and 1 write disjoint words under separate locks.
            if proc in (0, 1):
                yield from api.acquire(proc)
                yield from api.write(seg, proc * 4, float(proc + 1))
                yield from api.release(proc)
            yield from api.barrier(0)
            if proc == 2:
                # Cold miss: content from a modifier + diff fetches.
                values = yield from api.read_region(seg, 0, 8)
                return values.tolist()
            return None

        result = run(machine, worker)
        assert result.app_result[2][0] == 1.0
        assert result.app_result[2][4] == 2.0


class TestCausalCone:
    """4.1(2): pushed notices outside the cone must wait."""

    def test_pushed_diff_not_applied_before_predecessor(self):
        machine = make_machine("lh", nprocs=3)
        machine.allocate("x", 16)  # page 0, owned by node 0
        node = machine.nodes[0]
        copy = node.pagetable.get(0)
        # Simulate receiving, via a push, a notice whose vc claims a
        # predecessor we have never heard of.
        ahead = WriteNotice(page=0, proc=1, index=2,
                            vc=VectorClock((0, 2, 1)))
        copy.add_notice(ahead)
        assert node.protocol.due_notices(copy) == []
        # The apply machinery must leave it pending and keep the copy
        # usable.
        assert node.protocol.apply_pending(copy)
        assert copy.pending_notices == [ahead]

    def test_cone_grows_with_acquires(self):
        machine = make_machine("lh", nprocs=3)
        machine.allocate("x", 16)
        node = machine.nodes[0]
        copy = node.pagetable.get(0)
        ahead = WriteNotice(page=0, proc=1, index=1,
                            vc=VectorClock((0, 1, 0)))
        copy.add_notice(ahead)
        node.vc = node.vc.merged(VectorClock((0, 1, 0)))
        assert node.protocol.due_notices(copy) == [ahead]


class TestSealDisciplines:
    """Dirty pages must be sealed before invalidation everywhere."""

    def test_invalidation_never_loses_local_writes(self):
        """Proc 0 writes word A under lock 0 while proc 1's releases
        keep invalidating the page via lock 1 traffic (LI): proc 0's
        writes must survive to the barrier."""
        machine = make_machine("li", nprocs=2)
        seg = machine.allocate("x", 32)
        rounds = 5

        def worker(api, proc):
            my_lock, my_word = proc, proc * 9
            for _ in range(rounds):
                yield from api.acquire(my_lock)
                value = yield from api.read(seg, my_word)
                yield from api.write(seg, my_word, value + 1.0)
                yield from api.release(my_lock)
            yield from api.barrier(0)
            mine = yield from api.read(seg, my_word)
            theirs = yield from api.read(seg, (1 - proc) * 9)
            return (mine, theirs)

        result = run(machine, worker)
        assert result.app_result == [(5.0, 5.0), (5.0, 5.0)]


class TestTokenCarriedQueues:
    """4.1(6): queued requesters travel with the lock token."""

    def test_three_way_convoy(self):
        machine = make_machine("lh", nprocs=4)
        seg = machine.allocate("x", 8)
        order = []

        def worker(api, proc):
            if proc == 0:
                yield from api.acquire(3)
                yield from api.compute(100_000)  # others pile up
                yield from api.release(3)
            else:
                yield from api.compute(1_000 * proc)
                yield from api.acquire(3)
                order.append(proc)
                value = yield from api.read(seg, 0)
                yield from api.write(seg, 0, value + 1.0)
                yield from api.release(3)
            yield from api.barrier(0)
            return (yield from api.read(seg, 0))

        result = run(machine, worker)
        assert sorted(order) == [1, 2, 3]
        assert result.app_result == [3.0] * 4


class TestSingleNodeBaseline:
    """4.1(7): one-processor machines skip diff machinery."""

    def test_no_diffs_created_on_one_proc(self):
        machine = make_machine("lh", nprocs=1)
        seg = machine.allocate("x", 64)

        def worker(api, proc):
            for i in range(8):
                yield from api.acquire(0)
                yield from api.write(seg, i, float(i))
                yield from api.release(0)
            yield from api.barrier(0)

        result = run(machine, worker)
        assert result.diffs_created == 0
        assert machine.nodes[0].memory_footprint()["stored_diffs"] == 0
