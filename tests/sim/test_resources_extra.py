"""FifoStore and additional resource-primitive tests."""

import pytest

from repro.sim import FifoStore, Resource, Simulator


class TestFifoStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = FifoStore(sim, name="queue")
        store.put("a")
        store.put("b")
        got = []

        def consumer():
            first = yield store.get()
            second = yield store.get()
            got.extend([first, second])

        sim.run_process(sim.spawn(consumer()))
        assert got == ["a", "b"]
        assert len(store) == 0

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = FifoStore(sim)
        times = []

        def consumer():
            item = yield store.get()
            times.append((sim.now, item))

        def producer():
            yield sim.timeout(25.0)
            store.put("late")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert times == [(25.0, "late")]

    def test_multiple_blocked_getters_fifo(self):
        sim = Simulator()
        store = FifoStore(sim)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        sim.spawn(consumer("first"))
        sim.spawn(consumer("second"))

        def producer():
            yield sim.timeout(1.0)
            store.put(100)
            store.put(200)

        sim.spawn(producer())
        sim.run()
        assert got == [("first", 100), ("second", 200)]


class TestResourceAccounting:
    def test_wait_statistics(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="r")

        def holder():
            yield resource.request()
            yield sim.timeout(40.0)
            resource.release()

        def waiter():
            yield sim.timeout(10.0)
            yield resource.request()
            resource.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert resource.total_waits == 1
        assert resource.total_wait_cycles == pytest.approx(30.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)
