"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (AllOf, Event, Process, Resource, SimulationError,
                       Simulator, Timeout)


def test_empty_run_returns_zero():
    sim = Simulator()
    assert sim.run() == 0.0


def test_schedule_order_is_time_then_fifo():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(5.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 5.0


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(10.0)
        yield sim.timeout(2.5)
        return sim.now

    result = sim.run_process(sim.spawn(proc()))
    assert result == 12.5


def test_yield_bare_number_is_timeout():
    sim = Simulator()

    def proc():
        yield 7
        return sim.now

    assert sim.run_process(sim.spawn(proc())) == 7.0


def test_event_wakes_waiter_with_value():
    sim = Simulator()
    gate = sim.event("gate")
    results = []

    def waiter():
        value = yield gate
        results.append((sim.now, value))

    def firer():
        yield sim.timeout(3.0)
        gate.succeed("hello")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert results == [(3.0, "hello")]


def test_event_double_succeed_raises():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_event_callback_after_trigger_still_fires():
    sim = Simulator()
    event = sim.event()
    event.succeed(42)
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == [42]


def test_process_join_returns_value():
    sim = Simulator()

    def child():
        yield sim.timeout(4.0)
        return "done"

    def parent():
        value = yield sim.spawn(child())
        return (sim.now, value)

    assert sim.run_process(sim.spawn(parent())) == (4.0, "done")


def test_all_of_waits_for_every_child():
    sim = Simulator()
    events = [sim.event(str(i)) for i in range(3)]

    def firer(i):
        yield sim.timeout(float(i + 1))
        events[i].succeed(i * 10)

    def waiter():
        values = yield sim.all_of(events)
        return (sim.now, values)

    for i in range(3):
        sim.spawn(firer(i))
    result = sim.run_process(sim.spawn(waiter()))
    assert result == (3.0, [0, 10, 20])


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def waiter():
        values = yield sim.all_of([])
        return values

    assert sim.run_process(sim.spawn(waiter())) == []


def test_yield_list_waits_for_all():
    sim = Simulator()

    def waiter():
        yield [sim.timeout(2.0), sim.timeout(5.0)]
        return sim.now

    assert sim.run_process(sim.spawn(waiter())) == 5.0


def test_process_yielding_garbage_raises():
    sim = Simulator()

    def proc():
        yield "nonsense"

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    seen = []
    sim.schedule(10.0, seen.append, "late")
    sim.run(until=5.0)
    assert seen == []
    assert sim.now == 5.0


def test_deadlock_detected_by_run_process():
    sim = Simulator()

    def stuck():
        yield sim.event("never")

    with pytest.raises(SimulationError, match="did not finish"):
        sim.run_process(sim.spawn(stuck()))


def test_condition_notify_all():
    sim = Simulator()
    cond = sim.condition()
    woken = []

    def waiter(i):
        yield cond.wait()
        woken.append((i, sim.now))

    def notifier():
        yield sim.timeout(2.0)
        cond.notify_all()

    for i in range(3):
        sim.spawn(waiter(i))
    sim.spawn(notifier())
    sim.run()
    assert sorted(woken) == [(0, 2.0), (1, 2.0), (2, 2.0)]


class TestResource:
    def test_fifo_mutual_exclusion(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="cpu")
        order = []

        def user(i, hold):
            yield resource.request()
            order.append((i, sim.now))
            yield sim.timeout(hold)
            resource.release()

        for i in range(3):
            sim.spawn(user(i, 10.0))
        sim.run()
        assert order == [(0, 0.0), (1, 10.0), (2, 20.0)]
        assert resource.total_waits == 2
        assert resource.total_wait_cycles == 30.0

    def test_capacity_two_allows_parallelism(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        starts = []

        def user(i):
            yield resource.request()
            starts.append((i, sim.now))
            yield sim.timeout(10.0)
            resource.release()

        for i in range(3):
            sim.spawn(user(i))
        sim.run()
        assert starts == [(0, 0.0), (1, 0.0), (2, 10.0)]

    def test_release_idle_raises(self):
        sim = Simulator()
        resource = Resource(sim)
        with pytest.raises(RuntimeError):
            resource.release()


class TestObsCounterBatching:
    """The inlined dispatch loops batch event counters locally and
    fold them into the metrics registry once per run — exactly once,
    whether events flow through run(), run_all(), or step()."""

    @staticmethod
    def _observed_sim():
        from repro.obs import Observability
        sim = Simulator()
        obs = Observability()
        sim.attach_obs(obs)
        events = obs.registry.get("sim.events_dispatched_total")
        return sim, events

    def test_run_flushes_batched_counter_once(self):
        sim, events = self._observed_sim()
        for i in range(7):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 7
        assert events.labels().value == 7

    def test_step_and_run_agree_on_event_count(self):
        sim, events = self._observed_sim()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.step()
        sim.run()
        assert not sim.step()        # empty queue: no count movement
        assert sim.processed_events == 2
        assert events.labels().value == 2

    def test_counters_survive_raising_callback(self):
        sim, events = self._observed_sim()
        sim.schedule(1.0, lambda: None)

        def boom():
            raise RuntimeError("callback failure")

        sim.schedule(2.0, boom)
        with pytest.raises(RuntimeError, match="callback failure"):
            sim.run()
        # The locally-batched count still reached the registry: the
        # event that completed is recorded (the raiser, whose
        # callback never finished, is not — same as step()).
        assert sim.processed_events == 1
        assert events.labels().value == 1

    def test_run_all_counts_match_plain_run(self):
        def program(sim):
            def proc():
                for _ in range(3):
                    yield 1.0

            sim.spawn(proc())
            sim.spawn(proc())

        sim_a, events_a = self._observed_sim()
        program(sim_a)
        sim_a.run()
        sim_b, events_b = self._observed_sim()
        program(sim_b)
        sim_b.run_all()
        assert events_a.labels().value == events_b.labels().value
        assert sim_a.processed_events == sim_b.processed_events


def test_yield_bare_float_is_timeout():
    sim = Simulator()

    def proc():
        yield 2.5
        return sim.now

    assert sim.run_process(sim.spawn(proc())) == 2.5


def test_determinism_same_program_same_times():
    def build():
        sim = Simulator()
        trace = []

        def proc(i):
            yield sim.timeout(float(i))
            trace.append((i, sim.now))
            yield sim.timeout(2.0)
            trace.append((i, sim.now))

        for i in range(5):
            sim.spawn(proc(i))
        sim.run()
        return trace

    assert build() == build()


def test_process_pause_defers_resumes_until_unpause():
    """A paused process (a crashed node's frozen worker) banks every
    resume that lands during the freeze and replays them, in order,
    when unpaused — the continuation itself never observes the gap."""
    sim = Simulator()
    log = []

    def worker():
        yield 10
        log.append(("a", sim.now))
        yield 10
        log.append(("b", sim.now))

    process = sim.spawn(worker())
    sim.schedule(5, process.pause)     # freeze before the t=10 resume
    sim.schedule(50, process.unpause)  # thaw: deferred resume replays
    sim.run()
    assert log == [("a", 50), ("b", 60)]


def test_process_unpause_without_deferred_resumes_is_harmless():
    sim = Simulator()
    log = []

    def worker():
        yield 100
        log.append(sim.now)

    process = sim.spawn(worker())
    sim.schedule(5, process.pause)
    sim.schedule(6, process.unpause)   # nothing was deferred yet
    sim.run()
    assert log == [100]
