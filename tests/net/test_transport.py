"""Unit tests for the reliable transport (repro.net.transport).

A scripted fault stub stands in for the seeded injector so each test
controls exactly which transmission is dropped, duplicated, or
delayed.
"""

import pytest

from repro.core.config import MachineConfig, NetworkConfig
from repro.faults.injector import Decision
from repro.net import build_network
from repro.net.message import Message, MsgKind
from repro.net.transport import ReliableTransport
from repro.obs import Observability
from repro.sim import Simulator


class ScriptedFaults:
    """Pops one pre-scripted verdict per transmission; ``None`` past
    the end of the script (deliver normally)."""

    def __init__(self, script):
        self.script = list(script)
        self.decided = 0

    def decide(self, packet):
        self.decided += 1
        if self.script:
            return self.script.pop(0)
        return None


def harness(script=(), network=None, nprocs=4):
    sim = Simulator()
    config = MachineConfig(nprocs=nprocs,
                           network=network or NetworkConfig.ideal())
    net = build_network(sim, config)
    if script is not None:
        net.attach_faults(ScriptedFaults(script))
    delivered = []
    obs = Observability()
    transport = ReliableTransport(sim, config, net,
                                  delivered.append, obs=obs)
    net.attach(transport.on_network_delivery)
    return sim, transport, delivered, obs.registry


def msg(src=0, dst=1, data=0):
    return Message(src=src, dst=dst, kind=MsgKind.PAGE_REPLY,
                   data_bytes=data)


def test_fault_free_messages_arrive_in_order_exactly_once():
    sim, transport, delivered, registry = harness()
    sent = [msg(data=i) for i in (10, 20, 30)]
    for m in sent:
        transport.send(m)
    sim.run()
    assert delivered == sent
    assert transport.in_flight() == 0
    assert registry.total("transport.retransmits_total") == 0
    assert registry.total("transport.delivered_total") == 3
    # With no reverse traffic the receiver owed pure acks.
    assert registry.total("transport.acks_sent_total") >= 1


def test_dropped_packet_is_retransmitted_and_delivered_once():
    sim, transport, delivered, registry = harness(
        script=[Decision(drop=True)])
    message = msg()
    transport.send(message)
    sim.run()
    assert delivered == [message]
    assert transport.in_flight() == 0
    assert registry.total("transport.retransmits_total") == 1
    assert registry.total("transport.timeout_fires_total") == 1
    assert registry.total("faults.drops_total") == 0  # stub, not injector


def test_every_packet_dropped_n_times_still_delivers():
    sim, transport, delivered, registry = harness(
        script=[Decision(drop=True)] * 4)
    message = msg()
    transport.send(message)
    sim.run()
    assert delivered == [message]
    assert registry.total("transport.retransmits_total") == 4
    # Recovery time of the retransmitted packet was observed.
    recovery = registry.get("transport.recovery_cycles").labels()
    assert recovery.count == 1


def test_duplicate_is_suppressed():
    sim, transport, delivered, registry = harness(
        script=[Decision(duplicate=True)])
    message = msg()
    transport.send(message)
    sim.run()
    assert delivered == [message]
    assert registry.total("transport.duplicates_suppressed_total") == 1
    assert registry.total("transport.delivered_total") == 1


def test_reordered_packet_is_buffered_and_released_in_order():
    # First packet held back long enough that the second overtakes it.
    sim, transport, delivered, registry = harness(
        script=[Decision(extra_delay=50_000.0)])
    first, second = msg(data=1), msg(data=2)
    transport.send(first)
    transport.send(second)
    sim.run()
    assert delivered == [first, second]
    assert registry.total("transport.out_of_order_total") == 1


def test_reverse_traffic_piggybacks_the_ack():
    sim, transport, delivered, registry = harness(script=[])
    transport.send(msg(src=0, dst=1))

    # Reply shortly after delivery, well inside the ack delay.
    def reply():
        transport.send(msg(src=1, dst=0))
    sim.schedule(transport.ack_delay / 4, reply)
    sim.run()
    assert registry.total("transport.acks_piggybacked_total") == 1
    assert transport.in_flight() == 0


def test_retransmission_timeout_backs_off_exponentially():
    sim, transport, delivered, registry = harness(
        script=[Decision(drop=True)] * 3)
    transport.send(msg())
    fires = []
    original = ReliableTransport._on_timeout

    def spy(self, stream, timer):
        fires.append(sim.now)
        original(self, stream, timer)

    ReliableTransport._on_timeout = spy
    try:
        sim.run()
    finally:
        ReliableTransport._on_timeout = original
    assert len(fires) == 3
    gaps = [b - a for a, b in zip(fires, fires[1:])]
    # Jitter stretches each arm by at most jitter_frac, far less than
    # the 2x backoff, so consecutive gaps must still grow.
    assert gaps[1] > gaps[0] * 1.5


def test_ack_loss_triggers_retransmit_then_dup_suppression():
    # Script: data arrives (None), its pure ack is dropped; the
    # retransmitted copy is a duplicate at the receiver.
    sim, transport, delivered, registry = harness(
        script=[None, Decision(drop=True)])
    message = msg()
    transport.send(message)
    sim.run()
    assert delivered == [message]
    assert transport.in_flight() == 0
    assert registry.total("transport.retransmits_total") == 1
    assert registry.total("transport.duplicates_suppressed_total") == 1


def test_streams_are_per_directed_pair():
    sim, transport, delivered, registry = harness(script=[])
    transport.send(msg(src=0, dst=1))
    transport.send(msg(src=0, dst=2))
    transport.send(msg(src=3, dst=1))
    sim.run()
    assert len(delivered) == 3
    # Three distinct forward streams, each starting at seq 0.
    assert transport._stream(0, 1).next_seq == 1
    assert transport._stream(0, 2).next_seq == 1
    assert transport._stream(3, 1).next_seq == 1


def test_transport_counts_wire_packets_not_protocol_messages():
    sim, transport, delivered, registry = harness(
        script=[Decision(drop=True)])
    transport.send(msg())
    sim.run()
    sent = registry.total("transport.packets_sent_total")
    received = registry.total("transport.packets_received_total")
    data = registry.total("transport.data_packets_total")
    assert data == 1
    # original + retransmit + final pure ack
    assert sent == 3
    assert received == 2  # the dropped copy never arrived


def test_rto_backoff_is_capped_by_absolute_maximum():
    """A long-dead peer must not drive the retransmit interval
    unbounded: after the exponential ramp, every probe interval stays
    at or below ``rto_max_us`` (plus jitter)."""
    from repro.core.config import TransportConfig
    sim = Simulator()
    config = MachineConfig(
        nprocs=2, network=NetworkConfig.ideal(),
        transport=TransportConfig(rto_us=1_000.0, rto_max_us=4_000.0))
    net = build_network(sim, config)
    net.attach_faults(ScriptedFaults([Decision(drop=True)] * 10))
    delivered = []
    obs = Observability()
    transport = ReliableTransport(sim, config, net, delivered.append,
                                  obs=obs)
    net.attach(transport.on_network_delivery)
    transport.send(msg())
    fires = []
    original = ReliableTransport._on_timeout

    def spy(self, stream, timer):
        fires.append(sim.now)
        original(self, stream, timer)

    ReliableTransport._on_timeout = spy
    try:
        sim.run()
    finally:
        ReliableTransport._on_timeout = original
    assert delivered  # the 11th attempt finally got through
    gaps = [b - a for a, b in zip(fires, fires[1:])]
    cap = (config.us_to_cycles(config.transport.rto_max_us)
           * (1.0 + config.transport.jitter_frac))
    assert max(gaps) <= cap * 1.0001
    # The ramp really hit the ceiling: without the cap, ten doublings
    # of a 1 ms base would dwarf it.
    assert sum(1 for g in gaps if g > cap / 4) >= 3
    # Probes at the cap are the peer-death suspicion signal.
    assert obs.registry.total(
        "transport.peer_down_timeouts_total") > 0


def test_transport_config_validates_rto_max():
    from repro.core.config import TransportConfig
    with pytest.raises(ValueError):
        TransportConfig(rto_us=10_000.0, rto_max_us=1_000.0)
