"""Unit tests for the Ethernet, ATM, and ideal network models."""

import pytest

from repro.core.config import (MESSAGE_HEADER_BYTES, MachineConfig,
                               NetworkConfig)
from repro.net import build_network
from repro.net.message import Message, MsgKind
from repro.sim import Simulator


def make(kind_config, nprocs=4, cpu_mhz=40.0):
    sim = Simulator()
    config = MachineConfig(nprocs=nprocs, cpu_mhz=cpu_mhz,
                           network=kind_config)
    network = build_network(sim, config)
    delivered = []
    network.attach(lambda msg: delivered.append((sim.now, msg)))
    return sim, config, network, delivered


def msg(src, dst, data=0):
    return Message(src=src, dst=dst, kind=MsgKind.PAGE_REPLY,
                   data_bytes=data)


def test_build_network_rejects_unknown_kind():
    sim = Simulator()
    config = MachineConfig(nprocs=2,
                           network=NetworkConfig(kind="carrier-pigeon"))
    with pytest.raises(ValueError):
        build_network(sim, config)


def test_message_to_self_rejected():
    with pytest.raises(ValueError):
        msg(1, 1)


def test_destination_out_of_range_rejected():
    sim, config, network, _ = make(NetworkConfig.ideal())
    with pytest.raises(ValueError):
        network.transmit(msg(0, 99))


def test_ideal_network_fixed_latency_no_contention():
    sim, config, network, delivered = make(
        NetworkConfig(kind="ideal", bandwidth_mbps=1e9, latency_us=1.0))
    latency = config.us_to_cycles(1.0)
    network.transmit(msg(0, 1))
    network.transmit(msg(2, 3))
    sim.run()
    assert [t for t, _m in delivered] == [latency, latency]


class TestAtm:
    def test_wire_time_matches_bandwidth(self):
        sim, config, network, delivered = make(NetworkConfig.atm(100.0))
        message = msg(0, 1, data=4096 - MESSAGE_HEADER_BYTES)
        expected = config.wire_cycles(4096) + network.latency_cycles
        network.transmit(message)
        sim.run()
        assert delivered[0][0] == pytest.approx(expected)

    def test_disjoint_pairs_do_not_contend(self):
        sim, config, network, delivered = make(NetworkConfig.atm(100.0))
        network.transmit(msg(0, 1, data=4096))
        network.transmit(msg(2, 3, data=4096))
        sim.run()
        assert delivered[0][0] == pytest.approx(delivered[1][0])
        assert network.stats.contention_cycles == 0.0

    def test_common_destination_serializes(self):
        sim, config, network, delivered = make(NetworkConfig.atm(100.0))
        wire = config.wire_cycles(msg(0, 1, data=4096).size_bytes)
        network.transmit(msg(0, 1, data=4096))
        network.transmit(msg(2, 1, data=4096))
        sim.run()
        times = sorted(t for t, _m in delivered)
        assert times[1] - times[0] == pytest.approx(wire)
        assert network.stats.contention_cycles == pytest.approx(wire)

    def test_common_source_serializes(self):
        sim, config, network, delivered = make(NetworkConfig.atm(100.0))
        network.transmit(msg(0, 1, data=4096))
        network.transmit(msg(0, 2, data=4096))
        sim.run()
        times = sorted(t for t, _m in delivered)
        assert times[1] > times[0]


class TestEthernet:
    def test_all_transfers_serialize(self):
        sim, config, network, delivered = make(
            NetworkConfig.ethernet(collisions=False))
        network.transmit(msg(0, 1, data=4096))
        network.transmit(msg(2, 3, data=4096))
        sim.run()
        times = sorted(t for t, _m in delivered)
        wire = config.wire_cycles(msg(0, 1, data=4096).size_bytes)
        assert times[1] - times[0] == pytest.approx(wire)
        assert network.stats.contention_cycles > 0

    def test_collisions_add_backoff(self):
        def total_time(collisions):
            sim, config, network, delivered = make(
                NetworkConfig.ethernet(collisions=collisions))
            for i in range(8):
                network.transmit(msg(i % 4, (i + 1) % 4, data=1024))
            sim.run()
            return max(t for t, _m in delivered)

        assert total_time(True) > total_time(False)

    def test_collision_count_recorded(self):
        sim, config, network, delivered = make(
            NetworkConfig.ethernet(collisions=True))
        for i in range(4):
            network.transmit(msg(0, 1, data=1024))
        sim.run()
        assert network.stats.collisions == 3

    def test_backoff_window_tracks_live_contention(self):
        """Regression: the contender count must drop again when a
        modelled transmission ends.  The old code only reset the
        counter on a fully idle medium, so a long burst ratcheted the
        backoff window up monotonically (windows 1,2,3,...) even
        though only one other station was ever actually contending."""
        sim, config, network, delivered = make(
            NetworkConfig.ethernet(collisions=True))
        windows = []

        class Recorder:
            def uniform(self, low, high):
                windows.append(high)
                return 0.0  # no backoff: keeps the timeline exact

        network._rng = Recorder()
        wire = config.wire_cycles(msg(0, 1, data=1024).size_bytes)
        # One send at t=0, then one new arrival during each successive
        # transmission: at any instant at most two stations contend.
        for k in range(1, 4):
            sim.schedule((k - 0.5) * wire, network.transmit,
                         msg(k % 4, (k + 1) % 4, data=1024))
        network.transmit(msg(0, 1, data=1024))
        sim.run()
        assert len(delivered) == 4
        # First waiter sees 1 contender; afterwards the finished
        # sender's slot has been released, so the window stays at 2
        # instead of ratcheting to 3.
        assert windows == [1, 2, 2]
        assert network._queued == 0

    def test_idle_medium_no_penalty(self):
        sim, config, network, delivered = make(
            NetworkConfig.ethernet(collisions=True))
        network.transmit(msg(0, 1))
        sim.run()
        wire = config.wire_cycles(MESSAGE_HEADER_BYTES)
        assert delivered[0][0] == pytest.approx(
            wire + network.latency_cycles)


def test_stats_accumulate_bytes_and_data():
    sim, config, network, delivered = make(NetworkConfig.atm())
    network.transmit(msg(0, 1, data=100))
    network.transmit(msg(1, 2, data=50))
    sim.run()
    assert network.stats.messages == 2
    assert network.stats.data_bytes_sent == 150
    assert network.stats.bytes_sent == 150 + 2 * MESSAGE_HEADER_BYTES


def test_cpu_speed_scales_wire_cycles():
    slow = MachineConfig(nprocs=2, cpu_mhz=20.0)
    fast = MachineConfig(nprocs=2, cpu_mhz=80.0)
    assert fast.wire_cycles(4096) == pytest.approx(
        4 * slow.wire_cycles(4096))
