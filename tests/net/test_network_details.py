"""Additional network-model details: port accounting, latency
composition, message sizing."""

import pytest

from repro.core.config import (MESSAGE_HEADER_BYTES, MachineConfig,
                               NetworkConfig)
from repro.net import build_network
from repro.net.message import Message, MsgKind
from repro.sim import Simulator


def make(network_config, nprocs=4):
    sim = Simulator()
    config = MachineConfig(nprocs=nprocs, network=network_config)
    network = build_network(sim, config)
    delivered = []
    network.attach(lambda msg: delivered.append((sim.now, msg)))
    return sim, config, network, delivered


def msg(src, dst, data=0):
    return Message(src=src, dst=dst, kind=MsgKind.UPDATE_PUSH,
                   data_bytes=data)


def test_transmit_requires_attachment():
    sim = Simulator()
    network = build_network(sim, MachineConfig(nprocs=2))
    with pytest.raises(RuntimeError, match="not attached"):
        network.transmit(msg(0, 1))


def test_atm_full_duplex_ports():
    """A->B and B->C proceed concurrently: a node's input and output
    ports are independent (full duplex), so receiving does not block
    sending."""
    sim, config, network, delivered = make(NetworkConfig.atm(100.0))
    network.transmit(msg(0, 1, data=4096))
    network.transmit(msg(1, 2, data=4096))
    sim.run()
    times = sorted(t for t, _m in delivered)
    assert times[0] == pytest.approx(times[1])
    assert network.stats.contention_cycles == 0.0


def test_latency_added_after_serialization():
    sim, config, network, delivered = make(
        NetworkConfig(kind="atm", bandwidth_mbps=100.0,
                      latency_us=50.0))
    network.transmit(msg(0, 1))
    sim.run()
    wire = config.wire_cycles(MESSAGE_HEADER_BYTES)
    latency = config.us_to_cycles(50.0)
    assert delivered[0][0] == pytest.approx(wire + latency)


def test_message_sizing_header_plus_data():
    message = msg(0, 1, data=1000)
    assert message.size_bytes == MESSAGE_HEADER_BYTES + 1000
    with pytest.raises(ValueError):
        Message(src=0, dst=1, kind=MsgKind.FLUSH, data_bytes=-1)


def test_msgkind_sync_classification():
    assert MsgKind.LOCK_REQ.is_synchronization
    assert MsgKind.BARRIER_DEPART.is_synchronization
    assert not MsgKind.PAGE_REPLY.is_synchronization
    assert not MsgKind.UPDATE_PUSH.is_synchronization


def test_ethernet_queue_resets_when_idle():
    """After the medium drains, the next send pays no backoff."""
    sim, config, network, delivered = make(
        NetworkConfig.ethernet(collisions=True))
    network.transmit(msg(0, 1, data=1024))
    network.transmit(msg(1, 2, data=1024))  # collides
    sim.run()
    collisions_before = network.stats.collisions
    network.transmit(msg(2, 3, data=64))  # idle medium now
    sim.run()
    assert network.stats.collisions == collisions_before


def test_ethernet_backoff_window_capped():
    sim, config, network, delivered = make(
        NetworkConfig.ethernet(collisions=True), nprocs=4)
    for i in range(40):
        network.transmit(msg(i % 4, (i + 1) % 4, data=512))
    sim.run()
    # All messages eventually delivered despite heavy contention.
    assert len(delivered) == 40
    assert network.stats.collisions > 0
