"""Unit tests for the seeded fault injector (repro.faults)."""

import pytest

from repro.core.config import (FaultConfig, LinkFault, MachineConfig,
                               NetworkConfig, StallSpec)
from repro.faults import FaultInjector
from repro.net.message import Message, MsgKind


def make_injector(**fault_kwargs):
    config = MachineConfig(nprocs=4, network=NetworkConfig.ethernet(),
                           faults=FaultConfig(**fault_kwargs))
    return FaultInjector(config)


def msg(src=0, dst=1):
    return Message(src=src, dst=dst, kind=MsgKind.FLUSH)


def decisions(injector, n=200):
    return [injector.decide(msg()) for _ in range(n)]


def summarize(decision):
    if decision is None:
        return None
    return (decision.drop, decision.duplicate, decision.extra_delay)


def test_same_seed_gives_identical_fault_plan():
    a = decisions(make_injector(drop_prob=0.1, dup_prob=0.1,
                                reorder_prob=0.1))
    b = decisions(make_injector(drop_prob=0.1, dup_prob=0.1,
                                reorder_prob=0.1))
    assert [summarize(d) for d in a] == [summarize(d) for d in b]


def test_fault_classes_draw_from_independent_streams():
    """Enabling duplication must not change *which* messages drop:
    every class pre-draws from its own substream on every decision."""
    drops_alone = [d is not None and d.drop
                   for d in decisions(make_injector(drop_prob=0.2))]
    drops_mixed = [d is not None and d.drop
                   for d in decisions(make_injector(drop_prob=0.2,
                                                    dup_prob=0.3,
                                                    reorder_prob=0.3))]
    assert drops_alone == drops_mixed
    assert any(drops_alone)


def test_drop_short_circuits_other_faults():
    injector = make_injector(drop_prob=0.999, dup_prob=0.999)
    for decision in decisions(injector, n=50):
        if decision is not None and decision.drop:
            assert not decision.duplicate
            assert decision.extra_delay == 0.0
    assert injector.drops > 0


def test_rates_are_statistically_plausible():
    injector = make_injector(drop_prob=0.05)
    n = 5000
    drops = sum(1 for _ in range(n)
                if (d := injector.decide(msg())) and d.drop)
    assert 0.03 < drops / n < 0.07
    assert injector.drops == drops


def test_no_faults_configured_returns_none():
    quiet = make_injector()
    assert all(d is None for d in decisions(quiet, n=50))
    assert quiet.drops == quiet.duplicates == quiet.reorders == 0


def test_per_link_overrides_take_precedence():
    injector = make_injector(
        drop_prob=0.0,
        links=(LinkFault(src=2, dst=3, drop_prob=1.0),))
    assert injector.rates_for(0, 1) == (0.0, 0.0, 0.0, 0.0)
    assert injector.rates_for(2, 3) == (1.0, 0.0, 0.0, 0.0)
    # Directed: the reverse link keeps global rates.
    assert injector.rates_for(3, 2) == (0.0, 0.0, 0.0, 0.0)
    decision = injector.decide(msg(2, 3))
    assert decision is not None and decision.drop


def test_reorder_and_delay_accumulate_extra_delay():
    injector = make_injector(reorder_prob=0.999, delay_prob=0.999)
    decision = injector.decide(msg())
    assert decision is not None and not decision.drop
    assert decision.extra_delay == pytest.approx(
        injector.reorder_delay + injector.delay_cycles)
    assert injector.reorders == 1


def test_fault_config_validates_probabilities():
    with pytest.raises(ValueError):
        FaultConfig(drop_prob=1.5)
    with pytest.raises(ValueError):
        FaultConfig(drop_prob=-0.1)
    with pytest.raises(ValueError):
        StallSpec(proc=0, at_us=-1.0, duration_us=10.0)


def test_enabled_property_reflects_any_fault_source():
    assert not FaultConfig().enabled
    assert FaultConfig(drop_prob=0.01).enabled
    assert FaultConfig(stalls=(StallSpec(0, 0.0, 1.0),)).enabled
    assert FaultConfig(links=(LinkFault(0, 1, dup_prob=0.5),)).enabled
    assert not FaultConfig(links=(LinkFault(0, 1),)).enabled


def test_stall_out_of_range_processor_rejected():
    from repro.core.machine import Machine
    config = MachineConfig(
        nprocs=2, network=NetworkConfig.ideal(),
        faults=FaultConfig(stalls=(StallSpec(proc=7, at_us=0.0,
                                             duration_us=1.0),)))
    with pytest.raises(ValueError):
        Machine(config, protocol="lh")


def test_stall_slows_the_stalled_node():
    """A mid-computation stall delays that worker by the stall length."""
    from repro.core.machine import Machine

    def run(stalls):
        config = MachineConfig(
            nprocs=2, network=NetworkConfig.ideal(),
            faults=FaultConfig(stalls=stalls))
        machine = Machine(config, protocol="lh")

        def worker(proc):
            yield from machine.nodes[proc].compute(10_000)

        return machine, machine.run(worker, app="stall-test")

    _m0, clean = run(())
    spec = StallSpec(proc=1, at_us=10.0, duration_us=100.0)
    machine, stalled = run((spec,))
    stall_cycles = machine.config.us_to_cycles(spec.duration_us)
    assert stalled.elapsed_cycles == pytest.approx(
        clean.elapsed_cycles + stall_cycles)
    assert machine.faults.stalls == 1
    assert machine.faults.stall_cycles == pytest.approx(stall_cycles)


# -- crash plan (node lifecycle tier) ----------------------------------

CRASH_DRAW = dict(crash_mttf_us=30_000.0, crash_mttr_us=8_000.0,
                  crash_horizon_us=300_000.0)


def test_crash_plan_same_seed_identical():
    a = make_injector(**CRASH_DRAW).crash_plan
    b = make_injector(**CRASH_DRAW).crash_plan
    assert a == b
    assert a, "horizon of 10 MTTFs should draw at least one crash"
    assert list(a) == sorted(a, key=lambda ev: (ev.at_us, ev.proc))


def test_crash_plan_independent_of_message_faults():
    """Enabling packet faults must not move the crash instants: the
    crash plan pre-draws from its own substreams."""
    alone = make_injector(**CRASH_DRAW).crash_plan
    mixed = make_injector(drop_prob=0.2, dup_prob=0.3,
                          reorder_prob=0.3, **CRASH_DRAW).crash_plan
    assert alone == mixed


def test_crash_plan_does_not_perturb_message_faults():
    drops_alone = [d is not None and d.drop
                   for d in decisions(make_injector(drop_prob=0.2))]
    drops_with_crashes = [
        d is not None and d.drop
        for d in decisions(make_injector(drop_prob=0.2, **CRASH_DRAW))]
    assert drops_alone == drops_with_crashes


def test_mttr_toggle_keeps_first_crash_instants():
    """Switching crash-recover to crash-stop consumes the same draws,
    so each node's *first* crash time is unchanged (after the first,
    a crash-stop node is dead and draws no more)."""
    recover = make_injector(**CRASH_DRAW).crash_plan
    stop = make_injector(crash_mttf_us=30_000.0, crash_mttr_us=0.0,
                         crash_horizon_us=300_000.0).crash_plan
    first_recover = {}
    for ev in recover:
        first_recover.setdefault(ev.proc, ev.at_us)
    assert all(ev.down_us is None for ev in stop)
    procs = [ev.proc for ev in stop]
    assert len(procs) == len(set(procs))  # at most one crash per node
    for ev in stop:
        assert ev.at_us == first_recover[ev.proc]


def test_crash_plan_outages_never_overlap_per_node():
    plan = make_injector(crash_mttf_us=5_000.0, crash_mttr_us=20_000.0,
                         crash_horizon_us=400_000.0).crash_plan
    by_proc = {}
    for ev in plan:
        by_proc.setdefault(ev.proc, []).append(ev)
    assert sum(len(v) > 1 for v in by_proc.values()), \
        "MTTF << MTTR must draw repeated crashes somewhere"
    for events in by_proc.values():
        for prev, nxt in zip(events, events[1:]):
            assert nxt.at_us > prev.at_us + prev.down_us


def test_explicit_and_drawn_crashes_merge():
    from repro.core.config import CrashSpec
    from repro.faults import CrashEvent
    explicit = CrashSpec(proc=1, at_us=5.0, down_us=10.0)
    plan = make_injector(crashes=(explicit,), **CRASH_DRAW).crash_plan
    assert CrashEvent(1, 5.0, 10.0) in plan
    assert len(plan) > 1


def test_crash_config_validation():
    from repro.core.config import CrashSpec
    with pytest.raises(ValueError):
        FaultConfig(crash_mttf_us=10_000.0)  # horizon required
    with pytest.raises(ValueError):
        CrashSpec(proc=0, at_us=0.0)  # workers spawn at t=0
    with pytest.raises(ValueError):
        CrashSpec(proc=0, at_us=10.0, down_us=0.0)
    with pytest.raises(ValueError):
        # Explicit crash processor out of the machine's range.
        make_injector(crashes=(CrashSpec(proc=9, at_us=10.0),))
    assert FaultConfig(
        crashes=(CrashSpec(proc=0, at_us=10.0),)).crash_enabled
    assert FaultConfig(**CRASH_DRAW).crash_enabled
    assert not FaultConfig().crash_enabled


def test_crash_spec_survives_config_round_trip():
    from repro.core.config import CrashSpec
    config = MachineConfig(
        nprocs=4,
        faults=FaultConfig(crashes=(CrashSpec(proc=1, at_us=50.0,
                                              down_us=100.0),),
                           **CRASH_DRAW))
    rebuilt = MachineConfig.from_dict(config.to_dict())
    assert rebuilt.faults.crashes == config.faults.crashes
    assert rebuilt.faults.crash_mttf_us == config.faults.crash_mttf_us
