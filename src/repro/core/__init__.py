"""Machine glue: configuration, nodes, metrics, the app API, runners."""

from repro.core.api import DsmApi
from repro.core.config import (MachineConfig, NetworkConfig,
                               OverheadConfig)
from repro.core.machine import Machine
from repro.core.metrics import NodeMetrics, RunResult
from repro.core.node import Node
from repro.core.runner import (run_app, run_protocols,
                               sequential_baseline, speedup_curve)

__all__ = [
    "DsmApi", "Machine", "MachineConfig", "NetworkConfig", "Node",
    "NodeMetrics", "OverheadConfig", "RunResult", "run_app",
    "run_protocols", "sequential_baseline", "speedup_curve",
]
