"""Named, independent random substreams.

Every stochastic consumer in the simulator (Ethernet backoff, fault
injection, transport jitter) draws from its own stream derived from
``(root_seed, name)`` by hashing, so

- the same seed + name always yields the same sequence (determinism),
- different names yield statistically independent sequences, and
- adding a new consumer (a new name) never perturbs an existing
  stream — unlike ad-hoc ``seed ^ 0x...`` XOR schemes where two
  consumers can collide or a reordering changes every draw.

Usage::

    from repro.core.rng import substream
    rng = substream(config.seed, "ethernet")       # random.Random
    drop = substream(config.seed, "faults.drop")
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "substream"]


def derive_seed(seed: int, name: str) -> int:
    """A 64-bit seed for the substream ``name`` of root ``seed``."""
    payload = f"{seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


def substream(seed: int, name: str) -> random.Random:
    """An independent ``random.Random`` for one named consumer."""
    return random.Random(derive_seed(seed, name))
