"""Per-node and machine-wide metrics.

These counters are the quantities the paper reports: message counts
(split into synchronization vs. data traffic), kilobytes of shared data
moved, access misses, diffs created, and where time went (computation,
lock acquisition, barrier waits, software overhead).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.net.message import Message, MsgKind


def json_safe(obj):
    """Best-effort conversion to JSON-serializable types (numpy
    scalars/arrays become python numbers/lists, tuples become lists,
    sets are sorted).  Idempotent, so a round-tripped value converts
    to itself — the property the lab cache relies on."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        return {str(key): json_safe(value)
                for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [json_safe(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((json_safe(item) for item in obj),
                      key=lambda x: (str(type(x)), str(x)))
    if hasattr(obj, "item") and hasattr(obj, "dtype"):  # numpy scalar
        try:
            return json_safe(obj.item())
        except (TypeError, ValueError):
            pass
    if hasattr(obj, "tolist"):  # numpy array
        return json_safe(obj.tolist())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return json_safe(dataclasses.asdict(obj))
    return repr(obj)


@dataclass
class NodeMetrics:
    """Counters for one simulated processor."""

    proc: int
    messages_sent: Counter = field(default_factory=Counter)
    data_bytes_sent: int = 0
    wire_bytes_sent: int = 0
    read_misses: int = 0
    write_misses: int = 0
    cold_misses: int = 0
    page_transfers: int = 0
    diffs_created: int = 0
    diff_words_created: int = 0
    diffs_applied: int = 0
    invalidations: int = 0
    lock_acquires: int = 0
    lock_local_acquires: int = 0
    lock_wait_cycles: float = 0.0
    barrier_waits: int = 0
    barrier_wait_cycles: float = 0.0
    compute_cycles: float = 0.0
    overhead_cycles: float = 0.0
    miss_wait_cycles: float = 0.0
    finish_time: float = 0.0

    def record_send(self, message: Message) -> None:
        self.messages_sent[message.kind] += 1
        self.data_bytes_sent += message.data_bytes
        self.wire_bytes_sent += message.size_bytes

    @property
    def total_messages(self) -> int:
        return sum(self.messages_sent.values())

    @property
    def sync_messages(self) -> int:
        return sum(count for kind, count in self.messages_sent.items()
                   if kind.is_synchronization)

    # -- serialization (repro.lab result cache) ------------------------

    def to_dict(self) -> dict:
        """JSON-ready dump; :meth:`from_dict` is the exact inverse."""
        data = dataclasses.asdict(self)
        data["messages_sent"] = {
            kind.value: count
            for kind, count in sorted(self.messages_sent.items(),
                                      key=lambda kv: kv[0].value)}
        return data

    @staticmethod
    def from_dict(data: dict) -> "NodeMetrics":
        data = dict(data)
        data["messages_sent"] = Counter(
            {MsgKind(kind): count
             for kind, count in data["messages_sent"].items()})
        return NodeMetrics(**data)


@dataclass
class RunResult:
    """Outcome of one simulated application run."""

    app: str
    protocol: str
    nprocs: int
    elapsed_cycles: float
    node_metrics: List[NodeMetrics]
    network_messages: int
    network_bytes: int
    network_contention_cycles: float
    app_result: object = None
    #: The run's metrics registry (repro.obs) — the documented stats
    #: schema behind the analysis drivers and ``repro stats``.
    registry: object = None

    @property
    def total_messages(self) -> int:
        return sum(m.total_messages for m in self.node_metrics)

    @property
    def sync_messages(self) -> int:
        return sum(m.sync_messages for m in self.node_metrics)

    @property
    def data_kbytes(self) -> float:
        return sum(m.data_bytes_sent for m in self.node_metrics) / 1024.0

    @property
    def access_misses(self) -> int:
        return sum(m.read_misses + m.write_misses
                   for m in self.node_metrics)

    @property
    def diffs_created(self) -> int:
        return sum(m.diffs_created for m in self.node_metrics)

    @property
    def lock_wait_cycles(self) -> float:
        return sum(m.lock_wait_cycles for m in self.node_metrics)

    @property
    def barrier_wait_cycles(self) -> float:
        return sum(m.barrier_wait_cycles for m in self.node_metrics)

    def messages_by_kind(self) -> Dict[MsgKind, int]:
        total: Counter = Counter()
        for metrics in self.node_metrics:
            total.update(metrics.messages_sent)
        return dict(total)

    # -- serialization (repro.lab result cache) ------------------------

    #: Bumped whenever the serialized layout changes; the lab cache
    #: refuses dumps from another schema generation.
    SCHEMA_VERSION = 1

    def to_dict(self) -> dict:
        """JSON-ready dump of the whole result, metrics registry
        included, so results can cross process boundaries and
        sessions (see docs/lab.md).  ``app_result`` goes through
        :func:`json_safe`; everything else round-trips exactly
        (JSON floats preserve the full double)."""
        return {
            "schema": RunResult.SCHEMA_VERSION,
            "app": self.app,
            "protocol": self.protocol,
            "nprocs": self.nprocs,
            "elapsed_cycles": self.elapsed_cycles,
            "node_metrics": [m.to_dict() for m in self.node_metrics],
            "network_messages": self.network_messages,
            "network_bytes": self.network_bytes,
            "network_contention_cycles":
                self.network_contention_cycles,
            "app_result": json_safe(self.app_result),
            "registry": (self.registry.dump()
                         if self.registry is not None else None),
        }

    @staticmethod
    def from_dict(data: dict) -> "RunResult":
        """Rebuild a result (and its readable metrics registry) from
        :meth:`to_dict` output."""
        schema = data.get("schema")
        if schema != RunResult.SCHEMA_VERSION:
            raise ValueError(
                f"unsupported RunResult schema {schema!r} "
                f"(expected {RunResult.SCHEMA_VERSION})")
        registry = None
        if data.get("registry") is not None:
            from repro.obs import MetricsRegistry
            registry = MetricsRegistry.from_dump(data["registry"])
        return RunResult(
            app=data["app"],
            protocol=data["protocol"],
            nprocs=data["nprocs"],
            elapsed_cycles=data["elapsed_cycles"],
            node_metrics=[NodeMetrics.from_dict(m)
                          for m in data["node_metrics"]],
            network_messages=data["network_messages"],
            network_bytes=data["network_bytes"],
            network_contention_cycles=
                data["network_contention_cycles"],
            app_result=data.get("app_result"),
            registry=registry,
        )

    # -- registry readers (repro.obs) ----------------------------------

    def _require_registry(self):
        if self.registry is None:
            raise ValueError(
                "this RunResult carries no metrics registry "
                "(constructed outside Machine.run)")
        return self.registry

    def metric_total(self, name: str) -> float:
        """Total of one registry metric across every series."""
        return self._require_registry().total(name)

    def metric_by(self, name: str, label: str) -> Dict[str, float]:
        """One registry metric's totals grouped by a label."""
        return self._require_registry().by_label(name, label)

    def registry_sync_messages(self) -> float:
        """Synchronization traffic per the registry (messages whose
        ``msg_type`` is a lock or barrier kind)."""
        from repro.obs import SYNC_MSG_TYPES
        by_type = self.metric_by("dsm.messages_total", "msg_type")
        return sum(count for kind, count in by_type.items()
                   if kind in SYNC_MSG_TYPES)

    def time_breakdown(self) -> Dict[str, float]:
        """Where processor time went, as fractions of total busy+wait
        time across all nodes (the paper's section 6.2 accounting:
        '84% of each processor's time was spent acquiring locks' for
        16-processor LH Cholesky).

        ``lock_wait``/``barrier_wait``/``miss_wait`` include the full
        stall, message latency and remote service included; ``compute``
        is application work; ``overhead`` is local software overhead
        (message handling and diff creation); ``other`` is whatever
        remains of each node's wall-clock (network wire time on the
        critical path, idle)."""
        total_wall = sum(m.finish_time for m in self.node_metrics)
        if total_wall <= 0:
            return {}
        parts = {
            "compute": sum(m.compute_cycles
                           for m in self.node_metrics),
            "lock_wait": sum(m.lock_wait_cycles
                             for m in self.node_metrics),
            "barrier_wait": sum(m.barrier_wait_cycles
                                for m in self.node_metrics),
            "miss_wait": sum(m.miss_wait_cycles
                             for m in self.node_metrics),
            "overhead": sum(m.overhead_cycles
                            for m in self.node_metrics),
        }
        fractions = {name: value / total_wall
                     for name, value in parts.items()}
        fractions["other"] = max(0.0, 1.0 - sum(fractions.values()))
        return fractions

    def speedup_over(self, sequential: "RunResult") -> float:
        if self.elapsed_cycles <= 0:
            raise ValueError("run did not advance simulated time")
        return sequential.elapsed_cycles / self.elapsed_cycles

    def summary(self) -> str:
        return (f"{self.app}/{self.protocol} on {self.nprocs} procs: "
                f"{self.elapsed_cycles:.0f} cycles, "
                f"{self.total_messages} msgs "
                f"({self.sync_messages} sync), "
                f"{self.data_kbytes:.1f} KB data, "
                f"{self.access_misses} misses")
