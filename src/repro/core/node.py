"""A simulated processor node.

A node owns the per-processor DSM state (page table, copysets, interval
log, diff store, vector clock), a CPU cost model, and the message
plumbing between the application process, the protocol handlers, and
the network.

CPU model
---------
Application code and incoming-message handlers share one processor.
Handlers behave like interrupts: they serialize among themselves
(``_handler_busy_until``) and their cycles are *stolen* from any
application computation in progress (``compute`` re-checks the stolen
cycle count until it has paid for interrupts that landed inside its
window).  This reproduces the paper's observation that per-message
software overhead directly slows the application down.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.core.config import MachineConfig
from repro.core.metrics import NodeMetrics
from repro.mem.copyset import CopysetTable
from repro.mem.intervals import DiffStore, IntervalLog
from repro.mem.pages import PageTable
from repro.mem.timestamps import VectorClock
from repro.net.message import Message, MsgKind
from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event


class Node:
    """One processor of the simulated DSM machine."""

    def __init__(self, machine, proc: int) -> None:
        self.machine = machine
        self.proc = proc
        self.sim: Simulator = machine.sim
        self.config: MachineConfig = machine.config
        self.metrics = NodeMetrics(proc=proc)
        # Observability: pre-bound registry children (repro.obs) and
        # the machine's tracer.  Every legacy NodeMetrics increment is
        # mirrored into the registry at the same site; the parity test
        # in tests/obs keeps the two accountings identical.
        self.ins = machine.obs.node_instruments(proc)
        self.tracer = machine.obs.tracer

        # DSM state.
        self.pagetable = PageTable(self.config.words_per_page)
        self.copysets = CopysetTable(proc)
        self.interval_log = IntervalLog()
        self.diff_store = DiffStore()
        self.vc = VectorClock.zero(self.config.nprocs)
        # Best known vector clock of every peer (for push filtering).
        # Observations are *deferred*: observe_peer_vc appends to the
        # pending list and peer_clock folds the batch in one
        # componentwise-max pass.  Max-merging is order-insensitive and
        # associative, so the folded clock is value-identical to eager
        # per-observation merges — but reads are rare (grant paths,
        # barrier pushes, checkpoints) while observations arrive with
        # every notice-carrying message, so the per-observation merge
        # cost collapses to a list append.
        self.peer_vc: Dict[int, VectorClock] = {
            p: VectorClock.zero(self.config.nprocs)
            for p in range(self.config.nprocs)}
        self._peer_vc_pending: List[List[VectorClock]] = [
            [] for _ in range(self.config.nprocs)]

        # CPU/interrupt model.  The overhead formula's constants are
        # pre-fetched: it runs twice per message (send + receive), and
        # the inlined arithmetic in _message_overhead keeps the exact
        # operation order of OverheadConfig.message_cycles.
        overhead = self.config.overhead
        self._oh_scale = overhead.scale
        self._oh_fixed = overhead.fixed_cycles
        self._oh_per_byte = overhead.per_byte_cycles
        self._oh_per_byte_lazy = (overhead.per_byte_cycles
                                  * overhead.lazy_per_byte_factor)
        self._handler_busy_until = 0.0
        self._interrupt_cycles = 0.0
        # Causal id of the message currently being dispatched; stamps
        # handler-context sends so traces can chain request->response
        # hops.  Only maintained while tracing is enabled.
        self._trace_cause: Optional[int] = None
        # Node lifecycle (repro.sim.lifecycle): while down, messages
        # that already cleared receive accounting are logged instead
        # of dispatched, and replayed in order at recovery.
        self._down = False
        self._crash_rx_log: List[Message] = []
        # Multithreading (the paper's future-work extension): several
        # application threads share this node; computation serializes
        # on the CPU while blocked threads overlap their communication.
        self.multithreaded = False
        self.cpu_resource = None

        # Request/reply correlation.
        self._pending_replies: Dict[int, Event] = {}

        # Filled in by the machine.
        self.protocol = None
        self.lock_manager = None
        self.barrier_manager = None

    # -- identity helpers -------------------------------------------------

    def page_owner(self, page: int) -> int:
        return self.machine.page_owner(page)

    def is_page_owner(self, page: int) -> bool:
        return self.page_owner(page) == self.proc

    def observe_peer_vc(self, proc: int, vc: VectorClock) -> None:
        """Remember the freshest vector clock seen from ``proc``.
        Deferred: the merge happens at the next :meth:`peer_clock`
        read (capped so the pending batch stays small)."""
        if proc != self.proc:
            pending = self._peer_vc_pending[proc]
            pending.append(vc)
            if len(pending) >= 64:
                self.peer_clock(proc)

    def peer_clock(self, proc: int) -> VectorClock:
        """Best known vector clock of ``proc``, folding any deferred
        observations first (one componentwise-max pass — same value as
        merging each observation eagerly)."""
        current = self.peer_vc[proc]
        pending = self._peer_vc_pending[proc]
        if pending:
            if len(pending) == 1:
                current = current.merged(pending[0])
            else:
                combined = tuple(map(max, current.components,
                                     *[vc.components for vc in pending]))
                if combined != current.components:
                    current = VectorClock._of(combined)
            del pending[:]
            self.peer_vc[proc] = current
        return current

    def advance_peer_clock(self, proc: int, vc: VectorClock) -> None:
        """Fold ``vc`` into ``proc``'s clock now (grant paths: the
        granter knows the requester is about to observe its clock)."""
        self.peer_vc[proc] = self.peer_clock(proc).merged(vc)

    def memory_footprint(self) -> Dict[str, int]:
        """Consistency-metadata sizes (what barrier GC reclaims)."""
        orphans = getattr(self.protocol, "orphan_notices", {})
        return {
            "interval_records": len(self.interval_log),
            "stored_diffs": len(self.diff_store),
            "orphan_notices": sum(len(v) for v in orphans.values()),
            "page_copies": len(self.pagetable),
        }

    # -- CPU model ---------------------------------------------------------

    def enable_multithreading(self) -> None:
        from repro.sim.resources import Resource
        self.multithreaded = True
        if self.cpu_resource is None:
            self.cpu_resource = Resource(self.sim, capacity=1,
                                         name=f"cpu-{self.proc}")

    def compute(self, cycles: float) -> Generator:
        """Application-context computation of ``cycles`` cycles, slowed
        down by any interrupt (handler) cycles that land inside it.
        On a multithreaded node, threads serialize on the CPU."""
        if cycles < 0:
            raise ValueError(f"negative compute: {cycles}")
        self.metrics.compute_cycles += cycles
        self.ins.compute_cycles.value += cycles
        if cycles == 0:
            return
        if self.multithreaded:
            yield self.cpu_resource.request()
        try:
            started = self.sim.now
            stolen_before = self._interrupt_cycles
            # Bare-number yields take the engine's allocation-free
            # delay fast path (same dispatch sequence as a Timeout).
            yield cycles
            paid = 0.0
            while True:
                stolen = self._interrupt_cycles - stolen_before
                if stolen <= paid:
                    break
                extra = stolen - paid
                paid = stolen
                yield extra
            if self.tracer:
                self.tracer.emit("cpu.compute", node=self.proc,
                                 started=started, cycles=cycles)
        finally:
            if self.multithreaded:
                self.cpu_resource.release()

    def app_charge(self, cycles: float) -> Generator:
        """Application-context protocol work (overhead, diff creation).
        Counted as overhead, not computation."""
        if cycles > 0:
            self.metrics.overhead_cycles += cycles
            self.ins.overhead_cycles.value += cycles
            yield cycles

    def handler_charge(self, cycles: float) -> float:
        """Occupy the handler (interrupt) context for ``cycles``;
        returns the completion time."""
        start = max(self.sim.now, self._handler_busy_until)
        end = start + cycles
        self._handler_busy_until = end
        self._interrupt_cycles += cycles
        self.metrics.overhead_cycles += cycles
        self.ins.overhead_cycles.value += cycles
        return end

    def stall(self, cycles: float) -> None:
        """Injected CPU stall (repro.faults): the processor is lost
        for ``cycles`` — in-progress computation pays for it like an
        interrupt, and pending handlers are pushed back — but it is
        *not* software overhead, so the paper's cost accounting is
        untouched."""
        if cycles < 0:
            raise ValueError(f"negative stall: {cycles}")
        now = self.sim.now
        self._handler_busy_until = max(now,
                                       self._handler_busy_until) + cycles
        self._interrupt_cycles += cycles

    # -- message costs -----------------------------------------------------

    def _message_overhead(self, message: Message) -> float:
        per_byte = (self._oh_per_byte_lazy if message.lazy
                    else self._oh_per_byte)
        return self._oh_scale * (self._oh_fixed
                                 + message.size_bytes * per_byte)

    def diff_creation_cost(self) -> float:
        return self.config.overhead.diff_cycles(self.config.words_per_page)

    # -- sending -----------------------------------------------------------

    def app_send(self, message: Message) -> Generator:
        """Send from application context: the sender pays its software
        overhead inline, then hands the message to the network."""
        self._stamp(message)
        self.metrics.record_send(message)
        self.ins.record_send(message)
        if self.tracer:
            self.tracer.emit("msg.send", msg=message.msg_id,
                             src=message.src,
                             dst=message.dst, kind=message.kind.value,
                             data_bytes=message.data_bytes,
                             context="app",
                             reply_to=message.reply_to)
        # app_charge inlined: one generator allocation per send saved.
        # The > 0 guard matches app_charge (the zero-overhead ablation
        # must not yield, or event counts change).
        cycles = self._message_overhead(message)
        if cycles > 0:
            self.metrics.overhead_cycles += cycles
            self.ins.overhead_cycles.value += cycles
            yield cycles
        self.machine.transmit(message)

    def handler_send(self, message: Message) -> float:
        """Send from handler (interrupt) context: overhead extends the
        handler-busy window and transmission starts when it ends."""
        self._stamp(message)
        self.metrics.record_send(message)
        self.ins.record_send(message)
        if self.tracer:
            self.tracer.emit("msg.send", msg=message.msg_id,
                             src=message.src,
                             dst=message.dst, kind=message.kind.value,
                             data_bytes=message.data_bytes,
                             context="handler",
                             reply_to=message.reply_to,
                             cause=self._trace_cause)
        ready = self.handler_charge(self._message_overhead(message))
        self.sim.schedule(ready - self.sim.now,
                          self.machine.transmit, message)
        return ready

    def _stamp(self, message: Message) -> None:
        if message.src != self.proc:
            raise SimulationError(
                f"node {self.proc} sending message with src={message.src}")
        message.lazy = self.protocol.is_lazy if self.protocol else False

    # -- request/reply correlation ------------------------------------------

    def expect_reply(self, request: Message) -> Event:
        """Register interest in a reply correlated to ``request``."""
        # Constant name: one f-string per request/reply pair showed up
        # in whole-run profiles; the correlating id lives in
        # _pending_replies and in the message itself.
        event = self.sim.event("reply")
        self._pending_replies[request.msg_id] = event
        return event

    def request_from_app(self, message: Message) -> Generator:
        """Send a request and wait for its reply; returns the reply."""
        reply_event = self.expect_reply(message)
        yield from self.app_send(message)
        reply = yield reply_event
        return reply

    def _resolve_reply(self, message: Message) -> bool:
        if message.reply_to is None:
            return False
        event = self._pending_replies.pop(message.reply_to, None)
        if event is None:
            raise SimulationError(
                f"unexpected reply {message} (no pending request)")
        if self.tracer:
            self.tracer.emit("sched.wake", node=self.proc,
                             kind="reply", cause=message.msg_id)
        event.succeed(message)
        return True

    # -- receiving -----------------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Called by the machine when the network delivers a message.
        Charges receive overhead in handler context, then dispatches."""
        if message.dst != self.proc:
            raise SimulationError(
                f"node {self.proc} received message for {message.dst}")
        if self.tracer:
            self.tracer.emit("msg.recv", msg=message.msg_id,
                             src=message.src,
                             dst=message.dst, kind=message.kind.value,
                             data_bytes=message.data_bytes)
        # _message_overhead + handler_charge + schedule inlined: this
        # runs once per received message.  Identical arithmetic and
        # accounting; the queue insert mirrors Simulator.schedule
        # exactly (same ``now + delay`` float arithmetic, same
        # sequence numbering).
        per_byte = (self._oh_per_byte_lazy if message.lazy
                    else self._oh_per_byte)
        cycles = self._oh_scale * (self._oh_fixed
                                   + message.size_bytes * per_byte)
        sim = self.sim
        now = sim.now
        busy = self._handler_busy_until
        start = now if now > busy else busy
        done = start + cycles
        self._handler_busy_until = done
        self._interrupt_cycles += cycles
        self.metrics.overhead_cycles += cycles
        self.ins.overhead_cycles.value += cycles
        delay = done - now
        sim._seq = seq = sim._seq + 1
        if delay == 0.0:
            sim._ready.append((seq, self._dispatch, (message,)))
        else:
            heappush(sim._queue,
                     (now + delay, seq, self._dispatch, (message,)))

    def _dispatch(self, message: Message) -> None:
        if self._down:
            self._crash_rx_log.append(message)
            return
        if self.tracer:
            self._trace_cause = message.msg_id
        if self._resolve_reply(message):
            return
        kind = message.kind
        if kind in (MsgKind.LOCK_REQ, MsgKind.LOCK_FWD,
                    MsgKind.LOCK_GRANT):
            self.lock_manager.handle(message)
        elif kind in (MsgKind.BARRIER_ARRIVE, MsgKind.BARRIER_DEPART):
            self.barrier_manager.handle(message)
        else:
            self.protocol.handle(message)

    def __repr__(self) -> str:
        return f"<Node {self.proc}>"
