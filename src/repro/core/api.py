"""Application-facing shared-memory API.

Applications run as generators and interact with the DSM through a
:class:`DsmApi` handle: region reads/writes on shared segments (which
fault at page granularity, exactly like the mprotect-based systems the
paper models), lock acquire/release, global barriers, and explicit
computation charging.

All blocking operations are generators — call them with ``yield from``:

    def worker(api, proc, nprocs):
        yield from api.acquire(0)
        value = yield from api.read(counter, 0)
        yield from api.write(counter, 0, value + 1)
        yield from api.release(0)
        yield from api.barrier(0)
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence, Union

import numpy as np

from repro.mem.addressing import Segment


class DsmApi:
    """Per-node handle applications use for every shared operation."""

    def __init__(self, node) -> None:
        self._node = node
        self.proc = node.proc
        self.nprocs = node.config.nprocs

    # -- shared data -----------------------------------------------------

    def read_region(self, segment: Segment, start: int,
                    end: int) -> Generator:
        """Read words [start, end) of ``segment``; returns a numpy copy.
        Faults (and pays for) any page that is not locally valid."""
        node = self._node
        protocol = node.protocol
        get_copy = node.pagetable.copies.get
        # No-miss fast path: a valid local copy means ensure_valid
        # would return without yielding (true for every protocol's
        # read side), so skip the generator machinery entirely.
        hit_ok = protocol.valid_copy_serves_reads
        # Single-page read (the common case for word and row
        # accesses): inline page arithmetic, one numpy slice copy, no
        # staging buffer.  The guard re-states page_ranges' bounds
        # check; anything it rejects falls through to the general path
        # (which raises the canonical IndexError).
        count = end - start
        if count <= 0 or start < 0 or end > segment.nwords:
            # Degenerate or bad range: page_ranges raises the canonical
            # IndexError for bad bounds and yields nothing when empty.
            for _ in segment.page_ranges(start, end):
                pass
            return np.empty(0, dtype=np.float64)
        wpp = segment.words_per_page
        page, lo = divmod(segment.base_word + start, wpp)
        hi = lo + count
        if hi <= wpp:
            copy = get_copy(page)
            if copy is None or not copy.valid or not hit_ok:
                yield from protocol.ensure_valid(page, for_write=False)
                copy = get_copy(page)
            return copy.values[lo:hi].copy()
        out = np.empty(count, dtype=np.float64)
        cursor = 0
        hi = wpp
        while True:
            copy = get_copy(page)
            if copy is None or not copy.valid or not hit_ok:
                yield from protocol.ensure_valid(page, for_write=False)
                copy = get_copy(page)
            chunk = hi - lo
            out[cursor:cursor + chunk] = copy.values[lo:hi]
            cursor += chunk
            if cursor == count:
                return out
            page += 1
            lo = 0
            hi = min(wpp, count - cursor)

    def write_region(self, segment: Segment, start: int, end: int,
                     values: Union[np.ndarray, Sequence[float], float]
                     ) -> Generator:
        """Write ``values`` into words [start, end) of ``segment``."""
        node = self._node
        protocol = node.protocol
        get_copy = node.pagetable.copies.get
        hit_ok = protocol.valid_copy_serves_writes
        if np.isscalar(values):
            values = np.full(end - start, float(values))
        else:
            values = np.asarray(values, dtype=np.float64)
            if len(values) != end - start:
                raise ValueError(
                    f"write of {len(values)} values into "
                    f"[{start},{end})")
        count = end - start
        if count <= 0 or start < 0 or end > segment.nwords:
            for _ in segment.page_ranges(start, end):
                pass
            return
        wpp = segment.words_per_page
        page, lo = divmod(segment.base_word + start, wpp)
        hi = lo + count
        if hi <= wpp:
            copy = get_copy(page)
            if copy is None or not copy.valid or not hit_ok:
                yield from protocol.ensure_valid(page, for_write=True)
                copy = get_copy(page)
            copy.values[lo:hi] = values
            protocol.record_write(page, lo, hi)
            return
        cursor = 0
        hi = wpp
        while True:
            copy = get_copy(page)
            if copy is None or not copy.valid or not hit_ok:
                yield from protocol.ensure_valid(page, for_write=True)
                copy = get_copy(page)
            chunk = hi - lo
            copy.values[lo:hi] = values[cursor:cursor + chunk]
            protocol.record_write(page, lo, hi)
            cursor += chunk
            if cursor == count:
                return
            page += 1
            lo = 0
            hi = min(wpp, count - cursor)

    def read(self, segment: Segment, index: int) -> Generator:
        """Read a single word."""
        value = yield from self.read_region(segment, index, index + 1)
        return float(value[0])

    def write(self, segment: Segment, index: int,
              value: float) -> Generator:
        """Write a single word."""
        yield from self.write_region(segment, index, index + 1,
                                     np.array([value]))

    def touch(self, segment: Segment, start: int,
              end: int) -> Generator:
        """Fault pages covering [start, end) in without reading data
        (used to model read-mostly scans cheaply)."""
        node = self._node
        protocol = node.protocol
        get_copy = node.pagetable.copies.get
        hit_ok = protocol.valid_copy_serves_reads
        for page, _lo, _hi in segment.page_ranges(start, end):
            copy = get_copy(page)
            if copy is None or not copy.valid or not hit_ok:
                yield from protocol.ensure_valid(page, for_write=False)

    # -- synchronization ------------------------------------------------------

    def acquire(self, lock_id: int) -> Generator:
        node = self._node
        started = node.sim.now
        yield from node.lock_manager.acquire(lock_id)
        waited = node.sim.now - started
        node.metrics.lock_wait_cycles += waited
        node.ins.lock_wait.observe(waited)
        if node.tracer:
            node.tracer.emit("sync.lock_acquired", lock=lock_id,
                             node=node.proc, wait_cycles=waited)

    def release(self, lock_id: int) -> Generator:
        yield from self._node.lock_manager.release(lock_id)

    def barrier(self, barrier_id: int) -> Generator:
        yield from self._node.barrier_manager.barrier(barrier_id)

    # -- computation --------------------------------------------------------------

    def compute(self, cycles: float) -> Generator:
        """Charge local computation time (slowed by message handling)."""
        yield from self._node.compute(cycles)

    @property
    def now(self) -> float:
        return self._node.sim.now

    @property
    def config(self):
        """The machine configuration (cycle conversions, seed)."""
        return self._node.config

    @property
    def tracer(self):
        """The run's tracer; truth-test before emitting."""
        return self._node.tracer
