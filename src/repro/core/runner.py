"""High-level runners: build a machine, run an application, compare.

The application contract (see :mod:`repro.apps.base`) is:

- ``app.setup(machine)`` allocates shared segments and returns an
  opaque shared-description object;
- ``app.worker(api, proc, shared)`` returns the generator each node
  runs;
- ``app.name`` labels results.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.api import DsmApi
from repro.core.config import MachineConfig
from repro.core.machine import Machine
from repro.core.metrics import RunResult


def run_app(app, config: MachineConfig, protocol: str = "lh",
            max_events: Optional[int] = None,
            protocol_options: Optional[dict] = None,
            lock_broadcast: bool = False,
            obs=None, sampler=None) -> RunResult:
    """Simulate ``app`` on a machine described by ``config``.

    ``obs`` optionally supplies a pre-built
    :class:`repro.obs.Observability` context (e.g. one carrying a JSONL
    trace sink); by default the machine creates its own.  ``sampler``
    optionally attaches a :class:`repro.obs.TimeseriesSampler` that
    records windowed telemetry as the run executes."""
    machine = Machine(config, protocol=protocol,
                      protocol_options=protocol_options,
                      lock_broadcast=lock_broadcast,
                      obs=obs, sampler=sampler)
    shared = app.setup(machine)

    def factory(proc: int):
        return app.worker(DsmApi(machine.nodes[proc]), proc, shared)

    result = machine.run(factory, max_events=max_events, app=app.name)
    app.finish(machine, shared, result)
    return result


def run_protocols(app_factory, config: MachineConfig,
                  protocols: Iterable[str],
                  max_events: Optional[int] = None
                  ) -> Dict[str, RunResult]:
    """Run a fresh instance of the app under each protocol."""
    return {name: run_app(app_factory(), config, protocol=name,
                          max_events=max_events)
            for name in protocols}


def sequential_baseline(app_factory, config: MachineConfig,
                        max_events: Optional[int] = None) -> RunResult:
    """The one-processor run used as the speedup denominator."""
    solo = config.replace(nprocs=1)
    return run_app(app_factory(), solo, protocol="lh",
                   max_events=max_events)


def speedup_curve(app_factory, config: MachineConfig, protocol: str,
                  proc_counts: List[int],
                  baseline: Optional[RunResult] = None
                  ) -> Dict[int, float]:
    """Speedups over the sequential run for each processor count."""
    if baseline is None:
        baseline = sequential_baseline(app_factory, config)
    curve = {}
    for nprocs in proc_counts:
        result = run_app(app_factory(),
                         config.replace(nprocs=nprocs),
                         protocol=protocol)
        curve[nprocs] = result.speedup_over(baseline)
    return curve
