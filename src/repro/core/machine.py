"""The simulated DSM machine: nodes + network + shared address space."""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Sequence

import numpy as np

from repro.core.config import MachineConfig
from repro.core.metrics import NodeMetrics, RunResult
from repro.core.node import Node
from repro.mem.addressing import AddressSpace, Segment
from repro.net import build_network
from repro.net.message import Message
from repro.obs import Observability
from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Event


class Machine:
    """A cluster of ``nprocs`` nodes running one DSM protocol.

    Typical use (the :mod:`repro.core.runner` helpers wrap this):

    >>> machine = Machine(MachineConfig(nprocs=4), protocol="lh")
    >>> seg = machine.allocate("data", nwords=1024)
    >>> machine.run(worker_factory)   # doctest: +SKIP
    """

    def __init__(self, config: MachineConfig, protocol: str = "lh",
                 protocol_options: Optional[dict] = None,
                 lock_broadcast: bool = False,
                 obs: Optional[Observability] = None,
                 sampler=None) -> None:
        from repro.protocols.registry import create_protocol
        from repro.sync.barriers import BarrierManager
        from repro.sync.locks import LockManager

        self.config = config
        self.protocol_name = protocol
        self.lock_broadcast = lock_broadcast
        self.sim = Simulator()
        # Observability: registry + tracer threaded through every
        # layer (sim, net, nodes, protocols, sync).  Callers may pass
        # their own context (e.g. with a JSONL trace sink attached).
        self.obs = obs if obs is not None else Observability()
        self.obs.bind_clock(lambda: self.sim.now)
        self.obs.registry.const_labels.update({
            "protocol": protocol,
            "network": config.network.kind,
            "nprocs": str(config.nprocs),
        })
        self.sim.attach_obs(self.obs)
        # Windowed telemetry (docs/observability.md): a
        # TimeseriesSampler rides along as a side channel like the
        # tracer — read-only, schedules nothing, and absent by default
        # so unsampled runs take the unmodified dispatch loops.
        self.sampler = sampler
        if sampler is not None:
            sampler.bind(self)
        self.network = build_network(self.sim, config)
        # Robustness layer (docs/robustness.md): with any fault
        # configured, the network gets a seeded injector and node
        # traffic is routed through the reliable transport; otherwise
        # both are skipped entirely so fault-free runs stay
        # bit-for-bit identical to a build without the subsystem.
        self.faults = None
        self.transport = None
        self.lifecycle = None
        if config.faults.enabled:
            from repro.faults import FaultInjector
            self.faults = FaultInjector(config, obs=self.obs)
            self.network.attach_faults(self.faults)
        if config.faults.enabled or config.transport.force:
            from repro.net.transport import ReliableTransport
            self.transport = ReliableTransport(
                self.sim, config, self.network, self._deliver,
                obs=self.obs, tracer=self.obs.tracer)
            self.network.attach(self.transport.on_network_delivery)
        else:
            self.network.attach(self._deliver)
        self.network.attach_obs(self.obs)
        self.address_space = AddressSpace(config.words_per_page)
        self._page_owner_override: Dict[int, int] = {}

        self.nodes: List[Node] = [Node(self, p)
                                  for p in range(config.nprocs)]
        for node in self.nodes:
            node.protocol = create_protocol(protocol, node,
                                            protocol_options)
            node.lock_manager = LockManager(node,
                                            broadcast=lock_broadcast)
            node.barrier_manager = BarrierManager(node)

        if self.faults is not None:
            self.faults.install_stalls(self)
        if self.faults is not None and config.faults.crash_enabled:
            from repro.sim.lifecycle import NodeLifecycleManager
            self.lifecycle = NodeLifecycleManager(
                self, self.faults, self.transport, self.obs)
            self.transport.lifecycle = self.lifecycle
            # Re-attach delivery with the NIC gate in front: packets
            # to a down node die here, before transport accounting.
            self.network.attach(
                self.lifecycle.gate(self.transport.on_network_delivery))
            self.lifecycle.install()

        self._worker_procs: Dict[int, List] = {}
        self._finished: List[Optional[float]] = [None] * config.nprocs
        self._app_results: List[object] = [None] * config.nprocs
        self._unfinished = config.nprocs
        # Completion flag for run(): replaced per run; run_until reads
        # its .triggered attribute instead of calling a stop predicate
        # once per dispatched event.
        self._done: Optional[Event] = None

    # -- address space ------------------------------------------------------

    def allocate(self, name: str, nwords: int,
                 init: Optional[np.ndarray] = None,
                 owner: str = "striped") -> Segment:
        """Allocate a shared segment and install its pages at their
        statically-assigned owners (cost-free initialization, standing
        in for the program's pre-parallel setup phase).

        ``owner`` is ``"striped"`` (pages round-robin across nodes),
        ``"block"`` (contiguous chunks), or an integer processor id.
        """
        segment = self.address_space.allocate(name, nwords)
        pages = list(segment.pages)
        if owner == "striped":
            assignment = {page: page % self.config.nprocs
                          for page in pages}
        elif owner == "block":
            per_node = -(-len(pages) // self.config.nprocs)
            assignment = {page: min(i // per_node,
                                    self.config.nprocs - 1)
                          for i, page in enumerate(pages)}
        elif isinstance(owner, int):
            if not 0 <= owner < self.config.nprocs:
                raise ValueError(f"owner {owner} out of range")
            assignment = {page: owner for page in pages}
        else:
            raise ValueError(f"bad owner spec: {owner!r}")
        self._page_owner_override.update(assignment)

        words_per_page = self.config.words_per_page
        if init is not None:
            init = np.asarray(init, dtype=np.float64)
            if len(init) != nwords:
                raise ValueError("init length must equal nwords")
        for page in pages:
            owner_node = self.nodes[assignment[page]]
            copy = owner_node.pagetable.install(page, valid=True)
            if init is not None:
                start = page * words_per_page - segment.base_word
                chunk = init[max(start, 0):start + words_per_page]
                copy.values[:len(chunk)] = chunk
            # Every node's copyset for a page always contains the owner
            # (the owner doubles as the page's directory).
            for node in self.nodes:
                node.copysets.add(page, assignment[page])
        return segment

    def page_owner(self, page: int) -> int:
        try:
            return self._page_owner_override[page]
        except KeyError:
            raise SimulationError(f"page {page} was never allocated")

    # -- locks / barriers -----------------------------------------------------

    def lock_owner(self, lock_id: int) -> int:
        return lock_id % self.config.nprocs

    def bind_lock(self, lock_id: int, segment: Segment,
                  start: Optional[int] = None,
                  end: Optional[int] = None) -> None:
        """Entry-consistency annotation (Midway-style): declare that
        ``segment[start:end)`` is the shared data guarded by
        ``lock_id``.  The 'ec' protocol moves exactly the bound pages'
        modifications with the lock grant; other protocols ignore
        bindings."""
        if not hasattr(self, "lock_bindings"):
            self.lock_bindings: Dict[int, set] = {}
        start = 0 if start is None else start
        end = segment.nwords if end is None else end
        pages = {page for page, _lo, _hi
                 in segment.page_ranges(start, end)}
        self.lock_bindings.setdefault(lock_id, set()).update(pages)

    def pages_bound_to(self, lock_id: int) -> frozenset:
        bindings = getattr(self, "lock_bindings", {})
        return frozenset(bindings.get(lock_id, ()))

    def barrier_master(self, barrier_id: int) -> int:
        return barrier_id % self.config.nprocs

    # -- message delivery ------------------------------------------------------

    def transmit(self, message: Message) -> None:
        """Node send entry point: reliable transport when the
        robustness layer is on, the raw network otherwise.  Looked up
        per call so taps on ``network.transmit`` (e.g.
        :func:`repro.analysis.timeline.attach_timeline`) keep
        working."""
        if self.transport is not None:
            self.transport.send(message)
        else:
            self.network.transmit(message)

    def _deliver(self, message: Message) -> None:
        self.nodes[message.dst].deliver(message)

    # -- execution ---------------------------------------------------------------

    def worker_processes(self, proc: int):
        """The application processes running on node ``proc`` (the
        lifecycle manager freezes these across a crash)."""
        return self._worker_procs.get(proc, ())

    def run(self, worker_factory: Callable[..., Generator],
            max_events: Optional[int] = None,
            app: str = "app",
            threads_per_proc: int = 1,
            allow_unfinished: bool = False) -> RunResult:
        """Run one application: ``worker_factory(proc)`` must return
        the generator to execute on each node.  With
        ``threads_per_proc > 1`` (the paper's multithreading
        extension), the factory is called as ``worker_factory(proc,
        thread)`` and each node runs that many threads, serializing
        computation but overlapping communication stalls.  Returns the
        aggregated :class:`RunResult` (``app_result`` is indexed
        ``proc * threads + thread``)."""
        if threads_per_proc < 1:
            raise ValueError("threads_per_proc must be >= 1")
        self.obs.registry.const_labels["app"] = app
        nworkers = self.config.nprocs * threads_per_proc
        self._finished = [None] * nworkers
        self._app_results = [None] * nworkers
        self._unfinished = nworkers
        self._worker_procs = {p: [] for p in range(self.config.nprocs)}
        if threads_per_proc > 1:
            for node in self.nodes:
                node.enable_multithreading()
            workers = [(proc, thread)
                       for proc in range(self.config.nprocs)
                       for thread in range(threads_per_proc)]
            for proc, thread in workers:
                generator = worker_factory(proc, thread)
                process = self.sim.spawn(
                    self._wrap_worker(proc * threads_per_proc + thread,
                                      generator),
                    name=f"worker-{proc}.{thread}")
                self._worker_procs[proc].append(process)
        else:
            for proc in range(self.config.nprocs):
                process = self.sim.spawn(
                    self._wrap_worker(proc, worker_factory(proc)),
                    name=f"worker-{proc}")
                self._worker_procs[proc].append(process)
        self._done = self.sim.event("all-workers-done")
        if (max_events is None and self.lifecycle is not None
                and any(ev.down_us is None
                        for ev in self.lifecycle.plan)):
            # A crash-stop plan never drains (peers probe the dead
            # node at the capped RTO forever): bound the run so it
            # fails loudly instead of spinning.
            max_events = 5_000_000
        self.sim.run_until(self._done, max_events=max_events)
        if self.sampler is not None:
            self.sampler.finish(self.sim.now)
        if not self._all_finished():
            if not allow_unfinished:
                unfinished = [i for i, t in enumerate(self._finished)
                              if t is None]
                raise SimulationError(
                    f"workers {unfinished} did not finish "
                    "(deadlock or event budget exceeded)")
            # Partial completion (crash-stop availability runs):
            # elapsed covers what actually ran; dead workers keep
            # finish_time's default and a None app_result.
            elapsed = self.sim.now
        else:
            elapsed = max(t for t in self._finished if t is not None)
        for proc, node in enumerate(self.nodes):
            times = [self._finished[proc * threads_per_proc + thread]
                     for thread in range(threads_per_proc)]
            if all(t is not None for t in times):
                node.metrics.finish_time = max(times)
        return RunResult(
            app=app,
            protocol=self.protocol_name,
            nprocs=self.config.nprocs,
            elapsed_cycles=elapsed,
            node_metrics=[node.metrics for node in self.nodes],
            network_messages=self.network.stats.messages,
            network_bytes=self.network.stats.bytes_sent,
            network_contention_cycles=(
                self.network.stats.contention_cycles),
            app_result=list(self._app_results),
            registry=self.obs.registry,
        )

    def _wrap_worker(self, proc: int,
                     worker: Generator) -> Generator:
        result = yield from worker
        if self._finished[proc] is None:
            self._unfinished -= 1
            if self._unfinished == 0 and self._done is not None:
                self._done.succeed()
        self._finished[proc] = self.sim.now
        self._app_results[proc] = result

    def _all_finished(self) -> bool:
        # O(1): run_all's stop callback runs once per dispatched event.
        return self._unfinished == 0

    def completion(self) -> tuple:
        """``(finished, total)`` worker counts from the last run —
        the availability study's completion rate under crash-stop."""
        done = sum(1 for t in self._finished if t is not None)
        return done, len(self._finished)

    # -- debugging helpers ---------------------------------------------------------

    def page_values(self, page: int, proc: int) -> np.ndarray:
        """A node's current view of a page (tests only)."""
        copy = self.nodes[proc].pagetable.get(page)
        if copy is None:
            raise KeyError(f"node {proc} has no copy of page {page}")
        return copy.values
