"""Architectural and cost-model configuration.

All simulated time is measured in *processor cycles* of the configured
CPU.  Network characteristics are specified in physical units
(bits/second, microseconds) and converted to cycles through the machine's
clock, so a processor-speed sweep (paper Table 4) automatically changes
the compute/communication ratio without touching the network model.

Every constant reconstructed from the OCR-damaged paper text is defined
here, once, with the reconstruction noted (see DESIGN.md section 2.2).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

# --- Paper defaults (reconstructed where the OCR dropped digits) -------

DEFAULT_CPU_MHZ = 40.0  # "4MHz RISC processors" -> 40 MHz (1993 era)
DEFAULT_PAGE_SIZE = 4096  # "496 byte pages" -> 4096
SMALL_PAGE_SIZE = 1024  # Table 5: "page size of 124 bytes" -> 1024
WORD_SIZE = 4  # 32-bit words
DEFAULT_MEMORY_LATENCY = 12  # cycles, as printed

ETHERNET_MBPS = 10.0  # "1-megabit Ethernet" -> 10 Mbit/s
ATM_MBPS = 100.0  # "1 MBit/sec cross-bar switch" -> 100 Mbit/s
GIGABIT_MBPS = 1000.0  # Table 2's "GBit ATM"

# Software overhead: "(1 + message length 1.5/4) processor cycles" at
# both ends of every message -> fixed ~1000 cycles (Peregrine-class RPC
# dispatch) plus 1.5 cycles per 4 bytes.
OVERHEAD_FIXED_CYCLES = 1000.0
OVERHEAD_PER_BYTE_CYCLES = 1.5 / 4.0
# "The lazy implementation's extra complexity is modeled by doubling the
# per-byte message overhead both at the sender and at the receiver."
LAZY_PER_BYTE_FACTOR = 2.0

DIFF_CYCLES_PER_WORD = 4.0  # "four cycles per word per page"

# Fixed protocol header per message.  The paper counts only shared data
# in message *lengths*; the header stands in for the minimum wire cost of
# a small control message.
MESSAGE_HEADER_BYTES = 64


@dataclass(frozen=True)
class NetworkConfig:
    """Physical network description.

    ``kind`` selects the contention model:

    - ``"ethernet"``: shared broadcast medium; at most one message in
      flight machine-wide, with optional collision/backoff penalties.
    - ``"atm"``: crossbar switch; a message occupies its source output
      port and destination input port, so disjoint pairs communicate
      concurrently.
    - ``"ideal"``: zero contention, zero wire time (unit tests).
    """

    kind: str = "atm"
    bandwidth_mbps: float = ATM_MBPS
    latency_us: float = 10.0
    collisions: bool = False
    backoff_slot_us: float = 51.2  # classic Ethernet slot time

    @property
    def bandwidth_bps(self) -> float:
        return self.bandwidth_mbps * 1e6

    @staticmethod
    def ethernet(collisions: bool = True,
                 bandwidth_mbps: float = ETHERNET_MBPS) -> "NetworkConfig":
        return NetworkConfig(kind="ethernet", bandwidth_mbps=bandwidth_mbps,
                             latency_us=5.0, collisions=collisions)

    @staticmethod
    def atm(bandwidth_mbps: float = ATM_MBPS) -> "NetworkConfig":
        return NetworkConfig(kind="atm", bandwidth_mbps=bandwidth_mbps,
                             latency_us=10.0)

    @staticmethod
    def ideal() -> "NetworkConfig":
        return NetworkConfig(kind="ideal", bandwidth_mbps=1e9,
                             latency_us=0.0)


@dataclass(frozen=True)
class OverheadConfig:
    """Per-message software cost model (paper section 5.3).

    ``scale`` implements Table 3's zero / normal / double sweep.
    """

    fixed_cycles: float = OVERHEAD_FIXED_CYCLES
    per_byte_cycles: float = OVERHEAD_PER_BYTE_CYCLES
    lazy_per_byte_factor: float = LAZY_PER_BYTE_FACTOR
    diff_cycles_per_word: float = DIFF_CYCLES_PER_WORD
    scale: float = 1.0

    def message_cycles(self, size_bytes: int, lazy: bool) -> float:
        """Software cost, in cycles, paid at *each* end of a message."""
        per_byte = self.per_byte_cycles
        if lazy:
            per_byte *= self.lazy_per_byte_factor
        return self.scale * (self.fixed_cycles + size_bytes * per_byte)

    def diff_cycles(self, words_per_page: int) -> float:
        """Cost of creating one diff ("per word per page")."""
        return self.scale * self.diff_cycles_per_word * words_per_page


@dataclass(frozen=True)
class MachineConfig:
    """A cluster of identical nodes joined by one network."""

    nprocs: int = 16
    cpu_mhz: float = DEFAULT_CPU_MHZ
    page_size: int = DEFAULT_PAGE_SIZE
    word_size: int = WORD_SIZE
    memory_latency_cycles: int = DEFAULT_MEMORY_LATENCY
    network: NetworkConfig = field(default_factory=NetworkConfig.atm)
    overhead: OverheadConfig = field(default_factory=OverheadConfig)
    seed: int = 1993
    # Garbage-collect consistency metadata (interval records, stored
    # diffs) every N global barrier episodes; 0 disables.  GC first
    # validates every cached page, so it trades messages for memory —
    # exactly the TreadMarks tradeoff.
    gc_barrier_interval: int = 0

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.page_size % self.word_size:
            raise ValueError("page_size must be a multiple of word_size")

    @property
    def words_per_page(self) -> int:
        return self.page_size // self.word_size

    @property
    def cycles_per_second(self) -> float:
        return self.cpu_mhz * 1e6

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.cycles_per_second

    def us_to_cycles(self, microseconds: float) -> float:
        return microseconds * 1e-6 * self.cycles_per_second

    def wire_cycles(self, size_bytes: int) -> float:
        """Transmission (serialization) time for a message, in cycles."""
        seconds = size_bytes * 8.0 / self.network.bandwidth_bps
        return self.seconds_to_cycles(seconds)

    def replace(self, **kwargs) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)
