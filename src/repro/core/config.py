"""Architectural and cost-model configuration.

All simulated time is measured in *processor cycles* of the configured
CPU.  Network characteristics are specified in physical units
(bits/second, microseconds) and converted to cycles through the machine's
clock, so a processor-speed sweep (paper Table 4) automatically changes
the compute/communication ratio without touching the network model.

Every constant reconstructed from the OCR-damaged paper text is defined
here, once, with the reconstruction noted (see DESIGN.md section 2.2).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Tuple

# --- Paper defaults (reconstructed where the OCR dropped digits) -------

DEFAULT_CPU_MHZ = 40.0  # "4MHz RISC processors" -> 40 MHz (1993 era)
DEFAULT_PAGE_SIZE = 4096  # "496 byte pages" -> 4096
SMALL_PAGE_SIZE = 1024  # Table 5: "page size of 124 bytes" -> 1024
WORD_SIZE = 4  # 32-bit words
DEFAULT_MEMORY_LATENCY = 12  # cycles, as printed

ETHERNET_MBPS = 10.0  # "1-megabit Ethernet" -> 10 Mbit/s
ATM_MBPS = 100.0  # "1 MBit/sec cross-bar switch" -> 100 Mbit/s
GIGABIT_MBPS = 1000.0  # Table 2's "GBit ATM"

# Software overhead: "(1 + message length 1.5/4) processor cycles" at
# both ends of every message -> fixed ~1000 cycles (Peregrine-class RPC
# dispatch) plus 1.5 cycles per 4 bytes.
OVERHEAD_FIXED_CYCLES = 1000.0
OVERHEAD_PER_BYTE_CYCLES = 1.5 / 4.0
# "The lazy implementation's extra complexity is modeled by doubling the
# per-byte message overhead both at the sender and at the receiver."
LAZY_PER_BYTE_FACTOR = 2.0

DIFF_CYCLES_PER_WORD = 4.0  # "four cycles per word per page"

# Fixed protocol header per message.  The paper counts only shared data
# in message *lengths*; the header stands in for the minimum wire cost of
# a small control message.
MESSAGE_HEADER_BYTES = 64


@dataclass(frozen=True)
class NetworkConfig:
    """Physical network description.

    ``kind`` selects the contention model:

    - ``"ethernet"``: shared broadcast medium; at most one message in
      flight machine-wide, with optional collision/backoff penalties.
    - ``"atm"``: crossbar switch; a message occupies its source output
      port and destination input port, so disjoint pairs communicate
      concurrently.
    - ``"ideal"``: zero contention, zero wire time (unit tests).
    """

    kind: str = "atm"
    bandwidth_mbps: float = ATM_MBPS
    latency_us: float = 10.0
    collisions: bool = False
    backoff_slot_us: float = 51.2  # classic Ethernet slot time

    @property
    def bandwidth_bps(self) -> float:
        return self.bandwidth_mbps * 1e6

    @staticmethod
    def ethernet(collisions: bool = True,
                 bandwidth_mbps: float = ETHERNET_MBPS) -> "NetworkConfig":
        return NetworkConfig(kind="ethernet", bandwidth_mbps=bandwidth_mbps,
                             latency_us=5.0, collisions=collisions)

    @staticmethod
    def atm(bandwidth_mbps: float = ATM_MBPS) -> "NetworkConfig":
        return NetworkConfig(kind="atm", bandwidth_mbps=bandwidth_mbps,
                             latency_us=10.0)

    @staticmethod
    def ideal() -> "NetworkConfig":
        return NetworkConfig(kind="ideal", bandwidth_mbps=1e9,
                             latency_us=0.0)


@dataclass(frozen=True)
class OverheadConfig:
    """Per-message software cost model (paper section 5.3).

    ``scale`` implements Table 3's zero / normal / double sweep.
    """

    fixed_cycles: float = OVERHEAD_FIXED_CYCLES
    per_byte_cycles: float = OVERHEAD_PER_BYTE_CYCLES
    lazy_per_byte_factor: float = LAZY_PER_BYTE_FACTOR
    diff_cycles_per_word: float = DIFF_CYCLES_PER_WORD
    scale: float = 1.0

    def message_cycles(self, size_bytes: int, lazy: bool) -> float:
        """Software cost, in cycles, paid at *each* end of a message."""
        per_byte = self.per_byte_cycles
        if lazy:
            per_byte *= self.lazy_per_byte_factor
        return self.scale * (self.fixed_cycles + size_bytes * per_byte)

    def diff_cycles(self, words_per_page: int) -> float:
        """Cost of creating one diff ("per word per page")."""
        return self.scale * self.diff_cycles_per_word * words_per_page


@dataclass(frozen=True)
class StallSpec:
    """One injected CPU stall: node ``proc`` loses its processor for
    ``duration_us`` starting at simulated time ``at_us``."""

    proc: int
    at_us: float
    duration_us: float

    def __post_init__(self) -> None:
        if self.at_us < 0 or self.duration_us < 0:
            raise ValueError("stall times must be non-negative")


@dataclass(frozen=True)
class CrashSpec:
    """One scheduled node crash: ``proc`` fails at simulated time
    ``at_us`` and, for crash-recover, restarts ``down_us`` later from
    a checkpoint of its state at the crash instant.  ``down_us=None``
    is a crash-stop: the node never returns (availability runs must
    then bound the simulation and report partial completion).

    ``at_us`` must be strictly positive so worker processes exist by
    the time the crash fires (they spawn at t=0)."""

    proc: int
    at_us: float
    down_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.proc < 0:
            raise ValueError("crash proc must be non-negative")
        if self.at_us <= 0:
            raise ValueError("crash at_us must be positive")
        if self.down_us is not None and self.down_us <= 0:
            raise ValueError(
                "crash down_us must be positive (None for crash-stop)")


@dataclass(frozen=True)
class LinkFault:
    """Per-link fault-rate overrides for the directed link
    ``src -> dst``.  ``None`` fields fall back to the global rates."""

    src: int
    dst: int
    drop_prob: "float | None" = None
    dup_prob: "float | None" = None
    reorder_prob: "float | None" = None
    delay_prob: "float | None" = None


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic fault-injection plan (see :mod:`repro.faults`).

    All probabilities are per network transmission.  Decisions are
    drawn from named substreams of ``seed`` (defaulting to the
    machine seed), so two runs with identical configuration inject
    the exact same faults, and enabling one fault class never
    perturbs another's stream.  The default (all rates zero, no
    stalls) disables the subsystem entirely: the machine then skips
    the reliable transport and behaves bit-for-bit like a fault-free
    build.
    """

    drop_prob: float = 0.0
    dup_prob: float = 0.0
    reorder_prob: float = 0.0
    delay_prob: float = 0.0
    delay_us: float = 100.0         # extra latency per delayed message
    reorder_delay_us: float = 300.0  # hold-back applied to reordered msgs
    stalls: "Tuple[StallSpec, ...]" = ()
    links: "Tuple[LinkFault, ...]" = ()
    seed: "int | None" = None       # fault substream seed (None: machine)
    # Node-lifecycle faults (crash-stop / crash-recover).  ``crashes``
    # is an explicit schedule; ``crash_mttf_us`` > 0 additionally draws
    # exponential failure times per node (mean ``crash_mttf_us``) up to
    # ``crash_horizon_us``, each paired with an exponential repair time
    # of mean ``crash_mttr_us`` (0 means the drawn crashes never
    # recover).  Both draws come from their own named substreams, so
    # enabling message-level faults never moves a crash and vice versa.
    crashes: "Tuple[CrashSpec, ...]" = ()
    crash_mttf_us: float = 0.0
    crash_mttr_us: float = 0.0
    crash_horizon_us: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "dup_prob", "reorder_prob",
                     "delay_prob"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1): {value}")
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        for name in ("crash_mttf_us", "crash_mttr_us",
                     "crash_horizon_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.crash_mttf_us and not self.crash_horizon_us:
            raise ValueError(
                "crash_mttf_us needs crash_horizon_us > 0: the crash "
                "plan is pre-drawn up to the horizon so it is a pure "
                "function of the seed, independent of run length")

    @property
    def enabled(self) -> bool:
        """Whether any fault source is configured."""
        if (self.drop_prob or self.dup_prob or self.reorder_prob
                or self.delay_prob or self.stalls
                or self.crash_enabled):
            return True
        return any(rate for link in self.links
                   for rate in (link.drop_prob, link.dup_prob,
                                link.reorder_prob, link.delay_prob))

    @property
    def crash_enabled(self) -> bool:
        """Whether any node-lifecycle fault is configured."""
        return bool(self.crashes or self.crash_mttf_us)

    def replace(self, **kwargs) -> "FaultConfig":
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class TransportConfig:
    """Reliable-transport tuning (see :mod:`repro.net.transport`).

    The retransmission timeout adapts to the measured round-trip time
    per stream (RFC 6298-style SRTT/RTTVAR, Karn's rule) so that the
    heavy, bursty contention of a shared Ethernet does not cause
    spurious retransmissions; before the first sample it falls back to
    ``rto_us`` plus the packet's own wire time.  The 10ms default is
    deliberately conservative (1993-era TCP started at 3 *seconds*):
    barrier episodes on the 10Mbit Ethernet routinely hold replies for
    several milliseconds, and a sweep showed tighter values retransmit
    spuriously (at 1ms, ~100 retransmissions per real drop; at 10ms,
    one for one).  Each consecutive
    expiry multiplies the timeout by ``rto_backoff`` (capped at
    ``rto_backoff ** max_backoff_exp``), and every arm is stretched by
    a multiplicative jitter of up to ``jitter_frac`` so synchronized
    losers do not retransmit in lockstep.

    ``rto_max_us`` is an *absolute* ceiling on the armed timeout,
    applied after the backoff multiplier but before jitter (so probes
    to a dead peer stay de-synchronized): no matter how far SRTT
    inflates or how many expiries accumulate, a sender probes a silent
    peer at least every ``rto_max_us * (1 + jitter_frac)``
    microseconds.  Without it a long-dead peer (see node crashes in
    :class:`FaultConfig`) could drive the interval unbounded and make
    recovery latency depend on how long the node happened to be down.
    The 2-second default mirrors deployed TCP maximums (RFC 6298
    permits anything >= 60s; BSD derivatives clamp far lower) scaled
    to simulated runs lasting single-digit seconds.

    ``force`` enables the transport even with no faults configured
    (testing only — the default keeps fault-free runs on the raw,
    zero-overhead path).
    """

    rto_us: float = 10000.0
    rto_backoff: float = 2.0
    max_backoff_exp: int = 6
    rto_max_us: float = 2_000_000.0
    ack_delay_us: float = 200.0
    jitter_frac: float = 0.1
    force: bool = False

    def __post_init__(self) -> None:
        if self.rto_us <= 0:
            raise ValueError("rto_us must be positive")
        if self.rto_backoff < 1.0:
            raise ValueError("rto_backoff must be >= 1")
        if self.rto_max_us < self.rto_us:
            raise ValueError("rto_max_us must be >= rto_us")


@dataclass(frozen=True)
class MachineConfig:
    """A cluster of identical nodes joined by one network."""

    nprocs: int = 16
    cpu_mhz: float = DEFAULT_CPU_MHZ
    page_size: int = DEFAULT_PAGE_SIZE
    word_size: int = WORD_SIZE
    memory_latency_cycles: int = DEFAULT_MEMORY_LATENCY
    network: NetworkConfig = field(default_factory=NetworkConfig.atm)
    overhead: OverheadConfig = field(default_factory=OverheadConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    transport: TransportConfig = field(default_factory=TransportConfig)
    seed: int = 1993
    # Garbage-collect consistency metadata (interval records, stored
    # diffs) every N global barrier episodes; 0 disables.  GC first
    # validates every cached page, so it trades messages for memory —
    # exactly the TreadMarks tradeoff.
    gc_barrier_interval: int = 0

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.page_size % self.word_size:
            raise ValueError("page_size must be a multiple of word_size")

    @property
    def words_per_page(self) -> int:
        return self.page_size // self.word_size

    @property
    def cycles_per_second(self) -> float:
        return self.cpu_mhz * 1e6

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.cycles_per_second

    def us_to_cycles(self, microseconds: float) -> float:
        return microseconds * 1e-6 * self.cycles_per_second

    def wire_cycles(self, size_bytes: int) -> float:
        """Transmission (serialization) time for a message, in cycles."""
        seconds = size_bytes * 8.0 / self.network.bandwidth_bps
        return self.seconds_to_cycles(seconds)

    def replace(self, **kwargs) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    # -- serialization (repro.lab run-spec fingerprinting) -------------

    def to_dict(self) -> dict:
        """JSON-ready nested dict of every field.  The canonical form
        behind :meth:`repro.lab.RunSpec.fingerprint`; keep it total —
        a field left out would make two different machines collide in
        the result cache."""
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "MachineConfig":
        """Inverse of :meth:`to_dict` (rebuilds the nested configs)."""
        data = dict(data)
        data["network"] = NetworkConfig(**data["network"])
        data["overhead"] = OverheadConfig(**data["overhead"])
        faults = dict(data["faults"])
        faults["stalls"] = tuple(StallSpec(**s)
                                 for s in faults.get("stalls", ()))
        faults["links"] = tuple(LinkFault(**l)
                                for l in faults.get("links", ()))
        faults["crashes"] = tuple(CrashSpec(**c)
                                  for c in faults.get("crashes", ()))
        data["faults"] = FaultConfig(**faults)
        data["transport"] = TransportConfig(**data["transport"])
        return MachineConfig(**data)
