"""Events and waitable primitives for the simulation kernel.

An :class:`Event` is a one-shot waitable: processes yield it to suspend
until some other party calls :meth:`Event.succeed`.  :class:`AllOf`
composes several events into one that fires when every child has fired.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Event:
    """One-shot synchronization point carrying an optional value."""

    __slots__ = ("sim", "_callbacks", "triggered", "value", "name")

    def __init__(self, sim, name: str = "") -> None:
        self.sim = sim
        self._callbacks: List[Callable[["Event"], None]] = []
        self.triggered = False
        self.value: Any = None
        self.name = name

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, waking every waiter at the current time."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        # Zero-delay schedule inlined (one wake per waiter per fire —
        # the busiest single call site in whole-run profiles).
        sim = self.sim
        ready = sim._ready
        seq = sim._seq
        for callback in callbacks:
            seq += 1
            ready.append((seq, callback, (self,)))
        sim._seq = seq
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs now if already triggered."""
        if self.triggered:
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._ready.append((seq, callback, (self,)))
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """Event that fires ``delay`` cycles after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        # Name rendered lazily in __repr__: Timeouts are allocated on
        # the hot path and the f-string cost is measurable.
        super().__init__(sim, name="timeout")
        self.delay = delay
        sim.schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<Timeout({self.delay:g}) {state}>"


class Timer(Timeout):
    """A cancellable timeout.

    The underlying heap entry cannot be removed, so :meth:`cancel`
    marks the timer dead and the scheduled fire becomes a no-op.  Used
    for protocol timers that are usually cancelled before expiry —
    retransmission timeouts, delayed acks (see
    :mod:`repro.net.transport`).
    """

    __slots__ = ("cancelled",)

    def __init__(self, sim, delay: float, value: Any = None) -> None:
        self.cancelled = False
        super().__init__(sim, delay, value)

    def cancel(self) -> None:
        """Prevent the timer from firing; idempotent, and a no-op if
        the timer already fired."""
        self.cancelled = True

    def _fire(self, value: Any) -> None:
        if not self.cancelled:
            self.succeed(value)


class AllOf(Event):
    """Fires once every child event has fired; value is their values."""

    __slots__ = ("_pending", "_events")

    def __init__(self, sim, events) -> None:
        super().__init__(sim, name="allof")
        self._events = list(events)
        self._pending = len(self._events)
        if self._pending == 0:
            # Nothing to wait for: fire on the next delta cycle.
            sim.schedule(0.0, lambda _=None: self.succeed([]))
            return
        for event in self._events:
            event.add_callback(self._child_done)

    def _child_done(self, _event: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.succeed([event.value for event in self._events])


class Condition:
    """Reusable broadcast signal: ``wait()`` returns a fresh Event that
    fires at the next :meth:`notify_all`."""

    __slots__ = ("sim", "_waiters")

    def __init__(self, sim) -> None:
        self.sim = sim
        self._waiters: List[Event] = []

    def wait(self) -> Event:
        event = Event(self.sim, name="condition-wait")
        self._waiters.append(event)
        return event

    def notify_all(self, value: Any = None) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)
