"""Shared-resource primitives built on the event kernel."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.sim.events import Event


class Resource:
    """FIFO resource with ``capacity`` concurrent holders.

    ``request()`` returns an event that fires when a slot is granted;
    call ``release()`` exactly once per granted request.
    """

    def __init__(self, sim, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiting: Deque[Event] = deque()
        # Aggregate statistics.
        self.total_waits = 0
        self.total_wait_cycles = 0.0

    def request(self) -> Event:
        event = Event(self.sim, name=f"{self.name}-request")
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed(self.sim.now)
        else:
            self.total_waits += 1
            event.value = self.sim.now  # stash request time for stats
            self._waiting.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._waiting:
            event = self._waiting.popleft()
            requested_at, event.value = event.value, None
            self.total_wait_cycles += self.sim.now - requested_at
            event.succeed(self.sim.now)
        else:
            self.in_use -= 1


class FifoStore:
    """Unbounded FIFO channel of items; ``get()`` waits when empty."""

    def __init__(self, sim, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.sim, name=f"{self.name}-get")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
