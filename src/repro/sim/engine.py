"""Discrete-event simulation engine.

The engine is a classic time-ordered event loop.  Model code runs as
*processes*: Python generators that yield waitables (:class:`Event`,
timeouts, other processes) and are resumed with the waitable's value.

Time is a float in whatever unit the model chooses; this project uses
processor cycles throughout (see :mod:`repro.core.config`).

Scheduling (docs/performance.md has the full design discussion): the
pending-event set is a two-tier bucketed queue rather than a single
global heap.  Zero-delay events — the majority in every profiled
workload (event.succeed wake-ups, process resume hops, same-cycle
handler chains) — go to an O(1) FIFO *ready bucket* holding events due
at the current time; only genuinely timed events (wire delays, compute
spans, protocol timers) pay for the heap.  The pop rule compares the
ready head's sequence number against the heap top when the heap top is
due *now*, which preserves the exact ``(time, seq)`` total order of the
single-heap scheduler — the golden-parity suite in ``tests/perf`` pins
elapsed times, event counts, and metric dumps bit for bit.  Timer
cancellation is lazy: a cancelled :class:`~repro.sim.events.Timer`
stays queued and its dispatch becomes a no-op, so cancellation never
pays a heap repair (see :class:`repro.sim.events.Timer`).

Performance notes: :meth:`Simulator.run` and :meth:`Simulator.run_all`
inline the dispatch loop rather than calling :meth:`Simulator.step` per
event, batch the event/queue-depth observability counters into local
ints flushed after the loop, and plain numeric yields take a fast path
that never allocates an :class:`Event`.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (Any, Callable, Deque, Generator, List, Optional,
                    Tuple)

from repro.sim.events import AllOf, Condition, Event, Timeout, Timer


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Process(Event):
    """A running generator.  As an :class:`Event`, it fires (with the
    generator's return value) when the generator finishes, so processes
    can be joined by yielding them."""

    __slots__ = ("generator", "_paused", "_deferred")

    def __init__(self, sim, generator: Generator, name: str = "") -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__",
                                                   "process"))
        self.generator = generator
        self._paused = False
        self._deferred: Optional[List[Optional[Event]]] = None
        tracer = sim.tracer
        if tracer is not None and tracer.sink.enabled:
            tracer.emit("sim.process_spawn", process=self.name)
        sim.schedule(0.0, self._resume, None)

    def pause(self) -> None:
        """Freeze the process: resumes that would fire while paused are
        deferred (the triggering waitable keeps its value) and replayed
        by :meth:`unpause`.  Used by the node lifecycle manager to halt
        a crashed node's workers without tearing down their
        continuations."""
        self._paused = True

    def unpause(self) -> None:
        """Thaw the process, rescheduling any resume deferred while it
        was paused at the current simulated time."""
        self._paused = False
        deferred, self._deferred = self._deferred, None
        if deferred:
            for waited in deferred:
                self.sim.schedule(0.0, self._resume, waited)

    def _resume(self, waited: Optional[Event]) -> None:
        if self._paused:
            if self._deferred is None:
                self._deferred = []
            self._deferred.append(waited)
            return
        value = waited.value if isinstance(waited, Event) else None
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            tracer = self.sim.tracer
            if tracer is not None and tracer.sink.enabled:
                tracer.emit("sim.process_done", process=self.name)
            self.succeed(stop.value)
            return
        if isinstance(target, Event):
            if target is self:
                raise SimulationError(
                    f"process {self.name!r} waits on itself")
            target.add_callback(self._resume)
        elif isinstance(target, (int, float)):
            # Fast path for plain numeric yields: schedule the same
            # two dispatches a Timeout would (fire, then the resume
            # callback) without allocating an Event.  Identical
            # sequence numbers, identical event counts.
            if target < 0:
                raise ValueError(f"negative timeout: {float(target)}")
            self.sim.schedule(float(target), self._delay_elapsed)
        elif isinstance(target, (list, tuple)):
            AllOf(self.sim, target).add_callback(self._resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; expected an "
                "Event, a delay, or a list of Events")

    def _delay_elapsed(self) -> None:
        """Second hop of the numeric-yield fast path (mirrors
        ``Timeout._fire`` + ``Event.succeed`` scheduling).  The
        zero-delay ``schedule`` branch is inlined: this runs once per
        compute span, which Jacobi-style apps issue per inner
        iteration."""
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        sim._ready.append((seq, self._resume, (None,)))


class Simulator:
    """Event loop: schedules callbacks and drives processes.

    Pending events live in two tiers sharing one sequence-number space:

    - ``_ready`` — deque of ``(seq, callback, args)`` due at ``now``
      (every zero-delay schedule lands here; O(1) append/popleft);
    - ``_queue`` — heap of ``(time, seq, callback, args)`` for timed
      events (``time`` may equal ``now`` when a positive delay rounds
      to zero in float arithmetic — the pop rule covers that corner).

    Invariant: every ready entry is due exactly at ``now`` (entries are
    appended at the current time and the loops never advance ``now``
    while the bucket is non-empty), so dispatch order is the global
    ``(time, seq)`` order even across the two tiers.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._ready: Deque[Tuple[int, Callable, Any]] = deque()
        self._queue: List[Tuple[float, int, Callable, Any]] = []
        self._seq = 0
        self.processed_events = 0
        # Observability (optional): bound registry *children* (one
        # attribute access + one addition per flush), attached by the
        # machine via attach_obs().  The tracer reference only feeds
        # the rare spawn/finish events — the dispatch loops never
        # touch it.
        self._obs_events = None
        self._obs_queue_depth = None
        self.tracer = None
        # Windowed telemetry (optional): a TimeseriesSampler attached
        # by the machine.  The unsampled loops below never touch it —
        # each run method checks it exactly once and hands off to
        # _run_sampled, so a machine without a sampler pays one `is
        # None` per *run call*, not per event.
        self._sampler = None

    def attach_obs(self, obs) -> None:
        """Emit event-dispatch and queue-depth metrics to ``obs``.
        Metric handles are resolved once here, never per event."""
        self._obs_events = obs.registry.get(
            "sim.events_dispatched_total").labels()
        self._obs_queue_depth = obs.registry.get(
            "sim.queue_depth_peak").labels()
        self.tracer = obs.tracer

    def attach_sampler(self, sampler) -> None:
        """Route subsequent runs through the sampled dispatch loop,
        closing a telemetry window whenever a heap pop advances the
        clock past ``sampler.next_boundary`` (see
        :mod:`repro.obs.timeseries`)."""
        self._sampler = sampler

    # -- scheduling ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of queued events across both tiers."""
        return len(self._ready) + len(self._queue)

    def schedule(self, delay: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` at ``now + delay``."""
        if delay == 0.0:
            self._seq = seq = self._seq + 1
            self._ready.append((seq, callback, args))
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue,
                       (self.now + delay, seq, callback, args))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def timer(self, delay: float, value: Any = None) -> Timer:
        """A cancellable timeout (see :class:`repro.sim.events.Timer`)."""
        return Timer(self, delay, value)

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def condition(self) -> Condition:
        return Condition(self)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    # -- execution -------------------------------------------------------

    def _flush_counters(self, dispatched: int, depth_peak: int) -> None:
        """Fold a loop's locally-batched counters into the shared
        bookkeeping (always runs, even when the loop raises)."""
        self.processed_events += dispatched
        if self._obs_events is not None and dispatched:
            self._obs_events.inc(dispatched)
        if self._obs_queue_depth is not None:
            self._obs_queue_depth.set_max(depth_peak)

    def step(self) -> bool:
        """Run the earliest pending event.  Returns False when empty.

        Convenience/debug entry point: the batch loops below inline
        this body instead of paying a method call per event."""
        ready = self._ready
        queue = self._queue
        if not ready and not queue:
            return False
        if self._obs_queue_depth is not None:
            self._obs_queue_depth.set_max(len(ready) + len(queue))
        if ready and not (queue and queue[0][0] == self.now
                          and queue[0][1] < ready[0][0]):
            _seq, callback, args = ready.popleft()
        else:
            time, _seq, callback, args = heapq.heappop(queue)
            if time < self.now:
                raise SimulationError("time went backwards")
            self.now = time
            sampler = self._sampler
            if sampler is not None and time >= sampler.next_boundary:
                sampler.advance_to(time)
        callback(*args)
        self.processed_events += 1
        if self._obs_events is not None:
            self._obs_events.inc()
        return True

    def _run_sampled(self, stop: Optional[Callable[[], bool]] = None,
                     until: Optional[float] = None,
                     max_events: Optional[int] = None) -> float:
        """The dispatch loop with telemetry-window sampling: identical
        pop rule, depth accounting, and stop conditions as the plain
        loops, plus a boundary check on every clock advance.  Windows
        close *before* the boundary-crossing callback runs, so an event
        at exactly ``k * window`` lands in window ``k`` regardless of
        the window size — the exact-merge property the timeseries tests
        pin.  ``processed_events`` is maintained inline (per event)
        rather than batch-flushed so the sampler's events probe is live
        mid-run; the finally block flushes only the obs children."""
        sampler = self._sampler
        ready = self._ready
        queue = self._queue
        pop = heapq.heappop
        popleft = ready.popleft
        dispatched = 0
        depth_peak = 0
        now = self.now
        try:
            while ready or queue:
                if stop is not None and stop():
                    break
                if until is not None:
                    earliest = now if ready else queue[0][0]
                    if earliest > until:
                        self.now = until
                        break
                if max_events is not None and dispatched >= max_events:
                    break
                depth = len(ready) + len(queue)
                if depth > depth_peak:
                    depth_peak = depth
                if ready and not (queue and queue[0][0] == now
                                  and queue[0][1] < ready[0][0]):
                    _seq, callback, args = popleft()
                else:
                    time, _seq, callback, args = pop(queue)
                    if time < now:
                        raise SimulationError("time went backwards")
                    self.now = now = time
                    if time >= sampler.next_boundary:
                        sampler.advance_to(time)
                callback(*args)
                dispatched += 1
                self.processed_events += 1
        finally:
            if self._obs_events is not None and dispatched:
                self._obs_events.inc(dispatched)
            if self._obs_queue_depth is not None:
                self._obs_queue_depth.set_max(depth_peak)
        return self.now

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed.  Returns the final time."""
        if self._sampler is not None:
            return self._run_sampled(until=until, max_events=max_events)
        ready = self._ready
        queue = self._queue
        pop = heapq.heappop
        popleft = ready.popleft
        dispatched = 0
        depth_peak = 0
        # ``now`` mirrors self.now in a local (an attribute read per
        # dispatched event otherwise); callbacks never advance time —
        # only the heap pops below do — so the mirror cannot go stale.
        now = self.now
        try:
            while ready or queue:
                if until is not None:
                    earliest = now if ready else queue[0][0]
                    if earliest > until:
                        self.now = until
                        break
                if max_events is not None and dispatched >= max_events:
                    break
                depth = len(ready) + len(queue)
                if depth > depth_peak:
                    depth_peak = depth
                if ready and not (queue and queue[0][0] == now
                                  and queue[0][1] < ready[0][0]):
                    _seq, callback, args = popleft()
                else:
                    time, _seq, callback, args = pop(queue)
                    if time < now:
                        raise SimulationError("time went backwards")
                    self.now = now = time
                callback(*args)
                dispatched += 1
        finally:
            self._flush_counters(dispatched, depth_peak)
        return self.now

    def run_process(self, process: Process,
                    max_events: Optional[int] = None) -> Any:
        """Run until ``process`` completes; returns its return value."""
        if self._sampler is not None:
            self._run_sampled(stop=lambda: process.triggered,
                              max_events=max_events)
            if not process.triggered:
                raise SimulationError(
                    f"process {process.name!r} did not finish "
                    f"(deadlock or max_events={max_events} exceeded)")
            return process.value
        ready = self._ready
        queue = self._queue
        pop = heapq.heappop
        popleft = ready.popleft
        dispatched = 0
        depth_peak = 0
        # Same loop as run_all with the stop predicate inlined to a
        # plain attribute read (the lambda-per-event version showed up
        # in whole-run profiles).
        now = self.now
        try:
            while (ready or queue) and not process.triggered:
                if max_events is not None and dispatched >= max_events:
                    break
                depth = len(ready) + len(queue)
                if depth > depth_peak:
                    depth_peak = depth
                if ready and not (queue and queue[0][0] == now
                                  and queue[0][1] < ready[0][0]):
                    _seq, callback, args = popleft()
                else:
                    time, _seq, callback, args = pop(queue)
                    if time < now:
                        raise SimulationError("time went backwards")
                    self.now = now = time
                callback(*args)
                dispatched += 1
        finally:
            self._flush_counters(dispatched, depth_peak)
        if not process.triggered:
            raise SimulationError(
                f"process {process.name!r} did not finish "
                f"(deadlock or max_events={max_events} exceeded)")
        return process.value

    def run_until(self, event: Event,
                  max_events: Optional[int] = None) -> float:
        """Run until ``event`` triggers, the queue drains, or
        ``max_events`` have been processed.  Returns the final time.

        Same loop as :meth:`run_process` with the stop condition as a
        plain attribute read — a callback-based stop predicate costs a
        Python call per dispatched event."""
        if self._sampler is not None:
            return self._run_sampled(stop=lambda: event.triggered,
                                     max_events=max_events)
        ready = self._ready
        queue = self._queue
        pop = heapq.heappop
        popleft = ready.popleft
        dispatched = 0
        depth_peak = 0
        now = self.now
        try:
            while (ready or queue) and not event.triggered:
                if max_events is not None and dispatched >= max_events:
                    break
                depth = len(ready) + len(queue)
                if depth > depth_peak:
                    depth_peak = depth
                if ready and not (queue and queue[0][0] == now
                                  and queue[0][1] < ready[0][0]):
                    _seq, callback, args = popleft()
                else:
                    time, _seq, callback, args = pop(queue)
                    if time < now:
                        raise SimulationError("time went backwards")
                    self.now = now = time
                callback(*args)
                dispatched += 1
        finally:
            self._flush_counters(dispatched, depth_peak)
        return self.now

    def run_all(self, stop: Optional[Callable[[], bool]] = None,
                max_events: Optional[int] = None) -> float:
        if self._sampler is not None:
            return self._run_sampled(stop=stop, max_events=max_events)
        ready = self._ready
        queue = self._queue
        pop = heapq.heappop
        popleft = ready.popleft
        dispatched = 0
        depth_peak = 0
        now = self.now
        try:
            while ready or queue:
                if stop is not None and stop():
                    break
                if max_events is not None and dispatched >= max_events:
                    break
                depth = len(ready) + len(queue)
                if depth > depth_peak:
                    depth_peak = depth
                if ready and not (queue and queue[0][0] == now
                                  and queue[0][1] < ready[0][0]):
                    _seq, callback, args = popleft()
                else:
                    time, _seq, callback, args = pop(queue)
                    if time < now:
                        raise SimulationError("time went backwards")
                    self.now = now = time
                callback(*args)
                dispatched += 1
        finally:
            self._flush_counters(dispatched, depth_peak)
        return self.now
