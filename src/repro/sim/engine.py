"""Discrete-event simulation engine.

The engine is a classic time-ordered event loop.  Model code runs as
*processes*: Python generators that yield waitables (:class:`Event`,
timeouts, other processes) and are resumed with the waitable's value.

Time is a float in whatever unit the model chooses; this project uses
processor cycles throughout (see :mod:`repro.core.config`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import AllOf, Condition, Event, Timeout, Timer


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Process(Event):
    """A running generator.  As an :class:`Event`, it fires (with the
    generator's return value) when the generator finishes, so processes
    can be joined by yielding them."""

    __slots__ = ("generator",)

    def __init__(self, sim, generator: Generator, name: str = "") -> None:
        super().__init__(sim, name=name or getattr(generator, "__name__",
                                                   "process"))
        self.generator = generator
        sim.schedule(0.0, self._resume, None)

    def _resume(self, waited: Optional[Event]) -> None:
        value = waited.value if isinstance(waited, Event) else None
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if isinstance(target, Process) and target is self:
            raise SimulationError(f"process {self.name!r} waits on itself")
        if isinstance(target, Event):
            target.add_callback(self._resume)
        elif isinstance(target, (int, float)):
            Timeout(self.sim, float(target)).add_callback(self._resume)
        elif isinstance(target, (list, tuple)):
            AllOf(self.sim, target).add_callback(self._resume)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; expected an "
                "Event, a delay, or a list of Events")


class Simulator:
    """Event loop: schedules callbacks and drives processes."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callable, Any]] = []
        self._sequence = itertools.count()
        self.processed_events = 0
        # Observability (optional): bound registry children, attached
        # by the machine via attach_obs().
        self._obs_events = None
        self._obs_queue_depth = None

    def attach_obs(self, obs) -> None:
        """Emit event-dispatch and queue-depth metrics to ``obs``."""
        self._obs_events = obs.registry.get(
            "sim.events_dispatched_total")
        self._obs_queue_depth = obs.registry.get("sim.queue_depth_peak")

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        heapq.heappush(self._queue,
                       (self.now + delay, next(self._sequence),
                        callback, args))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def timer(self, delay: float, value: Any = None) -> Timer:
        """A cancellable timeout (see :class:`repro.sim.events.Timer`)."""
        return Timer(self, delay, value)

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def condition(self) -> Condition:
        return Condition(self)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Run the earliest pending event.  Returns False when empty."""
        if not self._queue:
            return False
        if self._obs_queue_depth is not None:
            self._obs_queue_depth.set_max(len(self._queue))
        time, _seq, callback, args = heapq.heappop(self._queue)
        if time < self.now:
            raise SimulationError("time went backwards")
        self.now = time
        callback(*args)
        self.processed_events += 1
        if self._obs_events is not None:
            self._obs_events.inc()
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed.  Returns the final time."""
        processed = 0
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        return self.now

    def run_process(self, process: Process,
                    max_events: Optional[int] = None) -> Any:
        """Run until ``process`` completes; returns its return value."""
        self.run_all(lambda: process.triggered, max_events=max_events)
        if not process.triggered:
            raise SimulationError(
                f"process {process.name!r} did not finish "
                f"(deadlock or max_events={max_events} exceeded)")
        return process.value

    def run_all(self, stop: Optional[Callable[[], bool]] = None,
                max_events: Optional[int] = None) -> float:
        processed = 0
        while self._queue:
            if stop is not None and stop():
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        return self.now
