"""Discrete-event simulation kernel (events, processes, resources)."""

from repro.sim.engine import Process, SimulationError, Simulator
from repro.sim.events import AllOf, Condition, Event, Timeout, Timer
from repro.sim.resources import FifoStore, Resource

__all__ = [
    "AllOf", "Condition", "Event", "FifoStore", "Process", "Resource",
    "SimulationError", "Simulator", "Timeout", "Timer",
]
