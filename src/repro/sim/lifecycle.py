"""Node crash/recovery lifecycle (the robustness layer's fault tier
above packet faults — docs/robustness.md).

Crash model: **crash-stop / crash-recover with checkpoint at the
crash instant**.  When a node's scheduled crash fires, the manager

1. freezes the node's application workers (their deferred resumes are
   queued by :meth:`repro.sim.engine.Process.pause`),
2. serializes the node's entire DSM state — page copies, twins,
   vector clocks, interval log, stored diffs, copysets, protocol
   queues — into an RCKP checkpoint blob
   (:func:`repro.mem.checkpoint.checkpoint_node`) plus plain-dict
   snapshots of the sync layer (lock tokens/queues, barrier
   episodes), and
3. wipes the live state in place, so the node holds nothing the
   checkpoint does not.

While down, the node's NIC is dead: every packet addressed to it is
dropped at the delivery gate (counted in
``faults.crash_dropped_packets_total`` so the conservation invariant
extends to ``received + drops + crash_dropped == sent + dups``), and
the reliable transport neither transmits nor backs off on its behalf.
Messages that had already cleared receive-overhead accounting before
the crash land in the node's receive log instead of dispatching —
pessimistic message logging, replayed in order after restore so no
write notice or grant is lost.  Packets already in flight *from* the
crashed node still deliver (the wire does not know the sender died).

Recovery restores the checkpoint into the same objects (paused worker
continuations hold references to page copies and lock records, so
identity must survive the round trip), charges the whole outage as
stolen interrupt cycles (in-progress computation pays for the
downtime), replays the receive log, resets the transport sessions
touching the node — peers' capped-backoff retransmissions bridge the
outage — and unfreezes the workers.  A crash with no recovery time is
crash-stop: the node stays dark and the run completes partially
(``Machine.run(allow_unfinished=True)``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.mem.checkpoint import checkpoint_node, restore_node, wipe_node
from repro.sim.engine import SimulationError


class NodeLifecycleManager:
    """Schedules the injector's crash plan and coordinates the
    checkpoint/wipe/restore cycle across mem, sync, and transport."""

    def __init__(self, machine, injector, transport, obs) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.config = machine.config
        self.plan = injector.crash_plan
        self.transport = transport
        self.tracer = obs.tracer
        self._down: List[bool] = [False] * machine.config.nprocs
        # proc -> (RCKP blob, lock snapshot, barrier snapshot).
        self._checkpoints: Dict[int, Tuple[bytes, dict, dict]] = {}
        self._crash_time: Dict[int, float] = {}
        if self.plan and not machine.nodes[0].protocol.supports_checkpoint:
            raise SimulationError(
                f"protocol {machine.protocol_name!r} does not support "
                "crash checkpointing (supports_checkpoint is False); "
                "crash faults require one of the interval-based "
                "protocols")
        from repro.obs import install_robustness
        registry = obs.registry
        install_robustness(registry)
        self._obs = {
            "crashes": registry.get("faults.crashes_total").labels(),
            "crash_dropped": registry.get(
                "faults.crash_dropped_packets_total").labels(),
            "ckpt_bytes": registry.get(
                "faults.crash_checkpoint_bytes").labels(),
            "recoveries": registry.get(
                "faults.recoveries_total").labels(),
            "outage": registry.get(
                "faults.recovery_outage_cycles").labels(),
            "replayed": registry.get(
                "faults.recovery_replayed_total").labels(),
        }

    def install(self) -> None:
        """Schedule every planned crash (absolute times from t=0)."""
        for ev in self.plan:
            self.sim.schedule(self.config.us_to_cycles(ev.at_us),
                              self._crash, ev)

    def is_down(self, proc: int) -> bool:
        return self._down[proc]

    def any_down(self) -> bool:
        return any(self._down)

    def gate(self, deliver: Callable) -> Callable:
        """Wrap the network delivery callback: packets addressed to a
        down node die at its NIC (in-flight packets *from* a down node
        still deliver — the wire does not know)."""
        down = self._down
        dropped = self._obs["crash_dropped"]

        def gated(packet) -> None:
            if down[packet.dst]:
                dropped.inc()
                return
            deliver(packet)

        return gated

    # -- crash ----------------------------------------------------------

    def _crash(self, ev) -> None:
        proc = ev.proc
        if self._down[proc]:
            # Overlapping schedule entries (an explicit spec landing
            # inside a drawn outage): the node is already dead; the
            # later event — and its recovery — is ignored.
            return
        node = self.machine.nodes[proc]
        for process in self.machine.worker_processes(proc):
            process.pause()
        blob = checkpoint_node(node)
        self._checkpoints[proc] = (blob,
                                   node.lock_manager.checkpoint_state(),
                                   node.barrier_manager.checkpoint_state())
        wipe_node(node)
        node._down = True
        self._down[proc] = True
        self._crash_time[proc] = self.sim.now
        self._obs["crashes"].inc()
        self._obs["ckpt_bytes"].observe(len(blob))
        down_cycles = (None if ev.down_us is None
                       else self.config.us_to_cycles(ev.down_us))
        if self.tracer:
            self.tracer.emit("node.crash", node=proc,
                             checkpoint_bytes=len(blob),
                             down_cycles=down_cycles,
                             crash_stop=ev.down_us is None)
        if down_cycles is not None:
            self.sim.schedule(down_cycles, self._recover, proc)

    # -- recovery -------------------------------------------------------

    def _recover(self, proc: int) -> None:
        node = self.machine.nodes[proc]
        blob, locks, barriers = self._checkpoints.pop(proc)
        restore_node(node, blob)
        node.lock_manager.restore_state(locks)
        node.barrier_manager.restore_state(barriers)
        outage = self.sim.now - self._crash_time.pop(proc)
        # The outage is stolen CPU, like one giant interrupt: any
        # computation straddling the crash repays it through the
        # stolen-cycles loop.  The handler window is NOT pushed —
        # handler_charge maxes against now on the next message anyway,
        # and pushing both would bill the outage twice.
        node._interrupt_cycles += outage
        node._down = False
        self._down[proc] = False
        # Replay the receive log in arrival order (write-notice and
        # grant replay): these messages already paid their receive
        # overhead before the crash, so they re-enter at _dispatch.
        replayed = len(node._crash_rx_log)
        for message in node._crash_rx_log:
            self.sim.schedule(0.0, node._dispatch, message)
        node._crash_rx_log.clear()
        self.transport.on_node_recovered(proc)
        for process in self.machine.worker_processes(proc):
            process.unpause()
        self._obs["recoveries"].inc()
        self._obs["outage"].observe(outage)
        self._obs["replayed"].inc(replayed)
        if self.tracer:
            self.tracer.emit("node.recover", node=proc,
                             outage_cycles=outage, replayed=replayed)
