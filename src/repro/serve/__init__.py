"""Open-loop serving workloads on the simulated DSM (docs/serving.md).

The paper's kernels are closed loops: each processor computes, hits a
barrier, repeats.  A *service* is open-loop — requests arrive on a
clock the server does not control, so queueing delay compounds and the
latency tail, not the mean, is what capacity planning cares about.
This package generates those request streams; the DSM side lives in
:mod:`repro.apps.kvstore` and the analysis in
:mod:`repro.analysis.serving`.
"""

from repro.serve.workload import (ARRIVAL_MODES, SERVE_APP_PARAMS,
                                  Request, generate_requests,
                                  node_schedules, validate_workload,
                                  zipf_cdf)

__all__ = [
    "ARRIVAL_MODES", "Request", "SERVE_APP_PARAMS",
    "generate_requests", "node_schedules", "validate_workload",
    "zipf_cdf",
]
