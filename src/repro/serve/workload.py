"""Seeded open-loop load generator for the serving workload.

Produces a deterministic request schedule from four independent
substreams of the machine seed (:func:`repro.core.rng.substream`), so
the same ``(seed, parameters)`` pair yields byte-identical schedules
in every process — the lab's cache keys and the cross-process
determinism property test both depend on that.

Model:

- **key popularity** — Zipfian with exponent ``s`` over ``nkeys``
  keys (``s = 0`` degenerates to uniform).  Sampling is inverse-CDF
  via :func:`bisect`, so one uniform draw per request.
- **arrivals** — open loop: request *i* arrives at a scheduled
  simulated time whether or not request *i-1* has finished.  Poisson
  (exponential inter-arrival, the memoryless default) or fixed-rate
  (exact ``1/rate`` spacing, for worst-case-free baselines).
- **clients** — ``nclients`` logical clients (millions are fine; a
  client is just an id) multiplexed onto the node processes by
  ``client mod nprocs``, which fixes each request's serving node.
- **read/write mix** — each request is a ``get`` with probability
  ``read_fraction``, else a ``put``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.rng import substream

#: Supported inter-arrival processes.
ARRIVAL_MODES = ("poisson", "fixed")


@dataclass(frozen=True)
class Request:
    """One client request, scheduled before the simulation starts."""

    req_id: int       # global arrival order (ties broken by id)
    client: int       # logical client; client % nprocs = serving node
    key: int          # key index in [0, nkeys)
    op: str           # "get" | "put"
    arrival_us: float  # scheduled arrival, microseconds of sim time


def validate_workload(rate_rps: float, read_fraction: float,
                      zipf_s: float, nkeys: int = 1,
                      requests: int = 1, nclients: int = 1,
                      arrival: str = "poisson") -> None:
    """Reject nonsense parameters with actionable messages (the CLI
    validators reuse these bounds)."""
    if not rate_rps > 0:
        raise ValueError(
            f"arrival rate must be > 0 requests/s, got {rate_rps}")
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError(
            f"read fraction must be within [0, 1], got "
            f"{read_fraction}")
    if zipf_s < 0:
        raise ValueError(
            f"Zipf exponent must be >= 0, got {zipf_s}")
    if nkeys < 1:
        raise ValueError(f"need at least one key, got {nkeys}")
    if requests < 1:
        raise ValueError(
            f"need at least one request, got {requests}")
    if nclients < 1:
        raise ValueError(
            f"need at least one client, got {nclients}")
    if arrival not in ARRIVAL_MODES:
        raise ValueError(
            f"unknown arrival mode {arrival!r}; choose from "
            f"{list(ARRIVAL_MODES)}")


def zipf_cdf(nkeys: int, s: float) -> List[float]:
    """Cumulative (unnormalised) Zipf weights: entry ``k`` is
    ``sum(1/(i+1)^s for i <= k)``.  Key 0 is the hottest."""
    cdf: List[float] = []
    total = 0.0
    for rank in range(1, nkeys + 1):
        total += rank ** -s
        cdf.append(total)
    return cdf


def generate_requests(nkeys: int, requests: int, rate_rps: float,
                      read_fraction: float, zipf_s: float,
                      nclients: int, arrival: str,
                      seed: int) -> List[Request]:
    """The full schedule, ascending by arrival time.

    Four substreams (``serve.arrivals`` / ``serve.keys`` /
    ``serve.ops`` / ``serve.clients``) keep the dimensions
    independent: changing the read mix does not perturb which keys
    are hot or when requests land.
    """
    validate_workload(rate_rps, read_fraction, zipf_s, nkeys=nkeys,
                      requests=requests, nclients=nclients,
                      arrival=arrival)
    arrivals_rng = substream(seed, "serve.arrivals")
    keys_rng = substream(seed, "serve.keys")
    ops_rng = substream(seed, "serve.ops")
    clients_rng = substream(seed, "serve.clients")
    cdf = zipf_cdf(nkeys, zipf_s)
    cdf_total = cdf[-1]
    mean_gap_us = 1e6 / rate_rps
    clock_us = 0.0
    out: List[Request] = []
    for req_id in range(requests):
        if arrival == "poisson":
            clock_us += arrivals_rng.expovariate(1.0 / mean_gap_us)
        else:
            clock_us = req_id * mean_gap_us
        key = bisect_left(cdf, keys_rng.random() * cdf_total)
        op = "get" if ops_rng.random() < read_fraction else "put"
        out.append(Request(req_id=req_id,
                           client=clients_rng.randrange(nclients),
                           key=key, op=op, arrival_us=clock_us))
    return out


def node_schedules(schedule: Sequence[Request],
                   nprocs: int) -> List[List[Request]]:
    """Split the global schedule into per-node streams (a client's
    requests always land on ``client % nprocs``), preserving arrival
    order within each node."""
    per_node: List[List[Request]] = [[] for _ in range(nprocs)]
    for request in schedule:
        per_node[request.client % nprocs].append(request)
    return per_node


def write_counts(schedule: Sequence[Request],
                 nkeys: int) -> List[int]:
    """Expected number of ``put`` requests per key — the oracle the
    kvstore verifies its counters against."""
    counts = [0] * nkeys
    for request in schedule:
        if request.op == "put":
            counts[request.key] += 1
    return counts


#: Scaled parameter sets for the serving app, mirroring
#: ``repro.analysis.experiments.APP_PARAMS`` but kept separate so the
#: paper-reproduction report never iterates the serving workload.
SERVE_APP_PARAMS: Dict[str, Dict[str, object]] = {
    "small": dict(nkeys=32, value_words=8, shards=4, requests=120,
                  rate_rps=40_000.0, read_fraction=0.9, zipf_s=0.99,
                  nclients=1_000_000),
    "bench": dict(nkeys=64, value_words=16, shards=8, requests=400,
                  rate_rps=40_000.0, read_fraction=0.9, zipf_s=0.99,
                  nclients=1_000_000),
    "large": dict(nkeys=256, value_words=32, shards=16,
                  requests=2_000, rate_rps=40_000.0,
                  read_fraction=0.9, zipf_s=0.99,
                  nclients=4_000_000),
}
