"""Table 1: message costs of the shared-memory operations.

The paper gives closed-form message counts per operation:

===  ===========  =======  ========  =========================
 .   Access miss   Lock     Unlock    Barrier
LH   2m            3        0         2(n-1) + u
LI   2m            3        0         2(n-1)
LU   2m            3 + 2h   0         2(n-1) + 2u
EI   2 or 3        3        2c        2(n-1) + v
EU   2             3        2c        2(n-1) + 2u
===  ===========  =======  ========  =========================

m = concurrent last modifiers of the missing page, h = other
concurrent last modifiers of any locally cached page, c = other
cachers of the modified pages, n = processors, u/v = per-cacher update
and merge messages at barriers.

This module builds micro-scenarios that isolate each operation and
counts the actual messages the simulator exchanges, so the accounting
can be checked mechanically.  One deviation is expected: our EI serves
misses from the page's never-invalid home in exactly 2 messages (the
paper's "2 or 3" covers its owner-forwarding variant), and EI's unlock
adds one diff-to-home message pair when the releaser is not the home.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.api import DsmApi
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.machine import Machine
from repro.lab import Lab


def _machine(protocol: str, nprocs: int = 4) -> Machine:
    config = MachineConfig(nprocs=nprocs,
                           network=NetworkConfig.ideal())
    return Machine(config, protocol=protocol)


def _run(machine: Machine, worker) -> None:
    machine.run(lambda p: worker(DsmApi(machine.nodes[p]), p))


def _net_messages(machine: Machine) -> int:
    """Current network message count, read from the metrics registry
    (see docs/observability.md: ``net.messages_total``)."""
    return int(machine.obs.registry.total("net.messages_total"))


def _messages_between(machine: Machine, start: int) -> int:
    return _net_messages(machine) - start


def measure_access_miss(protocol: str, modifiers: int = 1) -> int:
    """Messages for one access miss with ``modifiers`` concurrent last
    modifiers of the page (the page is written by that many processors
    under different locks, then read cold by the last processor)."""
    nprocs = modifiers + 2
    machine = _machine(protocol, nprocs=nprocs)
    seg = machine.allocate("page", 64, owner=nprocs - 2)
    counter = {"miss_messages": 0}

    def worker(api, proc):
        if proc < modifiers:
            # Each modifier writes its own word under its own lock.
            yield from api.acquire(proc)
            yield from api.write(seg, proc, float(proc + 1))
            yield from api.release(proc)
        yield from api.barrier(0)
        if proc == nprocs - 1:
            # Let other nodes' departure-time traffic drain first so
            # the window only sees this miss.
            yield from api.compute(1_000_000)
            start = _net_messages(machine)
            yield from api.read(seg, 0)
            counter["miss_messages"] = _messages_between(machine, start)
        else:
            # Stay quiet so the window only sees the miss traffic.
            yield from api.compute(10_000_000)
        yield from api.barrier(1)

    _run(machine, worker)
    return counter["miss_messages"]


def measure_lock_transfer(protocol: str) -> int:
    """Messages for a lock acquisition whose token rests at a third
    node: request -> owner -> holder -> grant (paper: 3)."""
    machine = _machine(protocol, nprocs=4)
    machine.allocate("dummy", 16)
    counter = {"messages": 0}
    # Lock 1 is owned by proc 1; proc 2 takes it first, then proc 3
    # requests it: REQ(3->1), FWD(1->2), GRANT(2->3).
    order = {}

    def worker(api, proc):
        if proc == 2:
            yield from api.acquire(1)
            yield from api.release(1)
        yield from api.barrier(0)
        if proc == 3:
            start = _net_messages(machine)
            yield from api.acquire(1)
            counter["messages"] = _messages_between(machine, start)
            yield from api.release(1)
        else:
            yield from api.compute(10_000_000)
        yield from api.barrier(1)

    _run(machine, worker)
    return counter["messages"]


def measure_unlock(protocol: str, cachers: int = 2) -> int:
    """Messages triggered by a release after writing a page that
    ``cachers`` other processors cache (eager: 2c; lazy: 0)."""
    nprocs = cachers + 1
    machine = _machine(protocol, nprocs=nprocs)
    seg = machine.allocate("page", 64, owner=0)
    counter = {"messages": 0}

    def worker(api, proc):
        yield from api.read(seg, 0)  # everyone caches the page
        yield from api.barrier(0)
        if proc == 0:
            yield from api.acquire(0)  # owned locally: no messages
            yield from api.write(seg, 1, 42.0)
            start = _net_messages(machine)
            yield from api.release(0)
            counter["messages"] = _messages_between(machine, start)
        else:
            yield from api.compute(10_000_000)
        yield from api.barrier(1)

    _run(machine, worker)
    return counter["messages"]


def measure_barrier(protocol: str, nprocs: int = 4,
                    dirty: bool = False) -> Dict[str, int]:
    """Message counts, by purpose, for one barrier episode; with
    ``dirty`` each processor has modified its own page that one
    neighbour caches (exposing the update-push terms u / 2u and EI's
    merge term v).  Counted as the per-episode delta between a run
    with two barriers and one with a single barrier."""

    def total_by_kind(nbarriers: int) -> Dict[str, int]:
        machine = _machine(protocol, nprocs=nprocs)
        words = machine.config.words_per_page
        seg = machine.allocate("pages", words * nprocs, owner="striped")

        def worker(api, proc):
            if dirty:
                neighbour = (proc + 1) % nprocs
                yield from api.read(seg, neighbour * words)
                yield from api.write(seg, proc * words + 1,
                                     float(proc + 1))
            for barrier_id in range(nbarriers):
                yield from api.barrier(barrier_id)
                if dirty and barrier_id + 1 < nbarriers:
                    yield from api.write(seg, proc * words + 1,
                                         float(proc + 10))

        def factory(p):
            return worker(DsmApi(machine.nodes[p]), p)
        result = machine.run(factory)
        # Per-kind counts from the metrics registry; keys are the
        # ``msg_type`` label values of ``dsm.messages_total``.
        by_type = result.metric_by("dsm.messages_total", "msg_type")
        return {kind: int(count) for kind, count in by_type.items()}

    two = total_by_kind(2)
    one = total_by_kind(1)
    delta = {kind: two.get(kind, 0) - one.get(kind, 0)
             for kind in set(two) | set(one)
             if two.get(kind, 0) != one.get(kind, 0)}
    delta["total"] = sum(v for k, v in delta.items() if k != "total")
    delta["sync"] = (two.get("barrier_arrive", 0)
                     - one.get("barrier_arrive", 0)
                     + two.get("barrier_depart", 0)
                     - one.get("barrier_depart", 0))
    return delta


#: Expected counts for the micro-scenarios above, derived from Table 1.
EXPECTED = {
    "access_miss_m1": {"lh": 2, "li": 2, "lu": 2, "ei": 2, "eu": 2},
    "access_miss_m2": {"lh": 4, "li": 4, "lu": 4},
    "lock_transfer": {"lh": 3, "li": 3, "lu": 3, "ei": 3, "eu": 3},
    # c = 2 other cachers -> eager 2c = 4; EI adds a diff-to-home
    # message pair when the releaser is not the home (here it is the
    # home, so 4 as well); lazy protocols release for free.
    "unlock_c2": {"lh": 0, "li": 0, "lu": 0, "ei": 4, "eu": 4},
    # clean barrier: 2(n-1)
    "barrier_clean_n4": {"lh": 6, "li": 6, "lu": 6, "ei": 6, "eu": 6},
}


def run_table1(lab: Optional[Lab] = None) -> Dict[str, Dict[str, int]]:
    """Measure every scenario for every protocol.

    The micro-scenarios close over live :class:`Machine` objects, so
    they cannot be shipped to worker processes as run specs; instead
    each (scenario, protocol) cell is memoized through
    :meth:`repro.lab.Lab.cached`, keyed on the scenario parameters and
    the code version, so repeated reports skip them entirely.
    """
    if lab is None:
        lab = Lab()

    def cell(scenario: str, protocol: str, compute, **params):
        return lab.cached("table1",
                          {"scenario": scenario, "protocol": protocol,
                           **params},
                          compute)

    rows: Dict[str, Dict[str, int]] = {}
    protocols = ["lh", "li", "lu", "ei", "eu"]
    rows["access_miss_m1"] = {
        p: cell("access_miss", p,
                lambda p=p: measure_access_miss(p, 1), modifiers=1)
        for p in protocols}
    rows["access_miss_m2"] = {
        p: cell("access_miss", p,
                lambda p=p: measure_access_miss(p, 2), modifiers=2)
        for p in ("lh", "li", "lu")}
    rows["lock_transfer"] = {
        p: cell("lock_transfer", p,
                lambda p=p: measure_lock_transfer(p))
        for p in protocols}
    rows["unlock_c2"] = {
        p: cell("unlock", p, lambda p=p: measure_unlock(p, 2),
                cachers=2)
        for p in protocols}
    rows["barrier_clean_n4"] = {
        p: cell("barrier", p,
                lambda p=p: measure_barrier(p, 4, dirty=False),
                nprocs=4, dirty=False)
        for p in protocols}
    rows["barrier_dirty_n4"] = {
        p: cell("barrier", p,
                lambda p=p: measure_barrier(p, 4, dirty=True),
                nprocs=4, dirty=True)
        for p in protocols}
    return rows
