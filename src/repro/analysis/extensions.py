"""The paper's future-work directions, implemented and measured.

Section 8 closes: *"the only possible approach may be to hide the
latency of lock acquisition.  Multithreading is a common technique for
masking the latency of expensive operations, but the attendant
increase in communication could prove prohibitive in software DSMs."*

:func:`multithreading_study` tests that hypothesis directly: Cholesky
(whose 16-processor LH run spends ~85% of its time acquiring locks)
is run with 1, 2, and 4 worker threads per node.  Extra threads
overlap their lock stalls behind each other's computation — and also
multiply the message count, exactly the tension the paper predicted.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.experiments import APP_PARAMS
from repro.apps import create_app
from repro.core.api import DsmApi
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.machine import Machine
from repro.core.metrics import RunResult
from repro.core.runner import run_app


def run_threaded_cholesky(nprocs: int, threads: int,
                          scale: str = "bench",
                          protocol: str = "lh") -> RunResult:
    """Cholesky with ``threads`` worker threads per node."""
    app = create_app("cholesky", **APP_PARAMS[scale]["cholesky"])
    machine = Machine(MachineConfig(nprocs=nprocs,
                                    network=NetworkConfig.atm()),
                      protocol=protocol)
    shared = app.setup(machine)
    if threads == 1:
        result = machine.run(
            lambda proc: app.worker(DsmApi(machine.nodes[proc]),
                                    proc, shared),
            app=app.name)
    else:
        result = machine.run(
            lambda proc, thread: app.worker_thread(
                DsmApi(machine.nodes[proc]), proc, thread, shared),
            threads_per_proc=threads, app=app.name)
    app.finish(machine, shared, result)
    return result


def multithreading_study(nprocs: int = 8,
                         thread_counts=(1, 2, 4),
                         scale: str = "bench",
                         protocol: str = "lh"
                         ) -> Dict[int, Dict[str, float]]:
    """Elapsed time, messages, and lock-wait share of Cholesky as the
    thread count grows.  Returns per-thread-count summaries."""
    app = create_app("cholesky", **APP_PARAMS[scale]["cholesky"])
    baseline = run_app(app, MachineConfig(nprocs=1))
    study: Dict[int, Dict[str, float]] = {}
    for threads in thread_counts:
        result = run_threaded_cholesky(nprocs, threads, scale=scale,
                                       protocol=protocol)
        breakdown = result.time_breakdown()
        study[threads] = {
            "elapsed_cycles": result.elapsed_cycles,
            "speedup": baseline.elapsed_cycles / result.elapsed_cycles,
            "messages": float(result.total_messages),
            "lock_wait_fraction": breakdown.get("lock_wait", 0.0),
        }
    return study
