"""The paper's future-work directions, implemented and measured.

Section 8 closes: *"the only possible approach may be to hide the
latency of lock acquisition.  Multithreading is a common technique for
masking the latency of expensive operations, but the attendant
increase in communication could prove prohibitive in software DSMs."*

:func:`multithreading_study` tests that hypothesis directly: Cholesky
(whose 16-processor LH run spends ~85% of its time acquiring locks)
is run with 1, 2, and 4 worker threads per node.  Extra threads
overlap their lock stalls behind each other's computation — and also
multiply the message count, exactly the tension the paper predicted.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.experiments import APP_PARAMS
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.metrics import RunResult
from repro.lab import Lab, RunSpec


def _cholesky_spec(nprocs: int, threads: int, scale: str,
                   protocol: str) -> RunSpec:
    return RunSpec("cholesky", APP_PARAMS[scale]["cholesky"],
                   protocol=protocol,
                   config=MachineConfig(nprocs=nprocs,
                                        network=NetworkConfig.atm()),
                   threads_per_proc=threads)


def run_threaded_cholesky(nprocs: int, threads: int,
                          scale: str = "bench",
                          protocol: str = "lh",
                          lab: Optional[Lab] = None) -> RunResult:
    """Cholesky with ``threads`` worker threads per node."""
    spec = _cholesky_spec(nprocs, threads, scale, protocol)
    return (lab if lab is not None else Lab()).run(spec)


def multithreading_study(nprocs: int = 8,
                         thread_counts=(1, 2, 4),
                         scale: str = "bench",
                         protocol: str = "lh",
                         lab: Optional[Lab] = None
                         ) -> Dict[int, Dict[str, float]]:
    """Elapsed time, messages, and lock-wait share of Cholesky as the
    thread count grows.  Returns per-thread-count summaries."""
    if lab is None:
        lab = Lab()
    specs = [RunSpec("cholesky", APP_PARAMS[scale]["cholesky"],
                     config=MachineConfig(nprocs=1))]
    specs += [_cholesky_spec(nprocs, threads, scale, protocol)
              for threads in thread_counts]
    results = iter(lab.run_many(specs))
    baseline = next(results)
    study: Dict[int, Dict[str, float]] = {}
    for threads in thread_counts:
        result = next(results)
        breakdown = result.time_breakdown()
        study[threads] = {
            "elapsed_cycles": result.elapsed_cycles,
            "speedup": baseline.elapsed_cycles / result.elapsed_cycles,
            "messages": float(result.total_messages),
            "lock_wait_fraction": breakdown.get("lock_wait", 0.0),
        }
    return study
