"""Critical-path extraction over a causal trace.

The critical path of a distributed execution is the chain of
dependent work that determines the elapsed time: shorten anything on
it and the run gets faster; shorten anything off it and nothing
changes.  The paper's breakdowns (Figures 6-18) are *averages* over
processors; the critical path answers the sharper question of *which*
compute, diff, wire, and stall time actually gated the run.

Algorithm — a backward walk with exact telescoping:

1. start at the last-finishing worker at its finish time;
2. walk that processor backward to its most recent scheduler wake-up
   (``sched.wake``), attributing the local window to *compute* (pure
   application cycles from ``cpu.compute`` spans), *diff* (interval
   seal costs), and *software overhead* (everything else: message
   handling, interrupt-stolen cycles, protocol bookkeeping);
3. jump through the message that caused the wake-up, attributing its
   journey to *software overhead* (send/receive processing),
   *contention stall* (medium/port queueing and Ethernet backoff),
   and *wire* (serialization + propagation);
4. from the sender continue at its send time — chaining through the
   handler's ``cause`` message when the send itself happened inside a
   remote-request handler — until time zero.

Every step attributes a contiguous, non-overlapping span of simulated
time, so the category totals sum *exactly* to the elapsed time — the
reconciliation the integration tests assert against the metrics
registry.  The walk is robust to partial traces (faults, reliable
transport, multithreaded nodes): missing hops degrade to coarser
categories instead of failing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.causal import CausalTrace, MessageRecord

#: Paper cost categories, in presentation order.
CATEGORIES = ("compute", "diff", "wire", "contention", "overhead")

#: Backstop against degenerate traces; a real path has a few events
#: per synchronization operation, far below this.
MAX_STEPS = 5_000_000


@dataclass
class PathSegment:
    """One attributed span of the critical path (newest first)."""

    t0: float
    t1: float
    where: str       # "proc N" or "N->M (kind)"
    category: str    # dominant category of the span


@dataclass
class CriticalPathResult:
    """Category attribution of the critical path."""

    categories: Dict[str, float]
    elapsed: float
    start_proc: Optional[int]
    steps: int
    segments: List[PathSegment] = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(self.categories.values())

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total <= 0:
            return {name: 0.0 for name in CATEGORIES}
        return {name: self.categories[name] / total
                for name in CATEGORIES}

    def format(self) -> str:
        lines = [f"critical path: {self.total:,.0f} cycles "
                 f"(elapsed {self.elapsed:,.0f}, "
                 f"last finisher proc {self.start_proc}, "
                 f"{self.steps} hops)"]
        for name in CATEGORIES:
            value = self.categories[name]
            share = self.fractions()[name]
            lines.append(f"  {name:<11} {value:>16,.0f} cycles "
                         f"({share:6.1%})")
        return "\n".join(lines)


def critical_path(trace: CausalTrace,
                  keep_segments: bool = False) -> CriticalPathResult:
    """Walk the critical path of ``trace`` backward from the last
    finisher to time zero, attributing every cycle to a category."""
    categories = {name: 0.0 for name in CATEGORIES}
    start_proc = trace.last_finisher()
    segments: List[PathSegment] = []
    if start_proc is None:
        return CriticalPathResult(categories=categories, elapsed=0.0,
                                  start_proc=None, steps=0)

    proc = start_proc
    t = trace.finish[start_proc]
    pending: Optional[MessageRecord] = None
    steps = 0

    def note(t0: float, t1: float, where: str, category: str) -> None:
        if keep_segments and t1 > t0:
            segments.append(PathSegment(t0=t0, t1=t1, where=where,
                                        category=category))

    while t > 0.0 and steps < MAX_STEPS:
        steps += 1
        if pending is not None:
            message, pending = pending, None
            t, proc = _attribute_message(message, t, categories, note)
            if message.context == "handler":
                pending = _chase_cause(trace, message, t)
            continue

        wake = trace.latest_wake(proc, t)
        if wake is None:
            _attribute_local(trace, proc, 0.0, t, categories, note)
            break
        lo = min(wake.ts, t)
        _attribute_local(trace, proc, lo, t, categories, note)
        t = lo
        cause = (trace.messages.get(wake.cause)
                 if wake.cause is not None else None)
        if (cause is not None and cause.send_ts is not None
                and cause.recv_ts is not None
                and cause.recv_ts <= t and cause.send_ts < t):
            pending = cause
        else:
            # No usable cause (multithreaded handoff, lost message,
            # stale watchdog): the remaining time on this processor is
            # attributed locally in one final span.
            _attribute_local(trace, proc, 0.0, t, categories, note)
            break

    return CriticalPathResult(categories=categories,
                              elapsed=trace.finish[start_proc],
                              start_proc=start_proc, steps=steps,
                              segments=segments)


def _attribute_message(message: MessageRecord, t: float,
                       categories: Dict[str, float],
                       note) -> "tuple[float, int]":
    """Decompose ``(send_ts, t]`` of a message journey.  Boundaries
    are clamped monotonic so the pieces always sum exactly to the
    span, whatever the trace is missing (e.g. no ``net.xmit`` when
    the reliable transport re-packetizes)."""
    send_ts = message.send_ts if message.send_ts is not None else 0.0
    send_ts = min(send_ts, t)
    accept = (message.accept_ts
              if message.accept_ts is not None else send_ts)
    recv = message.recv_ts if message.recv_ts is not None else t
    # send overhead | contention | wire+latency | receive overhead
    b1 = min(max(accept, send_ts), t)
    b2 = min(b1 + max(message.waited, 0.0), t)
    b3 = min(max(recv, b2), t)
    where = f"{message.src}->{message.dst} ({message.kind})"
    categories["overhead"] += (b1 - send_ts) + (t - b3)
    categories["contention"] += b2 - b1
    categories["wire"] += b3 - b2
    note(b3, t, where, "overhead")
    note(b2, b3, where, "wire")
    note(b1, b2, where, "contention")
    note(send_ts, b1, where, "overhead")
    return send_ts, message.src


def _chase_cause(trace: CausalTrace, message: MessageRecord,
                 t: float) -> Optional[MessageRecord]:
    """The message was sent from a handler: the handler was itself
    triggered by ``message.cause``.  Follow it if it is
    time-consistent (guards against stale causes from deferred
    handler work)."""
    if message.cause is None:
        return None
    cause = trace.messages.get(message.cause)
    if (cause is not None and cause.send_ts is not None
            and cause.recv_ts is not None
            and cause.recv_ts <= t and cause.send_ts < t
            and cause.dst == message.src):
        return cause
    return None


def _attribute_local(trace: CausalTrace, proc: int, lo: float,
                     hi: float, categories: Dict[str, float],
                     note) -> None:
    """Attribute the local window ``(lo, hi]`` on ``proc``: pure
    compute cycles -> compute, interrupt-stolen span remainder ->
    overhead, seal costs -> diff, and whatever is left (message
    handling, protocol bookkeeping, request construction) ->
    overhead.  Totals telescope exactly to ``hi - lo``."""
    window = hi - lo
    if window <= 0:
        return
    span_total = 0.0
    pure = 0.0
    for started, end, cycles in trace.compute_spans_in(proc, lo, hi):
        s = max(started, lo)
        e = min(end, hi)
        if e <= s:
            continue
        length = e - s
        span_total += length
        pure += min(max(cycles, 0.0), length)
    if span_total > window:  # overlapping spans cannot happen, but
        span_total = window  # never let rounding break telescoping
    pure = min(pure, span_total)
    rest = window - span_total
    diff = min(trace.seal_cost_in(proc, lo, hi), rest)
    overhead = (span_total - pure) + (rest - diff)
    categories["compute"] += pure
    categories["diff"] += diff
    categories["overhead"] += overhead
    dominant = max((("compute", pure), ("diff", diff),
                    ("overhead", overhead)), key=lambda kv: kv[1])[0]
    note(lo, hi, f"proc {proc}", dominant)


def contention_stall(result: CriticalPathResult) -> float:
    """Contention share of the path (medium queueing + backoff)."""
    return result.categories["contention"]
