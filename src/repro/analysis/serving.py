"""Serving analysis: throughput, tail latency, SLO attainment.

The paper reports speedups; a service reports *percentiles*.  This
module turns a kvstore run's per-request records (``[req_id, key,
is_write, arrival, started, done]`` in cycles, see
:class:`repro.apps.base.EventDrivenApplication`) into the numbers
capacity planning needs:

- **throughput** — offered (the generator's rate) vs achieved
  (completions over the span they took), which diverge exactly when
  the system saturates;
- **latency percentiles** — p50/p99/p999 by the nearest-rank rule
  (``sorted[ceil(p/100 * n) - 1]``), measured from each request's
  *scheduled* arrival so queueing delay lands in the tail;
- **SLO attainment** — the fraction of requests at or under a target
  latency, swept against offered load to find the knee;
- **tail attribution** — the slowest requests decomposed through the
  causal trace (:mod:`repro.obs.causal`) into queue wait, compute,
  diff/seal work, wire time, medium contention, and residual
  protocol overhead.

All sweeps route through the shared :class:`repro.lab.Lab`, so cells
run in parallel and cache across sessions like every other driver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig, NetworkConfig
from repro.lab import Lab, RunSpec
from repro.obs.causal import CausalTrace
from repro.serve.workload import SERVE_APP_PARAMS, validate_workload

DEFAULT_SLO_US = 500.0
#: SLO attainment target used for burn rates: a window "burns error
#: budget" at rate (violation fraction) / (1 - target), so 1.0 means
#: exactly on target and 10.0 means the budget drains 10x too fast.
DEFAULT_SLO_TARGET = 0.999
DEFAULT_NETWORKS: Tuple[Tuple[str, NetworkConfig], ...] = (
    ("ethernet", NetworkConfig.ethernet()),
    ("atm", NetworkConfig.atm()))


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not values:
        return 0.0
    if not 0 < p <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {p}")
    rank = max(1, math.ceil(p / 100.0 * len(values)))
    return float(values[rank - 1])


@dataclass(frozen=True)
class ServingReport:
    """One (protocol, network, offered load) cell of a serving run."""

    protocol: str
    network: str
    offered_rps: float
    achieved_rps: float
    completed: int
    p50_us: float
    p99_us: float
    p999_us: float
    mean_us: float
    max_us: float
    slo_us: float
    slo_attainment: float    # fraction of requests at/under slo_us


def request_records(app_result) -> List[List[float]]:
    """Flatten a kvstore ``RunResult.app_result`` into one request
    list (cached results round-trip through JSON, hence the duck
    typing on dicts)."""
    records: List[List[float]] = []
    for per_proc in app_result or []:
        if per_proc:
            records.extend(per_proc["requests"])
    return records


def build_report(app_result, cpu_mhz: float, protocol: str,
                 network: str, offered_rps: float,
                 slo_us: float = DEFAULT_SLO_US) -> ServingReport:
    """Digest one run's request records (cycles -> microseconds at
    ``cpu_mhz`` cycles/us)."""
    records = request_records(app_result)
    latencies = sorted((done - arrival) / cpu_mhz
                       for _id, _key, _w, arrival, _s, done
                       in records)
    completed = len(latencies)
    if records:
        first = min(rec[3] for rec in records)
        last = max(rec[5] for rec in records)
        span_s = max(last - first, 1.0) / cpu_mhz / 1e6
        achieved = completed / span_s
        attained = sum(1 for lat in latencies if lat <= slo_us)
    else:
        achieved = 0.0
        attained = 0
    return ServingReport(
        protocol=protocol, network=network,
        offered_rps=offered_rps, achieved_rps=achieved,
        completed=completed,
        p50_us=percentile(latencies, 50),
        p99_us=percentile(latencies, 99),
        p999_us=percentile(latencies, 99.9),
        mean_us=sum(latencies) / completed if completed else 0.0,
        max_us=latencies[-1] if latencies else 0.0,
        slo_us=slo_us,
        slo_attainment=attained / completed if completed else 0.0)


@dataclass(frozen=True)
class WindowReport:
    """One time window of a serving run's latency series."""

    index: int
    t0_us: float
    t1_us: float
    completed: int
    p50_us: float
    p99_us: float
    slo_violations: int
    burn_rate: float


def windowed_reports(app_result, cpu_mhz: float, window_us: float,
                     slo_us: float = DEFAULT_SLO_US,
                     slo_target: float = DEFAULT_SLO_TARGET
                     ) -> List[WindowReport]:
    """Post-hoc windowing of a run's request records: per-window
    completions, nearest-rank p50/p99, and SLO burn rate.

    Requests group into the fixed grid ``[k*w, (k+1)*w)`` by
    *completion* time (matching the live
    :class:`repro.obs.TimeseriesSampler`, which observes a request
    when it finishes), latencies measured from the scheduled arrival.
    Being a pure function of the cached ``app_result``, this powers
    the report timeline without re-running anything."""
    if not window_us > 0:
        raise ValueError(f"window must be > 0 µs, got {window_us}")
    if not 0.0 < slo_target < 1.0:
        raise ValueError(
            f"SLO target must be within (0, 1), got {slo_target}")
    records = request_records(app_result)
    if not records:
        return []
    window_cycles = window_us * cpu_mhz
    by_window: Dict[int, List[float]] = {}
    for _id, _key, _w, arrival, _s, done in records:
        by_window.setdefault(int(done // window_cycles), []).append(
            (done - arrival) / cpu_mhz)
    out: List[WindowReport] = []
    for index in range(max(by_window) + 1):
        latencies = sorted(by_window.get(index, []))
        completed = len(latencies)
        violations = sum(1 for lat in latencies if lat > slo_us)
        out.append(WindowReport(
            index=index,
            t0_us=index * window_us,
            t1_us=(index + 1) * window_us,
            completed=completed,
            p50_us=percentile(latencies, 50) if latencies else 0.0,
            p99_us=percentile(latencies, 99) if latencies else 0.0,
            slo_violations=violations,
            burn_rate=(violations / completed / (1.0 - slo_target)
                       if completed else 0.0)))
    return out


def format_window_table(windows: Sequence[WindowReport]) -> str:
    """Fixed-width rendering of a windowed latency series."""
    lines = [f"{'win':>4s} {'t0us':>9s} {'t1us':>9s} {'done':>5s} "
             f"{'p50us':>8s} {'p99us':>8s} {'viol':>5s} "
             f"{'burn':>7s}"]
    for w in windows:
        lines.append(
            f"{w.index:4d} {w.t0_us:9.0f} {w.t1_us:9.0f} "
            f"{w.completed:5d} {w.p50_us:8.1f} {w.p99_us:8.1f} "
            f"{w.slo_violations:5d} {w.burn_rate:7.2f}")
    return "\n".join(lines)


def _serve_params(scale: str, rate_rps: float,
                  overrides: Optional[dict] = None) -> dict:
    params = dict(SERVE_APP_PARAMS[scale])
    params["rate_rps"] = rate_rps
    params.update(overrides or {})
    validate_workload(params["rate_rps"], params["read_fraction"],
                      params["zipf_s"], nkeys=params["nkeys"],
                      requests=params["requests"],
                      nclients=params["nclients"],
                      arrival=params.get("arrival", "poisson"))
    return params


def serving_grid(rate_rps: float,
                 protocols: Sequence[str] = ("li", "lh"),
                 networks: Sequence[Tuple[str, NetworkConfig]] =
                 DEFAULT_NETWORKS,
                 scale: str = "small",
                 config: Optional[MachineConfig] = None,
                 slo_us: float = DEFAULT_SLO_US,
                 overrides: Optional[dict] = None,
                 lab: Optional[Lab] = None) -> List[ServingReport]:
    """One offered load across every (protocol, network) cell."""
    lab = lab if lab is not None else Lab()
    base = config or MachineConfig(nprocs=4)
    params = _serve_params(scale, rate_rps, overrides)
    specs = [RunSpec("kvstore", params, protocol=protocol,
                     config=base.replace(network=network))
             for protocol in protocols
             for _name, network in networks]
    results = iter(lab.run_many(specs))
    reports = []
    for protocol in protocols:
        for net_name, _network in networks:
            result = next(results)
            reports.append(build_report(
                result.app_result, base.cpu_mhz, protocol, net_name,
                offered_rps=rate_rps, slo_us=slo_us))
    return reports


def capacity_sweep(rates_rps: Sequence[float],
                   protocols: Sequence[str] = ("li", "lh"),
                   networks: Sequence[Tuple[str, NetworkConfig]] =
                   DEFAULT_NETWORKS,
                   scale: str = "small",
                   config: Optional[MachineConfig] = None,
                   slo_us: float = DEFAULT_SLO_US,
                   overrides: Optional[dict] = None,
                   lab: Optional[Lab] = None
                   ) -> Dict[Tuple[str, str], List[ServingReport]]:
    """SLO-attainment curves vs offered load: every (protocol,
    network) cell at every rate, one Lab batch (parallel + cached).
    The per-cell report lists follow ``rates_rps`` order."""
    if not rates_rps:
        raise ValueError("rates_rps must be non-empty")
    lab = lab if lab is not None else Lab()
    base = config or MachineConfig(nprocs=4)
    specs = []
    cells = [(protocol, net_name, network, rate)
             for protocol in protocols
             for net_name, network in networks
             for rate in rates_rps]
    for protocol, _net_name, network, rate in cells:
        params = _serve_params(scale, rate, overrides)
        specs.append(RunSpec("kvstore", params, protocol=protocol,
                             config=base.replace(network=network)))
    results = iter(lab.run_many(specs))
    curves: Dict[Tuple[str, str], List[ServingReport]] = {}
    for protocol, net_name, _network, rate in cells:
        result = next(results)
        curves.setdefault((protocol, net_name), []).append(
            build_report(result.app_result, base.cpu_mhz, protocol,
                         net_name, offered_rps=rate, slo_us=slo_us))
    return curves


@dataclass(frozen=True)
class TailAttribution:
    """Where one slow request's latency went (all cycles)."""

    req_id: int
    node: int
    key: int
    op: str
    latency: float
    queue_wait: float    # scheduled arrival -> dequeued
    compute: float       # application compute in the service window
    diff: float          # interval-seal (twin/diff) work
    wire: float          # serialization of messages the node touched
    contention: float    # medium/port wait of those messages
    overhead: float      # residual: handlers, stack, remote service


def attribute_tail(trace: CausalTrace,
                   top: int = 5) -> List[TailAttribution]:
    """Decompose the ``top`` slowest requests in a trace.

    Latency splits at the dequeue point: ``(arrival, start]`` is pure
    queue wait (earlier arrivals held the node), and the service
    window ``(start, done]`` decomposes into compute spans, seal
    (diff) costs, wire and contention time of messages the node sent
    in the window, and a residual overhead (handler execution, remote
    service time).  The split is attribution, not an exact partition
    — concurrent handler work can overlap — but it ranks the
    contributors, which is what tail hunting needs."""
    finished = [r for r in trace.requests.values()
                if r.done_ts is not None and r.arrival is not None
                and r.start_ts is not None]
    finished.sort(key=lambda r: r.latency, reverse=True)
    out: List[TailAttribution] = []
    for record in finished[:top]:
        lo, hi = record.start_ts, record.done_ts
        node = record.node
        compute = sum(c for _s, _e, c
                      in trace.compute_spans_in(node, lo, hi))
        diff = trace.seal_cost_in(node, lo, hi)
        wire = contention = 0.0
        for msg in trace.messages.values():
            if msg.send_ts is None or not lo < msg.send_ts <= hi:
                continue
            if msg.src == node or msg.dst == node:
                wire += msg.wire
                contention += msg.waited + msg.backoff
        service = hi - lo
        accounted = compute + diff + wire + contention
        out.append(TailAttribution(
            req_id=record.req_id, node=node, key=record.key,
            op=record.op, latency=record.latency,
            queue_wait=record.queue_wait, compute=compute,
            diff=diff, wire=wire, contention=contention,
            overhead=max(0.0, service - accounted)))
    return out


def format_serving_table(reports: Sequence[ServingReport]) -> str:
    """Fixed-width rendering of serving reports."""
    lines = [f"{'proto':>6s} {'network':>9s} {'offered':>9s} "
             f"{'achieved':>9s} {'done':>5s} {'p50us':>8s} "
             f"{'p99us':>8s} {'p999us':>8s} {'maxus':>8s} "
             f"{'slo':>7s}"]
    for r in reports:
        lines.append(
            f"{r.protocol:>6s} {r.network:>9s} "
            f"{r.offered_rps:9.0f} {r.achieved_rps:9.0f} "
            f"{r.completed:5d} {r.p50_us:8.1f} {r.p99_us:8.1f} "
            f"{r.p999_us:8.1f} {r.max_us:8.1f} "
            f"{r.slo_attainment:7.2%}")
    return "\n".join(lines)


def format_attribution_table(
        rows: Sequence[TailAttribution]) -> str:
    """Fixed-width rendering of tail attributions (cycles)."""
    lines = [f"{'req':>6s} {'node':>4s} {'key':>5s} {'op':>4s} "
             f"{'latency':>9s} {'queue':>8s} {'compute':>8s} "
             f"{'diff':>7s} {'wire':>8s} {'contend':>8s} "
             f"{'ovh':>8s}"]
    for r in rows:
        lines.append(
            f"{r.req_id:6d} {r.node:4d} {r.key:5d} {r.op:>4s} "
            f"{r.latency:9.0f} {r.queue_wait:8.0f} "
            f"{r.compute:8.0f} {r.diff:7.0f} {r.wire:8.0f} "
            f"{r.contention:8.0f} {r.overhead:8.0f}")
    return "\n".join(lines)


def sweep_to_json(curves: Dict[Tuple[str, str],
                               List[ServingReport]]) -> dict:
    """JSON-ready dump of a capacity sweep (the CI artifact)."""
    return {
        "cells": [
            {"protocol": protocol, "network": network,
             "points": [vars(report) for report in reports]}
            for (protocol, network), reports in curves.items()
        ]
    }
