"""Plain-text rendering of experiment results (paper-style rows)."""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.analysis.experiments import FigureResult


def format_curve_table(result: FigureResult, metric: str = "speedup",
                       fmt: str = "{:8.2f}") -> str:
    """One row per protocol, one column per processor count."""
    protocols = sorted(result.curves)
    proc_counts = sorted(next(iter(
        result.curves.values())).speedup.keys())
    header = "proto " + "".join(f"{p:>9d}p" for p in proc_counts)
    lines = [f"== {result.figure}: {result.title} ==", header]
    for protocol in protocols:
        curve = result.curves[protocol]
        values = getattr(curve, metric)
        cells = "".join("  " + fmt.format(values[p])
                        for p in proc_counts)
        lines.append(f"{protocol:>5s}{cells}")
    if result.paper_notes:
        lines.append(f"  [{result.paper_notes}]")
    return "\n".join(lines)


def format_matrix(title: str, rows: Dict[str, Dict],
                  col_order: Optional[Sequence] = None,
                  fmt: str = "{:8.2f}") -> str:
    """Render a nested dict as a labelled table."""
    lines = [f"== {title} =="]
    row_names = list(rows)
    columns = col_order or sorted({c for row in rows.values()
                                   for c in row})
    header = " " * 24 + "".join(f"{str(c):>10s}" for c in columns)
    lines.append(header)
    for name in row_names:
        cells = []
        for column in columns:
            value = rows[name].get(column)
            if value is None:
                cells.append(f"{'-':>10s}")
            else:
                cells.append("  " + fmt.format(value))
        lines.append(f"{str(name):<24s}" + "".join(cells))
    return "\n".join(lines)


def paper_vs_measured(label: str, paper: Optional[float],
                      measured: float) -> str:
    paper_text = f"{paper:.2f}" if paper is not None else "n/a"
    return (f"{label:<32s} paper={paper_text:>8s} "
            f"measured={measured:8.2f}")


def format_metrics_table(registry, skip_empty: bool = True) -> str:
    """Render a run's :class:`repro.obs.MetricsRegistry` as a text
    table (the ``repro stats --format table`` view).  ``skip_empty``
    drops metrics that never recorded anything."""
    return registry.as_text(skip_empty=skip_empty)
