"""Message timeline tap: observe every message a simulation sends.

Wraps a machine's network with a recording layer.  Used for debugging
protocol behaviour, for the fine-grained traffic statistics the paper
quotes (e.g. "91% of EU's messages are updates sent during lock
releases"), and by tests that pin down *when* and *why* traffic
happens, not just how much.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.machine import Machine
from repro.net.message import Message, MsgKind


@dataclass(frozen=True)
class MessageEvent:
    """One transmitted message, with its send time."""

    time: float
    src: int
    dst: int
    kind: MsgKind
    data_bytes: int
    size_bytes: int


class MessageTimeline:
    """Recorded transmissions, in send order."""

    def __init__(self) -> None:
        self.events: List[MessageEvent] = []

    def record(self, time: float, message: Message) -> None:
        self.events.append(MessageEvent(
            time=time, src=message.src, dst=message.dst,
            kind=message.kind, data_bytes=message.data_bytes,
            size_bytes=message.size_bytes))

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def count_by_kind(self) -> Dict[MsgKind, int]:
        return dict(Counter(event.kind for event in self.events))

    def fraction_by_kind(self, kind: MsgKind) -> float:
        if not self.events:
            return 0.0
        return sum(1 for e in self.events if e.kind == kind) \
            / len(self.events)

    def between(self, start: float, end: float) -> List[MessageEvent]:
        return [e for e in self.events if start <= e.time < end]

    def pair_matrix(self) -> Dict[Tuple[int, int], int]:
        """(src, dst) -> message count: who talks to whom."""
        return dict(Counter((e.src, e.dst) for e in self.events))

    def busiest_pair(self) -> Optional[Tuple[int, int]]:
        matrix = self.pair_matrix()
        if not matrix:
            return None
        return max(matrix, key=matrix.get)

    def data_by_kind(self) -> Dict[MsgKind, int]:
        totals: Counter = Counter()
        for event in self.events:
            totals[event.kind] += event.data_bytes
        return dict(totals)

    def rate_per_mcycle(self, horizon: Optional[float] = None) -> float:
        """Messages per million cycles over the recorded span."""
        if not self.events:
            return 0.0
        span = horizon or (self.events[-1].time + 1.0)
        return len(self.events) / span * 1e6


def attach_timeline(machine: Machine) -> MessageTimeline:
    """Tap a machine's network; returns the timeline being filled."""
    timeline = MessageTimeline()
    network = machine.network
    original = network.transmit

    def tapped(message: Message):
        timeline.record(machine.sim.now, message)
        return original(message)

    network.transmit = tapped
    return timeline
