"""Availability study: protocol behaviour under node crashes.

The paper's machines never fail; this driver asks what the protocols
pay when they do (docs/robustness.md).  For every (protocol, network)
pair it runs the same application across a list of crash rates —
exponential MTTF per node, fixed MTTR, both drawn from seeded
substreams so every cell is exactly reproducible — and reports:

- **completion rate** — fraction of workers that finished (below 1.0
  only for crash-stop runs, where dead nodes never rejoin and the
  survivors block at the next synchronization with them),
- **recovery latency** — mean observed outage (``
  faults.recovery_outage_cycles``),
- **message overhead** — wire packets relative to the same
  (protocol, network) cell's crash-free baseline: retransmissions
  probing dead peers, session resets, and replayed traffic all end up
  here.

Crash-stop runs never drain (retransmission timers probe the dead
node forever at the capped RTO), so every cell runs under an event
budget with ``Machine.run(allow_unfinished=True)``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.api import DsmApi
from repro.core.config import MachineConfig, NetworkConfig
from repro.core.machine import Machine

# MTTF values in microseconds; 0.0 is the crash-free baseline cell
# (run with the transport forced on, so packet counts are comparable).
DEFAULT_MTTFS = (0.0, 50_000.0, 20_000.0)
DEFAULT_MTTR_US = 5_000.0
DEFAULT_HORIZON_US = 100_000.0
DEFAULT_MAX_EVENTS = 500_000
DEFAULT_PROTOCOLS = ("li", "lh")
DEFAULT_NETWORKS = (("ethernet", NetworkConfig.ethernet()),
                    ("atm", NetworkConfig.atm()))


@dataclass(frozen=True)
class AvailabilityPoint:
    """One (protocol, network, crash rate) cell of the study."""

    protocol: str
    network: str
    mttf_us: float           # 0.0 = crash-free baseline
    mttr_us: float           # 0.0 = crash-stop
    elapsed_cycles: float
    completion_rate: float   # finished workers / total workers
    crashes: float           # faults.crashes_total
    recoveries: float        # faults.recoveries_total
    mean_outage_cycles: float  # recovery latency (0 when no recovery)
    message_overhead: float  # packets sent / baseline packets sent
    retransmits: float       # transport.retransmits_total
    replayed: float          # faults.recovery_replayed_total
    crash_dropped: float     # faults.crash_dropped_packets_total


def _metric(registry, name: str) -> float:
    return registry.total(name) if name in registry else 0.0


def _mean_outage(registry) -> float:
    if "faults.recovery_outage_cycles" not in registry:
        return 0.0
    child = registry.get("faults.recovery_outage_cycles").labels()
    return child.sum / child.count if child.count else 0.0


def availability_sweep(app_factory: Callable,
                       config: Optional[MachineConfig] = None,
                       mttfs: Sequence[float] = DEFAULT_MTTFS,
                       mttr_us: float = DEFAULT_MTTR_US,
                       horizon_us: float = DEFAULT_HORIZON_US,
                       protocols: Sequence[str] = DEFAULT_PROTOCOLS,
                       networks: Sequence[Tuple[str, NetworkConfig]] =
                       DEFAULT_NETWORKS,
                       max_events: int = DEFAULT_MAX_EVENTS,
                       ) -> Dict[Tuple[str, str], List[AvailabilityPoint]]:
    """Run the grid; returns ``{(protocol, network): [point, ...]}``
    in ``mttfs`` order.

    ``app_factory`` is a zero-argument callable returning a fresh app
    instance.  Each cell executes in-process (crash-stop cells need
    ``allow_unfinished``, which the lab's cached path does not carry).
    The first entry of ``mttfs`` should be 0.0: it becomes the
    message-overhead baseline for its (protocol, network) row.
    """
    if config is None:
        config = MachineConfig(nprocs=4)
    if not mttfs:
        raise ValueError("mttfs must be non-empty")
    results: Dict[Tuple[str, str], List[AvailabilityPoint]] = {}
    for protocol in protocols:
        for net_name, network in networks:
            points: List[AvailabilityPoint] = []
            baseline_sent: Optional[float] = None
            for mttf in mttfs:
                if mttf:
                    faults = config.faults.replace(
                        crash_mttf_us=mttf, crash_mttr_us=mttr_us,
                        crash_horizon_us=horizon_us)
                    cell = config.replace(network=network,
                                          faults=faults)
                else:
                    # Crash-free baseline: force the transport so
                    # packet accounting exists and is comparable.
                    cell = config.replace(
                        network=network,
                        transport=dataclasses.replace(
                            config.transport, force=True))
                app = app_factory()
                machine = Machine(cell, protocol=protocol)
                shared = app.setup(machine)
                result = machine.run(
                    lambda proc: app.worker(
                        DsmApi(machine.nodes[proc]), proc, shared),
                    app=app.name, max_events=max_events,
                    allow_unfinished=True)
                finished, total = machine.completion()
                registry = result.registry
                sent = _metric(registry,
                               "transport.packets_sent_total")
                if baseline_sent is None:
                    baseline_sent = sent or 1.0
                points.append(AvailabilityPoint(
                    protocol=protocol,
                    network=net_name,
                    mttf_us=mttf,
                    mttr_us=mttr_us if mttf else 0.0,
                    elapsed_cycles=result.elapsed_cycles,
                    completion_rate=finished / total,
                    crashes=_metric(registry, "faults.crashes_total"),
                    recoveries=_metric(registry,
                                       "faults.recoveries_total"),
                    mean_outage_cycles=_mean_outage(registry),
                    message_overhead=sent / baseline_sent,
                    retransmits=_metric(
                        registry, "transport.retransmits_total"),
                    replayed=_metric(
                        registry, "faults.recovery_replayed_total"),
                    crash_dropped=_metric(
                        registry,
                        "faults.crash_dropped_packets_total"),
                ))
            results[(protocol, net_name)] = points
    return results


def format_availability_table(
        results: Dict[Tuple[str, str], List[AvailabilityPoint]]) -> str:
    """Render an availability sweep as a fixed-width text table."""
    lines = [f"{'proto':>6s} {'network':>9s} {'mttf_us':>9s} "
             f"{'complete':>8s} {'crashes':>7s} {'recov':>5s} "
             f"{'outage':>10s} {'msg_ovh':>8s} {'retx':>5s} "
             f"{'replay':>6s} {'dropped':>7s}"]
    for (protocol, network), points in results.items():
        for p in points:
            mttf = "-" if not p.mttf_us else f"{p.mttf_us:.0f}"
            lines.append(
                f"{protocol:>6s} {network:>9s} {mttf:>9s} "
                f"{p.completion_rate:8.2%} {p.crashes:7.0f} "
                f"{p.recoveries:5.0f} {p.mean_outage_cycles:10.0f} "
                f"{p.message_overhead:7.2f}x {p.retransmits:5.0f} "
                f"{p.replayed:6.0f} {p.crash_dropped:7.0f}")
    return "\n".join(lines)
