"""Generic parameter-sweep engine.

Runs the cartesian product of configuration axes over an application
and collects one flat record per run — the machinery behind custom
studies ("what if pages were 2 KB *and* the network 50 Mbit?") that
the fixed table/figure drivers don't cover.  Records export to CSV for
external analysis.
"""

from __future__ import annotations

import csv
import io
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.config import MachineConfig, NetworkConfig
from repro.core.metrics import RunResult
from repro.core.runner import run_app
from repro.lab import Lab, RunSpec

#: run-target axis names a :class:`repro.lab.RunSpec` can carry.
_SPEC_RUN_FIELDS = frozenset({"protocol", "protocol_options",
                              "lock_broadcast", "threads_per_proc",
                              "max_events"})


@dataclass
class SweepAxis:
    """One swept dimension: a name and its values.  ``apply`` maps a
    value onto (config, run_kwargs, app_kwargs) dictionaries."""

    name: str
    values: Sequence
    target: str = "config"  # "config" | "app" | "run"
    setter: Optional[Callable] = None

    def entries(self):
        return [(self.name, value) for value in self.values]


@dataclass
class SweepRecord:
    """One run's flattened outcome."""

    settings: Dict[str, object]
    elapsed_cycles: float
    speedup: Optional[float]
    messages: int
    sync_messages: int
    data_kbytes: float
    access_misses: int

    def as_row(self) -> Dict[str, object]:
        row = dict(self.settings)
        row.update(elapsed_cycles=self.elapsed_cycles,
                   speedup=self.speedup, messages=self.messages,
                   sync_messages=self.sync_messages,
                   data_kbytes=round(self.data_kbytes, 3),
                   access_misses=self.access_misses)
        return row


class Sweep:
    """Cartesian sweep over machine/app/run parameters.

    >>> sweep = Sweep(lambda **kw: Jacobi(n=64, iterations=3, **kw))
    >>> sweep.axis("nprocs", [2, 4, 8])
    >>> sweep.axis("protocol", ["lh", "ei"], target="run")
    >>> records = sweep.run()          # doctest: +SKIP
    """

    def __init__(self, app_factory: Optional[Callable] = None,
                 base_config: Optional[MachineConfig] = None,
                 baseline: bool = True, *,
                 app: Optional[str] = None,
                 app_params: Optional[dict] = None) -> None:
        if (app_factory is None) == (app is None):
            raise ValueError("pass exactly one of app_factory or app")
        self.app_factory = app_factory
        self.app = app
        self.app_params = dict(app_params or {})
        self.base_config = base_config or MachineConfig(
            network=NetworkConfig.atm())
        self.compute_baseline = baseline
        self.axes: List[SweepAxis] = []

    @classmethod
    def for_app(cls, name: str, params: Optional[dict] = None,
                base_config: Optional[MachineConfig] = None,
                baseline: bool = True) -> "Sweep":
        """A sweep over a named app, resolvable through a
        :class:`repro.lab.Lab` (parallel fan-out + result cache)."""
        return cls(app=name, app_params=params,
                   base_config=base_config, baseline=baseline)

    def axis(self, name: str, values: Sequence,
             target: str = "config",
             setter: Optional[Callable] = None) -> "Sweep":
        if target not in ("config", "app", "run"):
            raise ValueError(f"bad axis target {target!r}")
        self.axes.append(SweepAxis(name=name, values=list(values),
                                   target=target, setter=setter))
        return self

    def _resolve(self, settings: Dict[str, object]):
        """One combo's (config, app_kwargs, run_kwargs)."""
        config = self.base_config
        app_kwargs: Dict[str, object] = {}
        run_kwargs: Dict[str, object] = {}
        for axis in self.axes:
            value = settings[axis.name]
            if axis.setter is not None:
                config = axis.setter(config, value)
            elif axis.target == "config":
                config = config.replace(**{axis.name: value})
            elif axis.target == "app":
                app_kwargs[axis.name] = value
            else:
                run_kwargs[axis.name] = value
        return config, app_kwargs, run_kwargs

    @staticmethod
    def _record(settings: Dict[str, object], result: RunResult,
                baseline: Optional[RunResult]) -> SweepRecord:
        return SweepRecord(
            settings=settings,
            elapsed_cycles=result.elapsed_cycles,
            speedup=(result.speedup_over(baseline)
                     if baseline is not None else None),
            messages=result.total_messages,
            sync_messages=result.sync_messages,
            data_kbytes=result.data_kbytes,
            access_misses=result.access_misses)

    def run(self, lab: Optional[Lab] = None) -> List[SweepRecord]:
        if not self.axes:
            raise ValueError("sweep has no axes")
        combos = [dict(combo) for combo in itertools.product(
            *(axis.entries() for axis in self.axes))]
        if self.app is not None:
            return self._run_specs(combos, lab)
        if lab is not None:
            raise ValueError(
                "lab= requires an app-name sweep (Sweep.for_app); "
                "factory-based sweeps cannot cross process boundaries")
        return self._run_factory(combos)

    def _run_factory(self, combos) -> List[SweepRecord]:
        records: List[SweepRecord] = []
        baseline_cache: Dict[tuple, RunResult] = {}
        for settings in combos:
            config, app_kwargs, run_kwargs = self._resolve(settings)
            result = run_app(self.app_factory(**app_kwargs), config,
                             **run_kwargs)
            baseline = None
            if self.compute_baseline:
                key = tuple(sorted(app_kwargs.items()))
                baseline = baseline_cache.get(key)
                if baseline is None:
                    baseline = run_app(
                        self.app_factory(**app_kwargs),
                        config.replace(nprocs=1))
                    baseline_cache[key] = baseline
            records.append(self._record(settings, result, baseline))
        return records

    def _run_specs(self, combos,
                   lab: Optional[Lab]) -> List[SweepRecord]:
        """App-name mode: every cell (and each distinct baseline)
        becomes a :class:`RunSpec` resolved in one ``run_many`` batch,
        so the grid fans out across cores and repeats hit the cache."""
        if lab is None:
            lab = Lab()
        specs: List[RunSpec] = []
        main_slots: List[int] = []
        baseline_slots: Dict[tuple, int] = {}
        combo_keys: List[Optional[tuple]] = []
        for settings in combos:
            config, app_kwargs, run_kwargs = self._resolve(settings)
            bad = set(run_kwargs) - _SPEC_RUN_FIELDS
            if bad:
                raise ValueError(
                    f"run axes {sorted(bad)} not supported by RunSpec")
            params = {**self.app_params, **app_kwargs}
            main_slots.append(len(specs))
            specs.append(RunSpec(self.app, params, config=config,
                                 **run_kwargs))
            key = None
            if self.compute_baseline:
                key = tuple(sorted(app_kwargs.items()))
                if key not in baseline_slots:
                    baseline_slots[key] = len(specs)
                    specs.append(RunSpec(
                        self.app, params,
                        config=config.replace(nprocs=1)))
            combo_keys.append(key)
        results = lab.run_many(specs)
        return [self._record(settings, results[main_slots[i]],
                             results[baseline_slots[key]]
                             if key is not None else None)
                for i, (settings, key)
                in enumerate(zip(combos, combo_keys))]


def to_csv(records: Iterable[SweepRecord],
           path: Optional[str] = None) -> str:
    """Render sweep records as CSV; writes to ``path`` if given."""
    records = list(records)
    if not records:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer,
                            fieldnames=list(records[0].as_row()),
                            lineterminator="\n")
    writer.writeheader()
    for record in records:
        writer.writerow(record.as_row())
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
