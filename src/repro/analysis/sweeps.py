"""Generic parameter-sweep engine.

Runs the cartesian product of configuration axes over an application
and collects one flat record per run — the machinery behind custom
studies ("what if pages were 2 KB *and* the network 50 Mbit?") that
the fixed table/figure drivers don't cover.  Records export to CSV for
external analysis.
"""

from __future__ import annotations

import csv
import io
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.config import MachineConfig, NetworkConfig
from repro.core.metrics import RunResult
from repro.core.runner import run_app


@dataclass
class SweepAxis:
    """One swept dimension: a name and its values.  ``apply`` maps a
    value onto (config, run_kwargs, app_kwargs) dictionaries."""

    name: str
    values: Sequence
    target: str = "config"  # "config" | "app" | "run"
    setter: Optional[Callable] = None

    def entries(self):
        return [(self.name, value) for value in self.values]


@dataclass
class SweepRecord:
    """One run's flattened outcome."""

    settings: Dict[str, object]
    elapsed_cycles: float
    speedup: Optional[float]
    messages: int
    sync_messages: int
    data_kbytes: float
    access_misses: int

    def as_row(self) -> Dict[str, object]:
        row = dict(self.settings)
        row.update(elapsed_cycles=self.elapsed_cycles,
                   speedup=self.speedup, messages=self.messages,
                   sync_messages=self.sync_messages,
                   data_kbytes=round(self.data_kbytes, 3),
                   access_misses=self.access_misses)
        return row


class Sweep:
    """Cartesian sweep over machine/app/run parameters.

    >>> sweep = Sweep(lambda **kw: Jacobi(n=64, iterations=3, **kw))
    >>> sweep.axis("nprocs", [2, 4, 8])
    >>> sweep.axis("protocol", ["lh", "ei"], target="run")
    >>> records = sweep.run()          # doctest: +SKIP
    """

    def __init__(self, app_factory: Callable,
                 base_config: Optional[MachineConfig] = None,
                 baseline: bool = True) -> None:
        self.app_factory = app_factory
        self.base_config = base_config or MachineConfig(
            network=NetworkConfig.atm())
        self.compute_baseline = baseline
        self.axes: List[SweepAxis] = []

    def axis(self, name: str, values: Sequence,
             target: str = "config",
             setter: Optional[Callable] = None) -> "Sweep":
        if target not in ("config", "app", "run"):
            raise ValueError(f"bad axis target {target!r}")
        self.axes.append(SweepAxis(name=name, values=list(values),
                                   target=target, setter=setter))
        return self

    def run(self) -> List[SweepRecord]:
        if not self.axes:
            raise ValueError("sweep has no axes")
        records: List[SweepRecord] = []
        baseline_cache: Dict[tuple, RunResult] = {}
        combos = itertools.product(*(axis.entries()
                                     for axis in self.axes))
        for combo in combos:
            settings = dict(combo)
            config = self.base_config
            app_kwargs: Dict[str, object] = {}
            run_kwargs: Dict[str, object] = {}
            for axis in self.axes:
                value = settings[axis.name]
                if axis.setter is not None:
                    config = axis.setter(config, value)
                elif axis.target == "config":
                    config = config.replace(**{axis.name: value})
                elif axis.target == "app":
                    app_kwargs[axis.name] = value
                else:
                    run_kwargs[axis.name] = value
            result = run_app(self.app_factory(**app_kwargs), config,
                             **run_kwargs)
            speedup = None
            if self.compute_baseline:
                key = tuple(sorted(app_kwargs.items()))
                baseline = baseline_cache.get(key)
                if baseline is None:
                    baseline = run_app(
                        self.app_factory(**app_kwargs),
                        config.replace(nprocs=1))
                    baseline_cache[key] = baseline
                speedup = result.speedup_over(baseline)
            records.append(SweepRecord(
                settings=settings,
                elapsed_cycles=result.elapsed_cycles,
                speedup=speedup,
                messages=result.total_messages,
                sync_messages=result.sync_messages,
                data_kbytes=result.data_kbytes,
                access_misses=result.access_misses))
        return records


def to_csv(records: Iterable[SweepRecord],
           path: Optional[str] = None) -> str:
    """Render sweep records as CSV; writes to ``path`` if given."""
    records = list(records)
    if not records:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer,
                            fieldnames=list(records[0].as_row()),
                            lineterminator="\n")
    writer.writeheader()
    for record in records:
        writer.writerow(record.as_row())
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
