"""Profiling-guided hot-path analysis behind ``repro profile``.

Two complementary attributions of one simulated run
(docs/performance.md):

- **host-time** — where the *simulator's* Python cycles go, from
  cProfile, rolled up per subsystem (``repro.sim``, ``repro.mem``,
  ``repro.protocols``, ...) plus the classic top-N function table.
  This is what the hot-path optimization work steers by.
- **simulated-time** — where the *modelled machine's* cycles go, from
  the run's ``repro.obs`` metrics (:meth:`repro.RunResult.
  time_breakdown`: compute / lock wait / barrier wait / miss wait /
  overhead).  This is the paper's section 6.2 accounting and is
  byte-identical whether or not the profiler is attached.

Profiling is a side effect of simulating, so ``repro profile`` always
executes in-process and never touches the lab cache.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.metrics import RunResult
from repro.lab.spec import RunSpec, execute_spec

#: Subpackages host time is rolled up into; anything else inside
#: ``repro`` (cli, __init__, ...) lands in ``repro (other)`` and
#: everything outside the package in ``stdlib/other``.
SUBSYSTEMS = ("sim", "mem", "protocols", "net", "sync", "core",
              "apps", "obs", "lab", "analysis", "faults", "trace")

#: Protocol-time buckets: host self-time inside ``repro.mem`` /
#: ``repro.protocols`` split by *what kind* of consistency work it is.
#: This is the axis the hot-path work steers by — is a slow run paying
#: for interval bookkeeping (log maintenance, write-notice handling,
#: GC), for diff machinery (creation, RDIF encode/decode, application,
#: the diff store), or for vector-clock arithmetic?
PROTOCOL_BUCKETS = ("interval-bookkeeping", "diff", "vector-clock",
                    "protocol (other)")

#: Functions in ``repro/mem/intervals.py`` that belong to the
#: :class:`~repro.mem.intervals.DiffStore` (the file also holds the
#: interval log; pstats keys carry no class name).
_DIFFSTORE_FUNCS = frozenset({"put", "has", "key", "prune_intervals"})

#: Function-name fragments that classify ``repro.protocols`` code.
#: Checked in order; first hit wins.
_PROTO_FUNC_HINTS = (
    ("diff", "diff"),
    ("interval", "interval-bookkeeping"),
    ("incorporate", "interval-bookkeeping"),
    ("notice", "interval-bookkeeping"),
    ("garbage", "interval-bookkeeping"),
    ("gc", "interval-bookkeeping"),
    ("clock", "vector-clock"),
    ("vc", "vector-clock"),
)


def _protocol_bucket(filename: str, func: str) -> Optional[str]:
    """Bucket for one profiled function, or ``None`` when it is not
    protocol work (simulator, network, apps, ...).  File-based where a
    file is single-purpose, name-based inside the mixed files."""
    path = filename.replace("\\", "/")
    if "/repro/" not in path:
        return None
    tail = path.rsplit("/repro/", 1)[1]
    if tail.startswith("mem/"):
        module = tail.split("/", 1)[1]
        if module == "timestamps.py":
            return "vector-clock"
        if module in ("diffs.py", "wire.py"):
            return "diff"
        if module == "intervals.py":
            return ("diff" if func in _DIFFSTORE_FUNCS
                    else "interval-bookkeeping")
        return "interval-bookkeeping" if module == "copyset.py" \
            else "protocol (other)"
    if tail.startswith("protocols/"):
        lowered = func.lower()
        for fragment, bucket in _PROTO_FUNC_HINTS:
            if fragment in lowered:
                return bucket
        return "protocol (other)"
    return None


@dataclass
class Hotspot:
    """One row of the top-N function table."""

    where: str          # file:line(function), repo-relative
    ncalls: int
    tottime: float      # seconds inside the function itself
    cumtime: float      # seconds including callees


@dataclass
class ProfileReport:
    """Everything ``repro profile`` prints, as data."""

    label: str
    wall_seconds: float
    events: int
    events_per_second: float
    #: subsystem -> profiler self-time seconds (descending share).
    subsystem_seconds: Dict[str, float] = field(default_factory=dict)
    #: protocol bucket -> profiler self-time seconds inside the
    #: consistency machinery (see :data:`PROTOCOL_BUCKETS`).
    protocol_seconds: Dict[str, float] = field(default_factory=dict)
    #: activity -> fraction of simulated processor time (repro.obs).
    sim_time_breakdown: Dict[str, float] = field(default_factory=dict)
    hotspots: List[Hotspot] = field(default_factory=list)
    result: Optional[RunResult] = None


def _subsystem_of(filename: str) -> str:
    path = filename.replace("\\", "/")
    if "/repro/" not in path:
        return "stdlib/other"
    tail = path.rsplit("/repro/", 1)[1]
    head = tail.split("/", 1)[0]
    if head.endswith(".py"):
        head = head[:-3]
    return head if head in SUBSYSTEMS else "repro (other)"


def _short_location(filename: str, line: int, func: str) -> str:
    path = filename.replace("\\", "/")
    if "/repro/" in path:
        path = "repro/" + path.rsplit("/repro/", 1)[1]
    else:
        path = path.rsplit("/", 1)[-1]
    return f"{path}:{line}({func})"


def profile_spec(spec: RunSpec, top: int = 15) -> ProfileReport:
    """Execute ``spec`` under cProfile and attribute the cost both
    ways.  The profiled result is the normal, bit-identical
    :class:`RunResult` (the profiler observes; it never steers)."""
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        result = execute_spec(spec)
    finally:
        profiler.disable()
    wall = time.perf_counter() - started

    events = 0
    if result.registry is not None:
        metric = result.registry.get("sim.events_dispatched_total")
        events = int(metric.labels().value)

    stats = pstats.Stats(profiler)
    subsystems: Dict[str, float] = {}
    protocol: Dict[str, float] = {name: 0.0
                                  for name in PROTOCOL_BUCKETS}
    rows: List[Hotspot] = []
    for (filename, line, func), (_cc, ncalls, tottime, cumtime,
                                 _callers) in stats.stats.items():
        subsystem = _subsystem_of(filename)
        subsystems[subsystem] = subsystems.get(subsystem, 0.0) + tottime
        bucket = _protocol_bucket(filename, func)
        if bucket is not None:
            protocol[bucket] += tottime
        rows.append(Hotspot(
            where=_short_location(filename, line, func),
            ncalls=ncalls, tottime=tottime, cumtime=cumtime))
    rows.sort(key=lambda h: h.tottime, reverse=True)
    ordered = dict(sorted(subsystems.items(),
                          key=lambda kv: kv[1], reverse=True))

    return ProfileReport(
        label=spec.label(),
        wall_seconds=wall,
        events=events,
        events_per_second=(events / wall if wall > 0 else 0.0),
        subsystem_seconds=ordered,
        protocol_seconds=protocol,
        sim_time_breakdown=result.time_breakdown(),
        hotspots=rows[:max(0, top)],
        result=result,
    )


def format_profile(report: ProfileReport, top: int = 15) -> str:
    """Render a report the way ``repro profile`` prints it."""
    lines = [
        f"profile: {report.label} — {report.events:,} events in "
        f"{report.wall_seconds:.2f}s "
        f"({report.events_per_second:,.0f} events/s)",
        "",
        "simulated-time attribution (repro.obs):",
    ]
    if report.sim_time_breakdown:
        lines.append("  " + ", ".join(
            f"{name} {share:.0%}"
            for name, share in report.sim_time_breakdown.items()))
    else:
        lines.append("  (no node metrics)")
    lines += ["", "host-time by subsystem (cProfile self time):"]
    total = sum(report.subsystem_seconds.values()) or 1.0
    for name, seconds in report.subsystem_seconds.items():
        lines.append(f"  {name:<14s} {seconds / total:5.1%}  "
                     f"{seconds:7.3f}s")
    if report.protocol_seconds:
        lines += ["", "protocol-time buckets (cProfile self time in "
                      "repro.mem + repro.protocols):"]
        proto_total = sum(report.protocol_seconds.values()) or 1.0
        for name in PROTOCOL_BUCKETS:
            seconds = report.protocol_seconds.get(name, 0.0)
            lines.append(
                f"  {name:<21s} {seconds / proto_total:5.1%}  "
                f"{seconds:7.3f}s")
    shown = report.hotspots[:max(0, top)]
    lines += ["", f"top {len(shown)} functions by self time:",
              f"  {'ncalls':>9s} {'tottime':>8s} {'cumtime':>8s}  "
              "where"]
    for hot in shown:
        lines.append(f"  {hot.ncalls:9d} {hot.tottime:8.3f} "
                     f"{hot.cumtime:8.3f}  {hot.where}")
    return "\n".join(lines)
