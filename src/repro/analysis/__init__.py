"""Experiment drivers and reporting for the paper's tables/figures."""

from repro.analysis.experiments import (APP_PARAMS, Curve, FigureResult,
                                        fig6_jacobi_ethernet,
                                        fig7_9_jacobi_atm,
                                        fig10_12_tsp_atm,
                                        fig13_15_water_atm,
                                        fig16_18_cholesky_atm,
                                        protocol_sweep,
                                        sync_message_fraction,
                                        tab2_networks, tab3_overheads,
                                        tab4_cpu_speeds, tab5_page_size)
from repro.analysis.faults import (LossPoint, format_loss_table,
                                   loss_sweep)
from repro.analysis.report import (format_curve_table, format_matrix,
                                   paper_vs_measured)

__all__ = [
    "APP_PARAMS", "Curve", "FigureResult", "LossPoint",
    "fig6_jacobi_ethernet", "fig7_9_jacobi_atm", "fig10_12_tsp_atm",
    "fig13_15_water_atm", "fig16_18_cholesky_atm",
    "format_curve_table", "format_loss_table", "format_matrix",
    "loss_sweep", "paper_vs_measured", "protocol_sweep",
    "sync_message_fraction", "tab2_networks", "tab3_overheads",
    "tab4_cpu_speeds", "tab5_page_size",
]
