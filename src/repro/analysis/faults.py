"""Graceful-degradation study: protocol slowdown under message loss.

The paper assumes a reliable network; this driver asks how each
protocol would fare on a lossy one (docs/robustness.md).  For every
protocol it runs the same application across a list of drop
probabilities on the same network, reading the outcome from the
metrics registry (``transport.*`` / ``faults.*``), and reports the
slowdown of each lossy run relative to that protocol's own fault-free
run.  Because the fault plan is seeded, every cell of the resulting
table is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import FaultConfig, MachineConfig
from repro.core.runner import run_app
from repro.lab import Lab, RunSpec
from repro.protocols import PROTOCOL_NAMES

DEFAULT_RATES = (0.0, 0.001, 0.01, 0.05)


@dataclass(frozen=True)
class LossPoint:
    """One (protocol, drop rate) cell of the degradation study."""

    protocol: str
    drop_prob: float
    elapsed_cycles: float
    slowdown: float          # vs the same protocol's fault-free run
    drops: float             # faults.drops_total
    retransmits: float       # transport.retransmits_total
    timeout_fires: float     # transport.timeout_fires_total
    duplicates_suppressed: float


def _metric(registry, name: str) -> float:
    """A registry total, or 0.0 when the metric was never installed
    (fault-free runs carry no ``transport.*``/``faults.*`` series)."""
    return registry.total(name) if name in registry else 0.0


def loss_sweep(app_factory: Optional[Callable] = None,
               config: Optional[MachineConfig] = None,
               rates: Sequence[float] = DEFAULT_RATES,
               protocols: Optional[Sequence[str]] = None,
               *,
               app: Optional[str] = None,
               app_params: Optional[dict] = None,
               lab: Optional[Lab] = None,
               ) -> Dict[str, List[LossPoint]]:
    """Run the application for every protocol at every drop rate.

    Pass either a legacy ``app_factory`` (a zero-argument callable
    returning a fresh app instance, always run serially in-process) or
    an ``app`` name with ``app_params``, in which case each cell
    becomes a :class:`repro.lab.RunSpec` and the whole grid resolves
    through ``lab`` (fanned across cores and cached when the lab is
    configured to).

    The first entry of ``rates`` is each protocol's slowdown baseline
    (pass 0.0 first — the default — to measure against a fault-free
    run).  Returns ``{protocol: [LossPoint, ...]}`` in rate order.
    """
    if not rates:
        raise ValueError("rates must be non-empty")
    if (app_factory is None) == (app is None):
        raise ValueError("pass exactly one of app_factory or app")
    if config is None:
        raise ValueError("config is required")
    protocols = list(protocols) if protocols else list(PROTOCOL_NAMES)

    if app is not None:
        if lab is None:
            lab = Lab()
        specs = [RunSpec(app, app_params or {}, protocol=protocol,
                         config=config.replace(
                             faults=config.faults.replace(
                                 drop_prob=rate)))
                 for protocol in protocols for rate in rates]
        run_results = iter(lab.run_many(specs))

        def _cell(protocol: str, rate: float):
            return next(run_results)
    else:
        def _cell(protocol: str, rate: float):
            faults = config.faults.replace(drop_prob=rate)
            return run_app(app_factory(),
                           config.replace(faults=faults),
                           protocol=protocol)

    results: Dict[str, List[LossPoint]] = {}
    for protocol in protocols:
        points: List[LossPoint] = []
        baseline: Optional[float] = None
        for rate in rates:
            result = _cell(protocol, rate)
            if baseline is None:
                baseline = result.elapsed_cycles
            registry = result.registry
            points.append(LossPoint(
                protocol=protocol,
                drop_prob=rate,
                elapsed_cycles=result.elapsed_cycles,
                slowdown=result.elapsed_cycles / baseline,
                drops=_metric(registry, "faults.drops_total"),
                retransmits=_metric(
                    registry, "transport.retransmits_total"),
                timeout_fires=_metric(
                    registry, "transport.timeout_fires_total"),
                duplicates_suppressed=_metric(
                    registry, "transport.duplicates_suppressed_total"),
            ))
        results[protocol] = points
    return results


def format_loss_table(results: Dict[str, List[LossPoint]]) -> str:
    """Render a loss sweep as a fixed-width text table."""
    lines = [f"{'proto':>6s} {'loss':>7s} {'elapsed':>12s} "
             f"{'slowdown':>9s} {'drops':>6s} {'retx':>5s} "
             f"{'timeouts':>8s} {'dup_supp':>8s}"]
    for protocol, points in results.items():
        for p in points:
            lines.append(
                f"{protocol:>6s} {p.drop_prob:7.1%} "
                f"{p.elapsed_cycles:12.0f} {p.slowdown:8.2f}x "
                f"{p.drops:6.0f} {p.retransmits:5.0f} "
                f"{p.timeout_fires:8.0f} "
                f"{p.duplicates_suppressed:8.0f}")
    return "\n".join(lines)
