"""Ablation studies for the design choices DESIGN.md calls out.

Each function isolates one mechanism and returns paired measurements
so its contribution can be quantified:

1. run-length diffs vs whole-page transfer pricing;
2. the hybrid's copyset piggyback heuristic (copyset/always/never);
3. lock forwarding through the static owner vs broadcast requests;
4. Ethernet collision modelling (see Table 2);
5. the lazy protocols' doubled per-byte software overhead.

Every run resolves through a :class:`repro.lab.Lab` (pass ``lab=`` to
share a cache with other drivers, as ``repro report`` does).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.experiments import APP_PARAMS
from repro.core.config import (MachineConfig, NetworkConfig,
                               OverheadConfig)
from repro.core.metrics import RunResult
from repro.lab import Lab, RunSpec


def _run(app: str, scale: str, nprocs: int, protocol: str,
         protocol_options: Optional[dict] = None,
         lock_broadcast: bool = False,
         overhead: Optional[OverheadConfig] = None,
         lab: Optional[Lab] = None) -> RunResult:
    config = MachineConfig(nprocs=nprocs, network=NetworkConfig.atm())
    if overhead is not None:
        config = config.replace(overhead=overhead)
    spec = RunSpec(app, APP_PARAMS[scale][app], protocol=protocol,
                   config=config, protocol_options=protocol_options,
                   lock_broadcast=lock_broadcast)
    return (lab if lab is not None else Lab()).run(spec)


def ablate_diff_encoding(app: str = "water", nprocs: int = 16,
                         scale: str = "bench",
                         lab: Optional[Lab] = None
                         ) -> Dict[str, RunResult]:
    """Diffs vs whole pages: price every diff at the full page size,
    modelling a DSM without run-length encoding.  The paper's diffs
    are what keep the update protocols' data volume reasonable."""
    return {
        "diffs": _run(app, scale, nprocs, "lh", lab=lab),
        "whole_pages": _run(app, scale, nprocs, "lh",
                            protocol_options={
                                "price_diffs_as_pages": True},
                            lab=lab),
    }


def ablate_hybrid_heuristic(app: str = "water", nprocs: int = 16,
                            scale: str = "bench",
                            lab: Optional[Lab] = None
                            ) -> Dict[str, RunResult]:
    """LH's copyset piggyback rule vs always-push vs never-push.
    'never' degenerates toward LI (more misses); 'always' toward LU's
    data volume (useless diffs for uncached pages)."""
    return {policy: _run(app, scale, nprocs, "lh",
                         protocol_options={"piggyback_policy": policy},
                         lab=lab)
            for policy in ("copyset", "always", "never")}


def ablate_lock_broadcast(app: str = "cholesky", nprocs: int = 8,
                          scale: str = "bench",
                          lab: Optional[Lab] = None
                          ) -> Dict[str, RunResult]:
    """Owner-forwarded lock requests (3 messages, up to 2 hops) vs
    broadcast requests (n messages, 1 hop): the latency/message-count
    trade the paper's conclusion points at."""
    return {
        "forwarding": _run(app, scale, nprocs, "lh", lab=lab),
        "broadcast": _run(app, scale, nprocs, "lh",
                          lock_broadcast=True, lab=lab),
    }


def ablate_lazy_overhead_factor(app: str = "water", nprocs: int = 16,
                                scale: str = "bench",
                                lab: Optional[Lab] = None
                                ) -> Dict[str, RunResult]:
    """The simulation charges lazy protocols double the per-byte
    software overhead for their extra complexity; this quantifies how
    much of the eager/lazy gap that assumption gives back."""
    return {
        "doubled": _run(app, scale, nprocs, "lh", lab=lab),
        "flat": _run(app, scale, nprocs, "lh",
                     overhead=OverheadConfig(lazy_per_byte_factor=1.0),
                     lab=lab),
    }
