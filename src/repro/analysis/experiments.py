"""Experiment drivers: one function per table/figure of the paper.

Every driver runs the relevant protocol/application/network sweep and
returns a structured result carrying both our measurements and the
paper's reference numbers, so the benchmarks can print
paper-vs-measured rows.  Problem sizes are scaled down from the paper
(512x512 Jacobi, 18-city TSP, 288-molecule Water, bcsstk14 Cholesky)
to keep the pure-Python simulation fast; pass ``scale="paper"`` for
full-size runs where feasible.

Every driver resolves its runs through a :class:`repro.lab.Lab`
(pass one to parallelize across cores and cache results on disk; by
default each driver uses a private in-memory lab).  Sharing one lab
across drivers — as ``repro report`` does — dedupes the repeated
one-processor baselines and identical cells between tables, so each
unique configuration simulates exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.apps import create_app
from repro.core.config import (ATM_MBPS, ETHERNET_MBPS, GIGABIT_MBPS,
                               SMALL_PAGE_SIZE, MachineConfig,
                               NetworkConfig, OverheadConfig)
from repro.core.metrics import RunResult
from repro.lab import Lab, RunSpec
from repro.protocols import PROTOCOL_NAMES

#: Scaled-down application parameters per preset.
APP_PARAMS: Dict[str, Dict[str, dict]] = {
    "small": {  # unit tests: seconds for the whole suite
        "jacobi": dict(n=48, iterations=3),
        "tsp": dict(ncities=8),
        "water": dict(nmols=20, steps=1),
        "cholesky": dict(k=4),
    },
    # The bench preset is calibrated so the cycles of computation per
    # off-node synchronization at 16 processors land near the paper's
    # reported grains (Jacobi ~324K, TSP ~189K, Water ~19K, Cholesky
    # ~4K), despite the scaled-down problem sizes.
    "bench": {  # benchmark harness default
        "jacobi": dict(n=512, iterations=4),
        "tsp": dict(ncities=10, cycles_per_node=1000),
        "water": dict(nmols=96, steps=2, cycles_per_pair=3700),
        # cycle_scale stands in for bcsstk14's much larger columns
        # (n=1806 vs our 36): it lifts the real work per column so the
        # sequential baseline is meaningful while the synchronization
        # rate stays fine-grained.
        "cholesky": dict(k=6, cycle_scale=200),
    },
    "large": {  # closer to the paper's sizes; minutes of wall time
        "jacobi": dict(n=512, iterations=10),
        "tsp": dict(ncities=12, queue_depth=3, cycles_per_node=1000),
        "water": dict(nmols=160, steps=2, cycles_per_pair=2200),
        "cholesky": dict(k=10, cycle_scale=100),
    },
}

DEFAULT_PROCS = [1, 2, 4, 8, 16]


@dataclass
class Curve:
    """One protocol's series across processor counts."""

    protocol: str
    speedup: Dict[int, float] = field(default_factory=dict)
    messages: Dict[int, int] = field(default_factory=dict)
    data_kbytes: Dict[int, float] = field(default_factory=dict)
    results: Dict[int, RunResult] = field(default_factory=dict)


@dataclass
class FigureResult:
    """Measured curves for one figure group, plus paper context."""

    figure: str
    title: str
    app: str
    curves: Dict[str, Curve]
    baseline_cycles: float
    paper_notes: str = ""

    def best_protocol_at(self, nprocs: int) -> str:
        return max(self.curves,
                   key=lambda p: self.curves[p].speedup.get(nprocs, 0.0))


def _app_factory(app: str, scale: str) -> Callable:
    params = APP_PARAMS[scale][app]
    return lambda: create_app(app, **params)


def _ensure_lab(lab: Optional[Lab]) -> Lab:
    return lab if lab is not None else Lab()


def protocol_sweep(app: str, network: NetworkConfig,
                   proc_counts: Sequence[int] = DEFAULT_PROCS,
                   protocols: Sequence[str] = PROTOCOL_NAMES,
                   scale: str = "bench",
                   config: Optional[MachineConfig] = None,
                   lab: Optional[Lab] = None) -> FigureResult:
    """Run ``app`` under each protocol across processor counts."""
    lab = _ensure_lab(lab)
    params = APP_PARAMS[scale][app]
    base_config = config or MachineConfig()
    specs = [RunSpec(app, params, protocol="lh",
                     config=base_config.replace(nprocs=1,
                                                network=network))]
    index: Dict[tuple, int] = {}
    for protocol in protocols:
        for nprocs in proc_counts:
            if nprocs == 1:
                continue
            index[(protocol, nprocs)] = len(specs)
            specs.append(RunSpec(
                app, params, protocol=protocol,
                config=base_config.replace(nprocs=nprocs,
                                           network=network)))
    results = lab.run_many(specs)
    baseline = results[0]
    curves: Dict[str, Curve] = {}
    for protocol in protocols:
        curve = Curve(protocol=protocol)
        for nprocs in proc_counts:
            result = (baseline if nprocs == 1
                      else results[index[(protocol, nprocs)]])
            curve.speedup[nprocs] = result.speedup_over(baseline)
            # Message/data series come from the metrics registry
            # (``dsm.messages_total`` / ``dsm.data_bytes_total``; see
            # docs/observability.md).
            curve.messages[nprocs] = int(
                result.metric_total("dsm.messages_total"))
            curve.data_kbytes[nprocs] = \
                result.metric_total("dsm.data_bytes_total") / 1024.0
            curve.results[nprocs] = result
        curves[protocol] = curve
    return FigureResult(figure="", title="", app=app, curves=curves,
                        baseline_cycles=baseline.elapsed_cycles)


# ----------------------------------------------------------------------
# Figures 6-18
# ----------------------------------------------------------------------

def fig6_jacobi_ethernet(scale: str = "bench",
                         proc_counts: Sequence[int] = DEFAULT_PROCS,
                         lab: Optional[Lab] = None) -> FigureResult:
    """Figure 6: Jacobi speedup on the 10 Mbit Ethernet — peaks around
    8 processors (paper: 5.2) and declines."""
    result = protocol_sweep("jacobi", NetworkConfig.ethernet(),
                            proc_counts, scale=scale, lab=lab)
    result.figure = "fig6"
    result.title = "Speedup for Jacobi on Ethernet"
    result.paper_notes = ("paper: peaks ~5.2 at 8 procs, declines at "
                          "16; bandwidth + barrier contention bound")
    return result


def _atm_figures(app: str, figure: str, title: str, notes: str,
                 scale: str, proc_counts: Sequence[int],
                 lab: Optional[Lab] = None) -> FigureResult:
    result = protocol_sweep(app, NetworkConfig.atm(), proc_counts,
                            scale=scale, lab=lab)
    result.figure = figure
    result.title = title
    result.paper_notes = notes
    return result


def fig7_9_jacobi_atm(scale: str = "bench",
                      proc_counts: Sequence[int] = DEFAULT_PROCS,
                      lab: Optional[Lab] = None) -> FigureResult:
    """Figures 7-9: Jacobi on ATM — good speedup for all protocols
    (paper: ~14 at 16 procs); EI moves the most data (whole pages)."""
    return _atm_figures(
        "jacobi", "fig7-9", "Jacobi on ATM (speedup/messages/data)",
        "paper: ~14x at 16p, protocols within ~10%; EI data highest",
        scale, proc_counts, lab=lab)


def fig10_12_tsp_atm(scale: str = "bench",
                     proc_counts: Sequence[int] = DEFAULT_PROCS,
                     lab: Optional[Lab] = None) -> FigureResult:
    """Figures 10-12: TSP on ATM — eager slightly beats lazy (stale
    global minimum prunes worse under lazy)."""
    return _atm_figures(
        "tsp", "fig10-12", "TSP on ATM (speedup/messages/data)",
        "paper: eager >= lazy (fresher bound); queue lock contention",
        scale, proc_counts, lab=lab)


def fig13_15_water_atm(scale: str = "bench",
                       proc_counts: Sequence[int] = DEFAULT_PROCS,
                       lab: Optional[Lab] = None) -> FigureResult:
    """Figures 13-15: Water on ATM — LH best; lazy > eager; EU sends
    an order of magnitude more messages."""
    return _atm_figures(
        "water", "fig13-15", "Water on ATM (speedup/messages/data)",
        "paper: LH best (migratory molecules); EU ~10x messages",
        scale, proc_counts, lab=lab)


def fig16_18_cholesky_atm(scale: str = "bench",
                          proc_counts: Sequence[int] = DEFAULT_PROCS,
                          lab: Optional[Lab] = None) -> FigureResult:
    """Figures 16-18: Cholesky on ATM — speedup <= ~1.3 under every
    protocol; synchronization dominates (96% of messages)."""
    return _atm_figures(
        "cholesky", "fig16-18",
        "Cholesky on ATM (speedup/messages/data)",
        "paper: <=1.3x all protocols; lazy moves far less than eager",
        scale, proc_counts, lab=lab)


# ----------------------------------------------------------------------
# Tables 2-5
# ----------------------------------------------------------------------

#: Table 2's five networks (name, config).
TABLE2_NETWORKS: List = [
    ("10Mb Ethernet w/ coll", NetworkConfig.ethernet(collisions=True)),
    ("10Mb Ethernet w/o coll",
     NetworkConfig.ethernet(collisions=False)),
    ("10Mb ATM", NetworkConfig.atm(ETHERNET_MBPS)),
    ("100Mb ATM", NetworkConfig.atm(ATM_MBPS)),
    ("1Gb ATM", NetworkConfig.atm(GIGABIT_MBPS)),
]

#: Paper's Table 2 rows (LH, 16 processors): jacobi, water speedups.
TABLE2_PAPER = {
    "10Mb Ethernet w/ coll": (5.2, None),
    "10Mb Ethernet w/o coll": (None, None),
    "10Mb ATM": (None, None),
    "100Mb ATM": (14.0, None),
    "1Gb ATM": (None, None),
}


def tab2_networks(scale: str = "bench", nprocs: int = 16,
                  lab: Optional[Lab] = None
                  ) -> Dict[str, Dict[str, float]]:
    """Table 2: Jacobi and Water speedups (LH) on five networks."""
    lab = _ensure_lab(lab)
    apps = ("jacobi", "water")
    specs: List[RunSpec] = []
    for app in apps:
        params = APP_PARAMS[scale][app]
        specs.append(RunSpec(app, params,
                             config=MachineConfig(nprocs=1)))
        for _name, network in TABLE2_NETWORKS:
            specs.append(RunSpec(
                app, params, protocol="lh",
                config=MachineConfig(nprocs=nprocs,
                                     network=network)))
    results = iter(lab.run_many(specs))
    rows: Dict[str, Dict[str, float]] = {}
    for app in apps:
        baseline = next(results)
        for name, _network in TABLE2_NETWORKS:
            rows.setdefault(name, {})[app] = \
                next(results).speedup_over(baseline)
    return rows


def tab3_overheads(scale: str = "bench", nprocs: int = 16,
                   apps: Sequence[str] = ("jacobi", "tsp", "water",
                                          "cholesky"),
                   protocols: Sequence[str] = PROTOCOL_NAMES,
                   lab: Optional[Lab] = None
                   ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Table 3: speedups with zero / normal / double software overhead
    (16 processors, ATM)."""
    lab = _ensure_lab(lab)
    levels = (("zero", 0.0), ("normal", 1.0), ("double", 2.0))
    specs: List[RunSpec] = []
    for app in apps:
        params = APP_PARAMS[scale][app]
        for _label, overhead_scale in levels:
            config = MachineConfig(
                nprocs=nprocs, network=NetworkConfig.atm(),
                overhead=OverheadConfig(scale=overhead_scale))
            specs.append(RunSpec(app, params,
                                 config=config.replace(nprocs=1)))
            for protocol in protocols:
                specs.append(RunSpec(app, params, protocol=protocol,
                                     config=config))
    results = iter(lab.run_many(specs))
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app in apps:
        out[app] = {}
        for label, _overhead_scale in levels:
            baseline = next(results)
            out[app][label] = {
                protocol: next(results).speedup_over(baseline)
                for protocol in protocols}
    return out


def tab4_cpu_speeds(scale: str = "bench", nprocs: int = 16,
                    speeds_mhz: Sequence[float] = (20.0, 40.0, 80.0),
                    apps: Sequence[str] = ("jacobi", "tsp", "water",
                                           "cholesky"),
                    lab: Optional[Lab] = None
                    ) -> Dict[str, Dict[float, float]]:
    """Table 4: LH speedups at different processor speeds.  The
    network stays fixed in physical time, so faster processors shift
    the compute/communication ratio against the DSM."""
    lab = _ensure_lab(lab)
    specs: List[RunSpec] = []
    for app in apps:
        params = APP_PARAMS[scale][app]
        for mhz in speeds_mhz:
            config = MachineConfig(nprocs=nprocs, cpu_mhz=mhz,
                                   network=NetworkConfig.atm())
            specs.append(RunSpec(app, params,
                                 config=config.replace(nprocs=1)))
            specs.append(RunSpec(app, params, protocol="lh",
                                 config=config))
    results = iter(lab.run_many(specs))
    out: Dict[str, Dict[float, float]] = {}
    for app in apps:
        out[app] = {}
        for mhz in speeds_mhz:
            baseline = next(results)
            out[app][mhz] = next(results).speedup_over(baseline)
    return out


def tab5_page_size(scale: str = "bench",
                   proc_counts: Sequence[int] = (8, 16),
                   apps: Sequence[str] = ("jacobi", "tsp", "water",
                                          "cholesky"),
                   lab: Optional[Lab] = None
                   ) -> Dict[str, Dict[int, Dict[int, float]]]:
    """Table 5: LH speedups with 4096- vs 1024-byte pages.  Smaller
    pages reduce false sharing but raise the miss count."""
    lab = _ensure_lab(lab)
    page_sizes = (4096, SMALL_PAGE_SIZE)
    specs: List[RunSpec] = []
    for app in apps:
        params = APP_PARAMS[scale][app]
        for page_size in page_sizes:
            config = MachineConfig(page_size=page_size,
                                   network=NetworkConfig.atm())
            specs.append(RunSpec(app, params,
                                 config=config.replace(nprocs=1)))
            for nprocs in proc_counts:
                specs.append(RunSpec(
                    app, params, protocol="lh",
                    config=config.replace(nprocs=nprocs)))
    results = iter(lab.run_many(specs))
    out: Dict[str, Dict[int, Dict[int, float]]] = {}
    for app in apps:
        out[app] = {}
        for page_size in page_sizes:
            baseline = next(results)
            out[app][page_size] = {
                nprocs: next(results).speedup_over(baseline)
                for nprocs in proc_counts}
    return out


def sync_message_fraction(app: str, protocol: str = "lh",
                          nprocs: int = 16,
                          scale: str = "bench",
                          lab: Optional[Lab] = None) -> float:
    """Section 6.2's headline statistic: the fraction of all messages
    that exist purely for synchronization (paper: 83% for Water, 96%
    for Cholesky)."""
    result = _ensure_lab(lab).run(RunSpec(
        app, APP_PARAMS[scale][app], protocol=protocol,
        config=MachineConfig(nprocs=nprocs,
                             network=NetworkConfig.atm())))
    total = result.metric_total("dsm.messages_total")
    if total == 0:
        return 0.0
    return result.registry_sync_messages() / total
