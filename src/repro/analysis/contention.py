"""Contention profiles: where did the waiting happen?

Digests a causal trace into per-lock, per-page, and per-link
profiles — wait-time totals, maxima, and coarse histograms — the
"top-N hot spots" view that complements the critical path (a lock can
burn enormous aggregate wait without ever gating the run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.obs.causal import CausalTrace

#: Wait-time histogram bucket upper bounds (cycles).
BUCKETS = (1_000.0, 10_000.0, 100_000.0, 1_000_000.0, float("inf"))


def _bucket_index(value: float) -> int:
    for index, bound in enumerate(BUCKETS):
        if value <= bound:
            return index
    return len(BUCKETS) - 1


@dataclass
class WaitProfile:
    """Wait-time accounting for one contended resource."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0
    histogram: List[int] = field(
        default_factory=lambda: [0] * len(BUCKETS))

    def add(self, waited: float) -> None:
        self.count += 1
        self.total += waited
        if waited > self.max:
            self.max = waited
        self.histogram[_bucket_index(waited)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class LinkProfile(WaitProfile):
    """Per-link traffic: wait is medium/port queueing."""

    messages: int = 0
    wire: float = 0.0
    backoff: float = 0.0


@dataclass
class ContentionReport:
    locks: Dict[int, WaitProfile] = field(default_factory=dict)
    pages: Dict[int, WaitProfile] = field(default_factory=dict)
    links: Dict[Tuple[int, int], LinkProfile] = field(
        default_factory=dict)
    #: cold-miss counts folded into the page profile
    cold_faults: Dict[int, int] = field(default_factory=dict)

    def top_locks(self, n: int = 10) -> List[Tuple[int, WaitProfile]]:
        return sorted(self.locks.items(),
                      key=lambda kv: kv[1].total, reverse=True)[:n]

    def top_pages(self, n: int = 10) -> List[Tuple[int, WaitProfile]]:
        return sorted(self.pages.items(),
                      key=lambda kv: kv[1].total, reverse=True)[:n]

    def top_links(self, n: int = 10
                  ) -> List[Tuple[Tuple[int, int], LinkProfile]]:
        return sorted(self.links.items(),
                      key=lambda kv: kv[1].total, reverse=True)[:n]


def contention_report(trace: CausalTrace) -> ContentionReport:
    """Build the three profiles from one run's trace."""
    report = ContentionReport()
    fault_start: Dict[Tuple[int, int], bool] = {}
    for event in trace.events:
        name = event.name
        fields = event.fields
        if name == "sync.lock_acquired":
            lock = fields.get("lock")
            profile = report.locks.setdefault(lock, WaitProfile())
            profile.add(fields.get("wait_cycles", 0.0))
        elif name == "protocol.page_fault":
            key = (fields.get("node"), fields.get("page"))
            fault_start[key] = bool(fields.get("cold"))
        elif name == "protocol.fault_done":
            page = fields.get("page")
            profile = report.pages.setdefault(page, WaitProfile())
            profile.add(fields.get("waited", 0.0))
            key = (fields.get("node"), page)
            if fault_start.pop(key, False):
                report.cold_faults[page] = (
                    report.cold_faults.get(page, 0) + 1)
    for message in trace.messages.values():
        if message.accept_ts is None:
            continue
        key = (message.src, message.dst)
        profile = report.links.setdefault(key, LinkProfile())
        profile.add(message.waited)
        profile.messages += 1
        profile.wire += message.wire
        profile.backoff += message.backoff
    return report


def _histogram_cell(profile: WaitProfile) -> str:
    return "/".join(str(count) for count in profile.histogram)


def format_contention(report: ContentionReport, top: int = 10) -> str:
    """Human-readable top-N tables (buckets: <=1k/<=10k/<=100k/<=1M/
    >1M cycles)."""
    lines: List[str] = []
    lines.append(f"hot locks (top {top} by total wait):")
    if not report.locks:
        lines.append("  (none)")
    for lock, profile in report.top_locks(top):
        lines.append(
            f"  lock {lock:<6} acquires {profile.count:>6} "
            f"total {profile.total:>14,.0f} mean {profile.mean:>10,.0f}"
            f" max {profile.max:>12,.0f}  [{_histogram_cell(profile)}]")
    lines.append(f"hot pages (top {top} by total miss wait):")
    if not report.pages:
        lines.append("  (none)")
    for page, profile in report.top_pages(top):
        cold = report.cold_faults.get(page, 0)
        lines.append(
            f"  page {page:<6} faults {profile.count:>6} "
            f"(cold {cold}) total {profile.total:>14,.0f} "
            f"mean {profile.mean:>10,.0f} max {profile.max:>12,.0f}"
            f"  [{_histogram_cell(profile)}]")
    lines.append(f"hot links (top {top} by total queueing):")
    if not report.links:
        lines.append("  (none)")
    for (src, dst), profile in report.top_links(top):
        lines.append(
            f"  {src}->{dst:<4} messages {profile.messages:>7} "
            f"wire {profile.wire:>14,.0f} waited {profile.total:>14,.0f}"
            f" backoff {profile.backoff:>12,.0f}")
    return "\n".join(lines)
