"""Bench regression sentinel: watch the benchmark trajectory.

``benchmarks/`` emits raw records (``BENCH_core.json``,
``BENCH_core32.json``, ``BENCH_lab.json``, the serving sweep) whose
shapes differ per harness and whose noise characteristics are known
only to their harnesses.  This module reads them all, applies one
robust comparison against the committed baselines, and emits a single
normalized, schema-versioned ``BENCH_summary.json`` — the artifact a
human (or the next PR's CI) compares across revisions.

The comparison is the *paired median ratio* (the method BENCH_core
uses for its tracer-overhead gate): every per-round rate in the fresh
record pairs positionally with the baseline record's round in the
same (interpreter, round) slot, and the verdict is the median-low of
the per-pair ratios.  Pairing keeps slot-correlated effects (early
rounds colder, later interpreters on a busier machine) out of the
estimate, and the median ignores individual outlier rounds entirely —
compared with best-of vs best-of, which inherits whichever single
round was luckiest in each record.

On a flagged regression the sentinel can *attribute*: it re-profiles
the recorded workload (``repro.analysis.profiling``) and reports the
top subsystem and protocol buckets — a hint for where the cycles
went, computed only when something actually regressed (profiling
costs a run).

Run it as a module::

    PYTHONPATH=src python -m repro.analysis.regression \
        --core BENCH_core.json --lab BENCH_lab.json \
        --out BENCH_summary.json

Exit status 1 when any section's verdict is ``regression``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

#: Bumped whenever the summary layout changes.
BENCH_SUMMARY_SCHEMA = "repro.bench.summary/1"

#: Default fractional drop that counts as a regression, per record
#: (matches benchmarks/check_core_regression.py: the core32 arm runs
#: reduced sampling in CI so it gets more slack).
DEFAULT_THRESHOLD = 0.10
DEFAULT_THRESHOLD32 = 0.15

#: A serving cell's capacity is the highest offered load whose SLO
#: attainment still meets this fraction.
CAPACITY_ATTAINMENT = 0.9


def _median_low(values: List[float]) -> float:
    """Median that is always one of the samples (mirrors the
    benchmark harnesses)."""
    ordered = sorted(values)
    return ordered[(len(ordered) - 1) // 2]


def paired_median_ratio(fresh_round_rates: List[List[float]],
                        baseline_round_rates: List[List[float]]
                        ) -> float:
    """Median-low of positionally-paired fresh/baseline rate ratios.

    Round lists are per-interpreter; rounds pair by (interpreter,
    round) slot and unmatched tail slots are dropped, so records with
    different sampling effort still compare over their common
    prefix."""
    ratios = [
        fresh / base
        for fresh_rates, base_rates in zip(fresh_round_rates,
                                           baseline_round_rates)
        for fresh, base in zip(fresh_rates, base_rates)
        if base > 0]
    if not ratios:
        raise ValueError("no pairable rounds between the records")
    return _median_low(ratios)


def _load(path: Optional[str]) -> Optional[dict]:
    if path is None or not Path(path).exists():
        return None
    return json.loads(Path(path).read_text())


def _attribution(workload: dict) -> dict:
    """Profile the recorded workload and report where time goes —
    the hint attached to a flagged regression."""
    from repro.analysis.profiling import profile_spec
    from repro.lab.spec import RunSpec

    report = profile_spec(RunSpec.from_dict(workload))
    total = sum(report.subsystem_seconds.values()) or 1.0
    subsystems = sorted(report.subsystem_seconds.items(),
                        key=lambda kv: kv[1], reverse=True)
    protocol_total = sum(report.protocol_seconds.values()) or 1.0
    buckets = sorted(report.protocol_seconds.items(),
                     key=lambda kv: kv[1], reverse=True)
    return {
        "top_subsystems": [
            {"subsystem": name, "share": round(seconds / total, 3)}
            for name, seconds in subsystems[:3]],
        "top_protocol_buckets": [
            {"bucket": name,
             "share": round(seconds / protocol_total, 3)}
            for name, seconds in buckets[:3]],
    }


def core_section(record: Optional[dict], baseline: Optional[dict],
                 threshold: float, attribute: bool = False) -> dict:
    """Normalized verdict for one core-benchmark record."""
    if record is None:
        return {"status": "missing"}
    section = {
        "events": record["events"],
        "events_per_second": record["events_per_second"],
        "rate_spread": record["rate_spread"],
        "tracer_overhead": record["tracer_nullsink_overhead"],
        "byte_identical": record["byte_identical"],
        "threshold": threshold,
    }
    if not record["byte_identical"]:
        section["status"] = "anomaly"
        section["detail"] = ("run diverged from the golden dump — "
                             "a correctness problem, not a speed one")
        return section
    if baseline is None:
        section["status"] = "no-baseline"
        return section
    ratio = paired_median_ratio(record["round_rates"],
                                baseline["round_rates"])
    section["median_ratio_vs_baseline"] = round(ratio, 4)
    if ratio < 1.0 - threshold:
        section["status"] = "regression"
        if attribute:
            section["attribution"] = _attribution(record["workload"])
    elif ratio > 1.0 + threshold:
        section["status"] = "improved"
    else:
        section["status"] = "ok"
    return section


def lab_section(record: Optional[dict]) -> dict:
    """Normalized verdict for the lab fan-out benchmark (its gate is
    structural — parallel must beat serial — not a rate baseline)."""
    if record is None:
        return {"status": "missing"}
    section = {
        "parallel_speedup": record["parallel_speedup"],
        "effective_jobs": record["effective_jobs"],
        "executor_startup_seconds": record["executor_startup_seconds"],
        "warm_executed": record["warm_executed"],
        "byte_identical": record["byte_identical"],
    }
    if not record["byte_identical"] or record["warm_executed"] != 0:
        section["status"] = "anomaly"
    elif record["parallel_speedup"] <= 1.0:
        section["status"] = "regression"
    else:
        section["status"] = "ok"
    return section


def serving_section(sweep: Optional[dict],
                    attainment: float = CAPACITY_ATTAINMENT) -> dict:
    """Per-cell serving capacity from a ``servesweep`` JSON artifact:
    the highest offered load whose SLO attainment still meets
    ``attainment``."""
    if sweep is None:
        return {"status": "missing"}
    cells = []
    for cell in sweep.get("cells", []):
        meeting = [point["offered_rps"] for point in cell["points"]
                   if point["slo_attainment"] >= attainment]
        cells.append({
            "protocol": cell["protocol"],
            "network": cell["network"],
            "capacity_rps": max(meeting) if meeting else 0.0,
            "rates_probed": len(cell["points"]),
        })
    return {"status": "ok", "attainment_target": attainment,
            "cells": cells}


def update_summary(path, section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_summary.json`` (read-modify-
    write, so the two benchmark harnesses and the sentinel can each
    contribute their part without clobbering the others)."""
    path = Path(path)
    summary = {"schema": BENCH_SUMMARY_SCHEMA, "sections": {}}
    if path.exists():
        existing = json.loads(path.read_text())
        if existing.get("schema") == BENCH_SUMMARY_SCHEMA:
            summary = existing
    summary["sections"][section] = payload
    path.write_text(json.dumps(summary, indent=2, sort_keys=True)
                    + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Bench regression sentinel: normalize the "
                    "benchmark records, compare against committed "
                    "baselines, emit BENCH_summary.json")
    parser.add_argument("--core", default="BENCH_core.json")
    parser.add_argument("--core32", default="BENCH_core32.json")
    parser.add_argument("--lab", default="BENCH_lab.json")
    parser.add_argument("--serving", default=None,
                        help="servesweep JSON artifact (optional)")
    parser.add_argument("--core-baseline",
                        default="benchmarks/core_baseline.json")
    parser.add_argument("--core32-baseline",
                        default="benchmarks/core32_baseline.json")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD)
    parser.add_argument("--threshold32", type=float,
                        default=DEFAULT_THRESHOLD32)
    parser.add_argument("--out", default="BENCH_summary.json")
    parser.add_argument("--attribute", action="store_true",
                        help="on regression, profile the workload "
                             "and attach subsystem/protocol-bucket "
                             "attribution hints (costs a run)")
    args = parser.parse_args(argv)

    sections = {
        "core": core_section(_load(args.core),
                             _load(args.core_baseline),
                             args.threshold, attribute=args.attribute),
        "core32": core_section(_load(args.core32),
                               _load(args.core32_baseline),
                               args.threshold32,
                               attribute=args.attribute),
        "lab": lab_section(_load(args.lab)),
        "serving": serving_section(_load(args.serving)),
    }
    for name, section in sections.items():
        update_summary(args.out, name, section)

    failed = False
    for name, section in sections.items():
        status = section["status"]
        detail = ""
        if "median_ratio_vs_baseline" in section:
            detail = (f" (paired median ratio "
                      f"{section['median_ratio_vs_baseline']:.3f} vs "
                      f"threshold -{section['threshold']:.0%})")
        elif "parallel_speedup" in section:
            detail = f" (speedup {section['parallel_speedup']}x)"
        elif "cells" in section:
            caps = ", ".join(
                f"{c['protocol']}/{c['network']}="
                f"{c['capacity_rps']:.0f}rps"
                for c in section["cells"])
            detail = f" ({caps})" if caps else ""
        print(f"{name}: {status}{detail}")
        if status in ("regression", "anomaly"):
            failed = True
            hints = section.get("attribution")
            if hints:
                tops = ", ".join(
                    f"{h['subsystem']} {h['share']:.0%}"
                    for h in hints["top_subsystems"])
                print(f"  attribution: {tops}")
    print(f"summary written to {args.out}")
    if failed:
        print("FAIL: regression or anomaly flagged above")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
