"""Simulated-time timers and spans.

A :class:`Span` measures a stretch of *simulated* time (the sim clock,
not the host's), optionally feeding a histogram and emitting paired
``<name>.begin`` / ``<name>.end`` trace events.  Spans are ordinary
context managers and work inside simulation generators: the ``with``
block survives across ``yield``s, so the exit reads the clock after
the waited-on events have advanced it.
"""

from __future__ import annotations

from typing import Callable, Optional


class Span:
    """Measure one simulated-time interval.

    >>> with Span(clock, "barrier.wait", histogram=hist,
    ...           tracer=tracer, barrier=3):
    ...     ...  # simulated work; clock advances
    """

    def __init__(self, clock: Callable[[], float], name: str,
                 histogram=None, tracer=None, **fields) -> None:
        self._clock = clock
        self.name = name
        self._histogram = histogram
        self._tracer = tracer
        self._fields = fields
        self.start: Optional[float] = None
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "Span":
        self.start = self._clock()
        tracer = self._tracer
        if tracer:
            tracer.emit(self.name + ".begin", **self._fields)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = self._clock() - self.start
        if self._histogram is not None:
            self._histogram.observe(self.elapsed)
        tracer = self._tracer
        if tracer:
            tracer.emit(self.name + ".end", cycles=self.elapsed,
                        **self._fields)
        return False
