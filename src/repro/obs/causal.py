"""Causal structure of a trace: happens-before graph + indexes.

:class:`CausalTrace` digests a raw event stream (from a
:class:`~repro.obs.tracer.MemorySink` or a JSONL file) into the
indexes the critical-path walker and the exporters need:

- every message's life cycle (``msg.send`` -> ``net.xmit`` ->
  ``msg.recv``), keyed by message id, with the causal ``cause`` link
  carried by handler-context sends;
- per-processor scheduler wake-ups (``sched.wake``), each naming the
  message whose arrival released the application;
- per-processor compute spans and interval-seal costs;
- per-worker finish times (from ``sim.process_done``).

:meth:`CausalTrace.graph` materializes the happens-before DAG itself:
program-order edges chain each processor's events, message edges join
``msg.send`` to ``msg.recv``, and lock-handoff edges join a release to
the grant that passes the token on.  The DAG is what makes "why was
LH faster here" answerable causally; the walker in
:mod:`repro.analysis.critical_path` consumes the indexes directly.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.tracer import TraceEvent, read_jsonl

_WORKER = re.compile(r"^worker-(\d+)$")


@dataclass
class MessageRecord:
    """One message's reconstructed journey through the system."""

    msg_id: int
    src: int = -1
    dst: int = -1
    kind: str = ""
    context: str = "app"
    cause: Optional[int] = None
    reply_to: Optional[int] = None
    data_bytes: int = 0
    send_ts: Optional[float] = None    # handed to the network stack
    accept_ts: Optional[float] = None  # accepted by the medium model
    recv_ts: Optional[float] = None    # delivered at the destination
    wire: float = 0.0
    waited: float = 0.0                # medium/port contention
    backoff: float = 0.0               # Ethernet collision backoff


@dataclass
class RequestRecord:
    """One serving request's span (``req.arrive`` -> ``req.done``)."""

    req_id: int
    node: int = -1
    key: int = -1
    op: str = ""
    arrival: Optional[float] = None   # scheduled arrival (cycles)
    start_ts: Optional[float] = None  # dequeued by the worker
    done_ts: Optional[float] = None
    latency: float = 0.0              # done - scheduled arrival

    @property
    def queue_wait(self) -> float:
        if self.start_ts is None or self.arrival is None:
            return 0.0
        return self.start_ts - self.arrival


@dataclass
class WakeRecord:
    """A blocked application process was released."""

    ts: float
    node: int
    kind: str
    cause: Optional[int]


@dataclass
class CausalGraph:
    """Happens-before DAG over trace-event indexes.

    ``edges[i]`` lists the indexes of events that directly
    happen-after event ``i``; ``kind[(i, j)]`` says why
    (``program``, ``message``, or ``lock``)."""

    events: List[TraceEvent]
    edges: Dict[int, List[int]] = field(default_factory=dict)
    kinds: Dict[Tuple[int, int], str] = field(default_factory=dict)

    def add_edge(self, src: int, dst: int, kind: str) -> None:
        self.edges.setdefault(src, []).append(dst)
        self.kinds[(src, dst)] = kind

    def edge_count(self) -> int:
        return sum(len(v) for v in self.edges.values())

    def is_acyclic(self) -> bool:
        """Kahn's algorithm; happens-before must never cycle."""
        indeg = {i: 0 for i in range(len(self.events))}
        for src, dsts in self.edges.items():
            for dst in dsts:
                indeg[dst] += 1
        ready = [i for i, d in indeg.items() if d == 0]
        seen = 0
        while ready:
            node = ready.pop()
            seen += 1
            for dst in self.edges.get(node, ()):
                indeg[dst] -= 1
                if indeg[dst] == 0:
                    ready.append(dst)
        return seen == len(self.events)


def _event_proc(event: TraceEvent) -> Optional[int]:
    """The processor an event belongs to (None for network/global)."""
    fields = event.fields
    node = fields.get("node")
    if node is not None:
        return node
    name = event.name
    if name == "msg.send":
        return fields.get("src")
    if name == "msg.recv":
        return fields.get("dst")
    return None


class CausalTrace:
    """Indexed view of one run's trace events."""

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self.events: List[TraceEvent] = list(events)
        self.messages: Dict[int, MessageRecord] = {}
        #: per-processor wake-ups, ascending by time
        self.wakes: Dict[int, List[WakeRecord]] = {}
        #: per-processor compute spans ``(started, end, cycles)``,
        #: ascending by end time
        self.computes: Dict[int, List[Tuple[float, float, float]]] = {}
        #: per-processor interval-seal costs ``(ts, cost)``
        self.seals: Dict[int, List[Tuple[float, float]]] = {}
        #: worker finish times by processor
        self.finish: Dict[int, float] = {}
        #: serving-request spans by request id (``req.*`` events)
        self.requests: Dict[int, RequestRecord] = {}
        self._index()

    @classmethod
    def from_jsonl(cls, path: str) -> "CausalTrace":
        return cls(read_jsonl(path))

    # -- indexing --------------------------------------------------------

    def _message(self, msg_id: int) -> MessageRecord:
        record = self.messages.get(msg_id)
        if record is None:
            record = MessageRecord(msg_id=msg_id)
            self.messages[msg_id] = record
        return record

    def _request(self, req_id: int) -> RequestRecord:
        record = self.requests.get(req_id)
        if record is None:
            record = RequestRecord(req_id=req_id)
            self.requests[req_id] = record
        return record

    def _index(self) -> None:
        for event in self.events:
            name = event.name
            fields = event.fields
            if name == "msg.send":
                msg_id = fields.get("msg")
                if msg_id is None:
                    continue
                record = self._message(msg_id)
                record.src = fields.get("src", -1)
                record.dst = fields.get("dst", -1)
                record.kind = fields.get("kind", "")
                record.context = fields.get("context", "app")
                record.cause = fields.get("cause")
                record.reply_to = fields.get("reply_to")
                record.data_bytes = fields.get("data_bytes", 0)
                if record.send_ts is None:
                    record.send_ts = event.ts
            elif name == "net.xmit":
                msg_id = fields.get("msg")
                if msg_id is None:
                    continue
                record = self._message(msg_id)
                # Retransmissions re-enter the medium; the first
                # acceptance is the causally meaningful one.
                if record.accept_ts is None:
                    record.accept_ts = event.ts
                    record.wire = fields.get("wire", 0.0)
                    record.waited = fields.get("waited", 0.0)
                    record.backoff = fields.get("backoff", 0.0)
            elif name == "msg.recv":
                msg_id = fields.get("msg")
                if msg_id is None:
                    continue
                record = self._message(msg_id)
                if record.recv_ts is None:  # dups keep first delivery
                    record.recv_ts = event.ts
            elif name == "sched.wake":
                node = fields.get("node")
                if node is None:
                    continue
                self.wakes.setdefault(node, []).append(WakeRecord(
                    ts=event.ts, node=node,
                    kind=fields.get("kind", ""),
                    cause=fields.get("cause")))
            elif name == "cpu.compute":
                node = fields.get("node")
                started = fields.get("started")
                cycles = fields.get("cycles", 0.0)
                if node is None or started is None:
                    continue
                self.computes.setdefault(node, []).append(
                    (started, event.ts, cycles))
            elif name == "protocol.seal":
                node = fields.get("node")
                if node is None:
                    continue
                self.seals.setdefault(node, []).append(
                    (event.ts, fields.get("cost", 0.0)))
            elif name == "req.arrive":
                req_id = fields.get("req")
                if req_id is None:
                    continue
                record = self._request(req_id)
                record.node = fields.get("node", -1)
                record.key = fields.get("key", -1)
                record.op = fields.get("op", "")
                record.arrival = fields.get("arrival")
                record.start_ts = event.ts
            elif name == "req.done":
                req_id = fields.get("req")
                if req_id is None:
                    continue
                record = self._request(req_id)
                record.done_ts = event.ts
                record.latency = fields.get("latency_cycles", 0.0)
            elif name == "sim.process_done":
                match = _WORKER.match(fields.get("process", ""))
                if match:
                    proc = int(match.group(1))
                    self.finish[proc] = max(
                        self.finish.get(proc, 0.0), event.ts)
        for records in self.wakes.values():
            records.sort(key=lambda w: w.ts)
        for spans in self.computes.values():
            spans.sort(key=lambda s: s[1])
        for costs in self.seals.values():
            costs.sort(key=lambda s: s[0])

    # -- queries ---------------------------------------------------------

    @property
    def elapsed(self) -> float:
        return max(self.finish.values()) if self.finish else 0.0

    def last_finisher(self) -> Optional[int]:
        if not self.finish:
            return None
        return max(self.finish, key=lambda p: (self.finish[p], p))

    def latest_wake(self, node: int,
                    before: float) -> Optional[WakeRecord]:
        """Most recent wake on ``node`` at or before ``before``."""
        records = self.wakes.get(node)
        if not records:
            return None
        index = bisect_right([w.ts for w in records], before) - 1
        return records[index] if index >= 0 else None

    def compute_spans_in(self, node: int, lo: float,
                         hi: float) -> List[Tuple[float, float, float]]:
        """Compute spans on ``node`` whose *end* lies in ``(lo, hi]``.
        Spans never cross a wake, so this captures exactly the
        computation executed inside a local window."""
        spans = self.computes.get(node)
        if not spans:
            return []
        ends = [s[1] for s in spans]
        start = bisect_right(ends, lo)
        stop = bisect_right(ends, hi)
        return spans[start:stop]

    def seal_cost_in(self, node: int, lo: float, hi: float) -> float:
        """Total interval-seal cost charged on ``node`` in
        ``(lo, hi]``."""
        costs = self.seals.get(node)
        if not costs:
            return 0.0
        return sum(cost for ts, cost in costs if lo < ts <= hi)

    # -- happens-before DAG ----------------------------------------------

    def graph(self) -> CausalGraph:
        """Materialize the happens-before DAG.

        Edges: *program order* chains every processor's events in
        time order (stable on the emission order for ties — emission
        order is execution order within a timestamp); *message* edges
        join each ``msg.send`` to its ``msg.recv``; *lock* edges join
        each ``sync.lock_release``/``sync.lock_grant`` pair on the
        granting node (the token handoff that orders the critical
        sections)."""
        graph = CausalGraph(self.events)
        per_proc_last: Dict[int, int] = {}
        sends: Dict[int, int] = {}
        recvs: Dict[int, int] = {}
        last_release: Dict[Tuple[int, int], int] = {}
        for index, event in enumerate(self.events):
            proc = _event_proc(event)
            if proc is not None:
                prev = per_proc_last.get(proc)
                if prev is not None:
                    graph.add_edge(prev, index, "program")
                per_proc_last[proc] = index
            name = event.name
            fields = event.fields
            if name == "msg.send" and "msg" in fields:
                sends[fields["msg"]] = index
            elif name == "msg.recv" and "msg" in fields:
                recvs.setdefault(fields["msg"], index)
            elif name == "sync.lock_release":
                last_release[(fields.get("lock"),
                              fields.get("node"))] = index
            elif name == "sync.lock_grant":
                release = last_release.get((fields.get("lock"),
                                            fields.get("node")))
                if release is not None and release != index:
                    graph.add_edge(release, index, "lock")
        for msg_id, send_index in sends.items():
            recv_index = recvs.get(msg_id)
            if recv_index is not None:
                graph.add_edge(send_index, recv_index, "message")
        return graph
