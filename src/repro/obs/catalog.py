"""The metrics catalogue: every standard metric the simulator emits.

Each :class:`MetricSpec` names one metric, its type, unit, label set,
and the paper artifact(s) that consume it.  ``docs/observability.md``
renders this catalogue for humans; ``tests/docs`` asserts the two stay
in sync, and the parity test in ``tests/obs`` asserts the registry
totals agree with the legacy per-node counters bit-for-bit.

Naming convention: ``<layer>.<quantity>[_total]`` — ``_total`` marks a
monotonic counter; histograms and gauges drop the suffix.  Layers:

- ``sim``  — the discrete-event kernel,
- ``net``  — the wire (Ethernet / ATM / ideal),
- ``dsm``  — per-node protocol activity (misses, diffs, notices),
- ``sync`` — locks and barriers,
- ``cpu``  — where processor cycles went,
- ``mem``  — the memory substrate (opt-in, see :data:`MEM_CATALOG`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """Static description of one metric."""

    name: str
    kind: str
    unit: str
    description: str
    labels: Tuple[str, ...] = ()
    consumers: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (COUNTER, GAUGE, HISTOGRAM):
            raise ValueError(f"bad metric kind {self.kind!r}")


def _spec(name, kind, unit, description, labels=(), consumers=()):
    return MetricSpec(name=name, kind=kind, unit=unit,
                      description=description, labels=tuple(labels),
                      consumers=tuple(consumers))


#: Every standard metric, in catalogue order.
CATALOG: Tuple[MetricSpec, ...] = (
    # -- sim -----------------------------------------------------------
    _spec("sim.events_dispatched_total", COUNTER, "events",
          "Callbacks run by the discrete-event loop.",
          consumers=("diagnostics",)),
    _spec("sim.queue_depth_peak", GAUGE, "events",
          "Peak length of the pending-event heap.",
          consumers=("diagnostics",)),
    # -- net -----------------------------------------------------------
    _spec("net.messages_total", COUNTER, "messages",
          "Messages accepted by the network.",
          consumers=("Table 1", "Figs 8/11/14/17")),
    _spec("net.wire_bytes_total", COUNTER, "bytes",
          "Total bytes on the wire (headers + shared data)."),
    _spec("net.data_bytes_total", COUNTER, "bytes",
          "Shared-data bytes on the wire (diffs and pages only).",
          consumers=("Figs 9/12/15/18",)),
    _spec("net.wire_cycles_total", COUNTER, "cycles",
          "Cycles the medium (or a port pair) was busy serializing."),
    _spec("net.contention_cycles_total", COUNTER, "cycles",
          "Cycles messages waited for the medium or a port.",
          consumers=("Section 6.1", "Table 2")),
    _spec("net.wire_cycles", HISTOGRAM, "cycles",
          "Per-message serialization time."),
    _spec("net.collisions_total", COUNTER, "collisions",
          "Ethernet CSMA/CD collision episodes.",
          consumers=("Section 6.1",)),
    _spec("net.backoff_cycles_total", COUNTER, "cycles",
          "Ethernet binary-exponential-backoff penalty cycles.",
          consumers=("Section 6.1",)),
    _spec("net.port_contention_total", COUNTER, "messages",
          "ATM messages that waited for a busy input/output port."),
    # -- dsm -----------------------------------------------------------
    _spec("dsm.messages_total", COUNTER, "messages",
          "Messages sent, by sending node and message type.",
          labels=("node", "msg_type"),
          consumers=("Table 1", "Figs 8/11/14/17", "Section 6.2")),
    _spec("dsm.data_bytes_total", COUNTER, "bytes",
          "Shared-data bytes sent per node.", labels=("node",),
          consumers=("Figs 9/12/15/18",)),
    _spec("dsm.wire_bytes_total", COUNTER, "bytes",
          "Wire bytes (headers included) sent per node.",
          labels=("node",)),
    _spec("dsm.read_misses_total", COUNTER, "misses",
          "Access misses on reads.", labels=("node",),
          consumers=("Section 6.2",)),
    _spec("dsm.write_misses_total", COUNTER, "misses",
          "Access misses on writes.", labels=("node",),
          consumers=("Section 6.2",)),
    _spec("dsm.cold_misses_total", COUNTER, "misses",
          "Misses on pages never cached locally.", labels=("node",)),
    _spec("dsm.page_transfers_total", COUNTER, "pages",
          "Whole-page copies received.", labels=("node",),
          consumers=("Figs 9/12/15/18",)),
    _spec("dsm.diffs_created_total", COUNTER, "diffs",
          "Diffs created at interval seals.", labels=("node",),
          consumers=("Section 6.2", "Table 5")),
    _spec("dsm.diff_words_total", COUNTER, "words",
          "Words captured in created diffs.", labels=("node",)),
    _spec("dsm.diffs_applied_total", COUNTER, "diffs",
          "Diffs received and stored from peers.", labels=("node",)),
    _spec("dsm.invalidations_total", COUNTER, "invalidations",
          "Page copies invalidated by write notices or flushes.",
          labels=("node",)),
    _spec("dsm.write_notices_created_total", COUNTER, "notices",
          "Write notices created at interval seals.",
          labels=("node",)),
    _spec("dsm.write_notices_received_total", COUNTER, "notices",
          "Write notices incorporated from peers.", labels=("node",)),
    _spec("dsm.miss_wait_cycles", HISTOGRAM, "cycles",
          "Full stall per access miss (messages + remote service).",
          labels=("node",), consumers=("Section 6.2",)),
    # -- sync ----------------------------------------------------------
    _spec("sync.lock_acquires_total", COUNTER, "acquires",
          "Lock acquisitions (remote and local).", labels=("node",),
          consumers=("Table 1", "Section 6.2")),
    _spec("sync.lock_local_acquires_total", COUNTER, "acquires",
          "Acquisitions satisfied by a locally cached token.",
          labels=("node",), consumers=("Section 6.2",)),
    _spec("sync.lock_wait_cycles", HISTOGRAM, "cycles",
          "Stall per lock acquisition.", labels=("node",),
          consumers=("Section 6.2",)),
    _spec("sync.barrier_waits_total", COUNTER, "episodes",
          "Barrier episodes completed.", labels=("node",),
          consumers=("Table 1",)),
    _spec("sync.barrier_wait_cycles", HISTOGRAM, "cycles",
          "Stall per barrier episode.", labels=("node",),
          consumers=("Section 6.1", "Section 6.2")),
    # -- cpu -----------------------------------------------------------
    _spec("cpu.compute_cycles_total", COUNTER, "cycles",
          "Application computation charged.", labels=("node",),
          consumers=("Table 3", "Table 4")),
    _spec("cpu.overhead_cycles_total", COUNTER, "cycles",
          "Software overhead (message handling + diffing).",
          labels=("node",), consumers=("Table 3",)),
)

#: Metrics of the robustness subsystem (fault injection + reliable
#: transport, see docs/robustness.md).  Kept out of :data:`CATALOG` on
#: purpose: they are installed only when the subsystem is active, so a
#: fault-free run's stats dump stays bit-for-bit identical to a build
#: without the subsystem (the obs parity test pins this).
ROBUSTNESS_CATALOG: Tuple[MetricSpec, ...] = (
    # -- faults --------------------------------------------------------
    _spec("faults.drops_total", COUNTER, "packets",
          "Packets killed by the fault injector.",
          consumers=("loss sweep",)),
    _spec("faults.duplicates_total", COUNTER, "packets",
          "Extra deliveries created by the fault injector."),
    _spec("faults.reorders_total", COUNTER, "packets",
          "Packets held back to force reordering."),
    _spec("faults.delay_cycles_total", COUNTER, "cycles",
          "Extra delivery latency injected (delays + reorder holds)."),
    _spec("faults.stalls_total", COUNTER, "stalls",
          "CPU stall windows injected."),
    _spec("faults.stall_cycles_total", COUNTER, "cycles",
          "Cycles of injected CPU stall."),
    # -- node lifecycle (crash/recovery) -------------------------------
    _spec("faults.crashes_total", COUNTER, "crashes",
          "Node crashes executed by the lifecycle manager.",
          consumers=("availability sweep",)),
    _spec("faults.crash_dropped_packets_total", COUNTER, "packets",
          "Packets dropped at a crashed node's dead NIC.",
          consumers=("conservation invariant",)),
    _spec("faults.crash_checkpoint_bytes", HISTOGRAM, "bytes",
          "Serialized size of the DSM checkpoint taken at each "
          "crash."),
    _spec("faults.recoveries_total", COUNTER, "recoveries",
          "Crashed nodes restored from checkpoint.",
          consumers=("availability sweep",)),
    _spec("faults.recovery_outage_cycles", HISTOGRAM, "cycles",
          "Crash-to-restore downtime per recovery.",
          consumers=("availability sweep",)),
    _spec("faults.recovery_replayed_total", COUNTER, "messages",
          "Logged in-flight messages replayed into a restored node."),
    # -- transport -----------------------------------------------------
    _spec("transport.packets_sent_total", COUNTER, "packets",
          "Packets handed to the network (data, acks, retransmits).",
          consumers=("conservation invariant",)),
    _spec("transport.packets_received_total", COUNTER, "packets",
          "Packets arriving from the network.",
          consumers=("conservation invariant",)),
    _spec("transport.data_packets_total", COUNTER, "packets",
          "First transmissions of data-bearing packets."),
    _spec("transport.retransmits_total", COUNTER, "packets",
          "Timeout-driven retransmissions.",
          consumers=("loss sweep",)),
    _spec("transport.timeout_fires_total", COUNTER, "timeouts",
          "Retransmission timer expiries.",
          consumers=("loss sweep",)),
    _spec("transport.acks_sent_total", COUNTER, "packets",
          "Standalone (pure) acknowledgement packets."),
    _spec("transport.acks_piggybacked_total", COUNTER, "acks",
          "Acknowledgements folded into outgoing data packets."),
    _spec("transport.duplicates_suppressed_total", COUNTER, "packets",
          "Duplicate data packets discarded by the receiver."),
    _spec("transport.out_of_order_total", COUNTER, "packets",
          "Packets buffered while awaiting earlier sequence numbers."),
    _spec("transport.delivered_total", COUNTER, "messages",
          "Protocol messages delivered upward, exactly once, in "
          "order."),
    _spec("transport.recovery_cycles", HISTOGRAM, "cycles",
          "First-send-to-ack latency of packets that needed at least "
          "one retransmission.", consumers=("loss sweep",)),
    _spec("transport.peer_down_timeouts_total", COUNTER, "timeouts",
          "Timer expiries at the maximum backoff — the sender's "
          "peer-death suspicion signal.",
          consumers=("availability sweep",)),
    _spec("transport.session_resets_total", COUNTER, "streams",
          "Per-stream resets (backoff cleared, oldest unacked "
          "reprobed) when a crashed peer recovers."),
)

#: Metrics of the experiment harness (:mod:`repro.lab`, see
#: docs/lab.md).  Like the robustness catalogue these stay out of
#: :data:`CATALOG`: they describe the *harness* (real wall-clock, not
#: simulated cycles) and live on the lab's own registry, never on a
#: machine run's, so per-run stats dumps are unchanged.
LAB_CATALOG: Tuple[MetricSpec, ...] = (
    _spec("lab.jobs_executed_total", COUNTER, "runs",
          "Run specs actually simulated (cache misses that ran).",
          consumers=("warm-cache CI gate", "BENCH_lab")),
    _spec("lab.cache_hits_total", COUNTER, "runs",
          "Run specs satisfied without simulating, by cache tier.",
          labels=("tier",),
          consumers=("warm-cache CI gate", "BENCH_lab")),
    _spec("lab.cache_misses_total", COUNTER, "runs",
          "Run specs found in neither cache tier."),
    _spec("lab.retries_total", COUNTER, "attempts",
          "Extra execution attempts after a worker failure."),
    _spec("lab.failures_total", COUNTER, "runs",
          "Run specs that failed every allowed attempt."),
    _spec("lab.wall_seconds_total", COUNTER, "seconds",
          "Real wall-clock time spent inside Lab.run_many.",
          consumers=("BENCH_lab",)),
    _spec("lab.run_seconds", HISTOGRAM, "seconds",
          "Per-run execution wall time, measured in the worker."),
    _spec("lab.worker_utilization", GAUGE, "ratio",
          "Busy-worker seconds over wall seconds x pool size, for "
          "the latest parallel batch.",
          consumers=("BENCH_lab",)),
    _spec("lab.executor_startup_seconds", GAUGE, "seconds",
          "One-time cost of spinning up and warming the process pool "
          "(fork + imports + code-version seeding), measured at first "
          "parallel batch.",
          consumers=("BENCH_lab",)),
)

#: Metrics of the memory substrate (:mod:`repro.mem`, see
#: docs/memory.md).  Opt-in like the robustness catalogue: the mem
#: layer is pure data structures with no registry reference, so these
#: are installed (and emission switched on) only via
#: :func:`repro.mem.instrument.enable` — a default run's stats dump is
#: bit-for-bit unchanged.
MEM_CATALOG: Tuple[MetricSpec, ...] = (
    _spec("mem.diffs_encoded_total", COUNTER, "diffs",
          "Diffs serialized to the canonical RDIF wire format."),
    _spec("mem.diffs_decoded_total", COUNTER, "diffs",
          "RDIF blobs parsed (and validated) back into diffs."),
    _spec("mem.diff_runs", HISTOGRAM, "runs",
          "Run-table length of each encoded diff (1 = a single "
          "contiguous dirty range).",
          consumers=("write-amplification accounting",)),
    _spec("mem.diff_encoded_bytes", HISTOGRAM, "bytes",
          "Host length of each encoded RDIF blob (16-byte header + "
          "run table + float64 payload)."),
    _spec("mem.diff_accounted_bytes", HISTOGRAM, "bytes",
          "Simulated wire cost (Diff.size_bytes) of each encoded "
          "diff: 8 bytes per run + word_size bytes per word.",
          consumers=("write-amplification accounting",)),
    _spec("mem.twin_snapshots_total", COUNTER, "twins",
          "Page twins frozen (full-buffer bytes snapshots)."),
    _spec("mem.page_installs_total", COUNTER, "pages",
          "Page copies created or refreshed in a node's page table."),
)

#: Metrics of the serving workload (:mod:`repro.serve`, see
#: docs/serving.md).  Opt-in like the robustness catalogue: installed
#: by the kvstore app's ``setup``, never by default, so the four
#: paper kernels' stats dumps stay bit-for-bit unchanged.
SERVE_CATALOG: Tuple[MetricSpec, ...] = (
    _spec("serve.requests_total", COUNTER, "requests",
          "Serving requests completed, by operation.",
          labels=("op",), consumers=("serving sweep",)),
    _spec("serve.request_latency_cycles", HISTOGRAM, "cycles",
          "Scheduled-arrival-to-completion latency per request "
          "(queue wait included — the open-loop number SLOs are "
          "written against).",
          consumers=("serving sweep",)),
    _spec("serve.queue_wait_cycles", HISTOGRAM, "cycles",
          "Cycles each request sat scheduled-but-unserved while its "
          "node worked off earlier arrivals.",
          consumers=("serving sweep",)),
)

CATALOG_BY_NAME: Dict[str, MetricSpec] = {
    spec.name: spec
    for spec in CATALOG + ROBUSTNESS_CATALOG + LAB_CATALOG
    + MEM_CATALOG + SERVE_CATALOG}

#: ``dsm.messages_total`` msg_type label values that count as
#: synchronization traffic (mirrors ``MsgKind.is_synchronization``).
SYNC_MSG_TYPES = frozenset({"lock_req", "lock_fwd", "lock_grant",
                            "barrier_arrive", "barrier_depart"})


def install_catalog(registry) -> None:
    """Instantiate every catalogued metric on ``registry`` so a dump
    lists the full schema even before any series is touched."""
    for spec in CATALOG:
        registry.from_spec(spec)


#: Checkpoint blobs run page-sized to megabytes, so the cycle-scaled
#: default histogram buckets would be useless for them.
CRASH_BYTE_BUCKETS: Tuple[float, ...] = (
    1024, 4096, 16384, 65536, 262144, 1048576, 4194304)


def install_robustness(registry) -> None:
    """Instantiate the fault/transport metrics.  Called by the fault
    injector and the reliable transport when they are constructed, so
    these series appear in dumps exactly when the subsystem is on."""
    for spec in ROBUSTNESS_CATALOG:
        if spec.name == "faults.crash_checkpoint_bytes":
            registry.from_spec(spec, buckets=CRASH_BYTE_BUCKETS)
        else:
            registry.from_spec(spec)


def install_lab(registry) -> None:
    """Instantiate the experiment-harness metrics on a (lab-owned)
    registry."""
    for spec in LAB_CATALOG:
        registry.from_spec(spec)


#: Bucket bounds for the mem histograms: diffs are small discrete
#: objects (runs, bytes), so the cycle-scaled default buckets would
#: dump everything into the first bucket.
MEM_RUN_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)
MEM_BYTE_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536)


def install_serve(registry) -> None:
    """Instantiate the serving metrics.  Called by the kvstore app's
    ``setup`` (idempotently), never by default — see the
    :data:`SERVE_CATALOG` note."""
    for spec in SERVE_CATALOG:
        registry.from_spec(spec)


def install_mem(registry) -> None:
    """Instantiate the memory-substrate metrics.  Called by
    :func:`repro.mem.instrument.enable`, never by default — see the
    :data:`MEM_CATALOG` note."""
    for spec in MEM_CATALOG:
        if spec.kind == HISTOGRAM:
            buckets = (MEM_RUN_BUCKETS if spec.unit == "runs"
                       else MEM_BYTE_BUCKETS)
            registry.from_spec(spec, buckets=buckets)
        else:
            registry.from_spec(spec)
