"""Low-overhead structured event tracing with pluggable sinks.

A :class:`Tracer` stamps every event with the *simulated* clock and
hands it to its sink.  The disabled tracer (the default
:class:`NullSink`) is free on the hot path: emission sites guard with
``if tracer:`` and never even build the fields dict.

Sinks:

- :class:`NullSink`   — drop everything (default);
- :class:`MemorySink` — keep events in a list (tests, analysis);
- :class:`JsonlSink`  — append one JSON object per line to a file
  (buffered; transparently gzipped for ``.gz`` paths), replayable
  with :func:`read_jsonl`.

The full event vocabulary lives in :data:`TRACE_EVENTS`; the table in
``docs/observability.md`` is kept in sync by the docs test suite.
Causal ids (message ids, lock/barrier ids, interval stamps) carried by
these events are what :mod:`repro.obs.causal` reconstructs the
happens-before graph from.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

#: Every trace event the simulator can emit, with the fields that make
#: it causally linkable.  ``docs/observability.md`` documents each row;
#: ``tests/docs`` asserts both stay in sync with the emission sites.
TRACE_EVENTS: Dict[str, str] = {
    "sim.process_spawn":
        "a simulation process started (process)",
    "sim.process_done":
        "a simulation process finished (process); worker-N names "
        "carry per-processor finish times",
    "msg.send":
        "a node handed a message to the network stack (msg, src, dst, "
        "kind, data_bytes, context=app|handler, reply_to, cause)",
    "msg.recv":
        "the network delivered a message to its destination (msg, "
        "src, dst, kind, data_bytes)",
    "net.xmit":
        "the network model accepted a message onto the medium (msg, "
        "src, dst, kind, wire, waited; Ethernet adds backoff)",
    "sched.wake":
        "a blocked application process was released by an incoming "
        "message (node, kind=reply|lock_grant|sc_grant|"
        "barrier_depart|barrier_all_arrived, cause=msg id)",
    "cpu.compute":
        "an application compute span completed (node, started, "
        "cycles=pure compute; ts-started-cycles is interrupt-stolen)",
    "sync.lock_request":
        "a node sent a remote lock request (lock, node, target)",
    "sync.lock_grant":
        "a token holder granted the lock to a requester (lock, node, "
        "to)",
    "sync.lock_handoff":
        "intra-node lock handoff between threads (lock, node)",
    "sync.lock_release":
        "a node began releasing a held lock (lock, node)",
    "sync.lock_acquired":
        "a lock acquire completed (lock, node, wait_cycles)",
    "sync.barrier_arrive":
        "a node arrived at a global barrier (barrier, episode, node, "
        "master)",
    "sync.barrier_depart":
        "the barrier master released an episode (barrier, episode, "
        "node)",
    "sync.barrier_done":
        "a barrier episode completed on a node (barrier, node, "
        "wait_cycles)",
    "protocol.page_fault":
        "an access miss began (page, node, write, cold)",
    "protocol.fault_done":
        "an access miss was resolved (page, node, waited)",
    "protocol.seal":
        "an interval was sealed, creating diffs (node, interval, "
        "pages, cost, vc)",
    "protocol.diff_apply":
        "pending diffs were applied to a page copy (page, node, "
        "diffs)",
    "protocol.notices_in":
        "write notices were incorporated from a peer (node, records, "
        "pages)",
    "transport.retx":
        "the reliable transport retransmitted a packet (src, dst, "
        "seq, rto)",
    "node.crash":
        "a node crashed: workers frozen, NIC dead, DSM state "
        "checkpointed (node, checkpoint_bytes, down_cycles or "
        "crash-stop)",
    "node.recover":
        "a crashed node restored its checkpoint and rejoined (node, "
        "outage_cycles, replayed)",
    "req.arrive":
        "a serving request was dequeued by its node's worker (req, "
        "node, key, op, arrival=scheduled cycles; ts-arrival is "
        "queue wait)",
    "req.done":
        "a serving request completed (req, node, key, op, "
        "latency_cycles measured from the scheduled arrival)",
}


@dataclass
class TraceEvent:
    """One structured trace record."""

    ts: float
    name: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        record = {"ts": self.ts, "name": self.name}
        for key, value in self.fields.items():
            record[key] = _jsonable(value)
        return json.dumps(record, sort_keys=False)


def _jsonable(value: Any) -> Any:
    """JSON-safe view of a field value.  Containers are serialized
    recursively (lists/tuples as arrays, dicts with stringified keys,
    sets sorted for determinism) so structured fields survive JSONL
    round-trips; enums collapse to their ``.value``; anything else
    falls back to ``str``."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    value_attr = getattr(value, "value", None)  # enums (MsgKind)
    if isinstance(value_attr, (int, float, str)):
        return value_attr
    if isinstance(value, dict):
        return {str(key): _jsonable(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_jsonable(item) for item in value),
                      key=lambda x: (str(type(x)), str(x)))
    return str(value)


class TraceSink:
    """Sink interface; subclasses override :meth:`emit`."""

    enabled = True

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(TraceSink):
    """Drops every event; marks the tracer disabled."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        pass


class MemorySink(TraceSink):
    """Keeps every event in ``self.events``."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def named(self, name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.name == name]


class JsonlSink(TraceSink):
    """Appends one JSON line per event to ``path`` (or a file-like).

    Lines are buffered (``buffer_lines`` at a time) and flushed on
    :meth:`flush`/:meth:`close`; the sink is a context manager, and a
    path ending in ``.gz`` is written gzip-compressed transparently
    (:func:`read_jsonl` reads it back the same way).  A caller-owned
    file object is flushed but never closed."""

    def __init__(self, path_or_file: Union[str, Any],
                 buffer_lines: int = 1024) -> None:
        if hasattr(path_or_file, "write"):
            self._file = path_or_file
            self._owns = False
        else:
            path = str(path_or_file)
            if path.endswith(".gz"):
                self._file = gzip.open(path, "wt", encoding="utf-8")
            else:
                self._file = open(path, "w")
            self._owns = True
        self._buffer: List[str] = []
        self._buffer_lines = max(1, buffer_lines)

    def emit(self, event: TraceEvent) -> None:
        self._buffer.append(event.to_json())
        if len(self._buffer) >= self._buffer_lines:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._file.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._file.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._file.close()


def read_jsonl(path: str) -> Iterator[TraceEvent]:
    """Replay a JSONL trace file (gzipped if ``.gz``) as
    :class:`TraceEvent` objects."""
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "rt") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            ts = record.pop("ts")
            name = record.pop("name")
            yield TraceEvent(ts=ts, name=name, fields=record)


class Tracer:
    """Emission front-end: ``tracer.emit("msg.send", src=0, dst=1)``.

    Truth-testing a tracer answers "is anyone listening?", so hot
    paths write ``if tracer: tracer.emit(...)`` and skip the call (and
    its keyword-dict construction) entirely when tracing is off.  The
    check reads ``sink.enabled`` live, so swapping ``tracer.sink``
    mid-run enables or disables every emission site at once.
    """

    def __init__(self, sink: Optional[TraceSink] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.sink = sink or NullSink()
        self.clock = clock or (lambda: 0.0)

    @property
    def enabled(self) -> bool:
        return self.sink.enabled

    def __bool__(self) -> bool:
        return self.sink.enabled

    def emit(self, name: str, **fields) -> None:
        if self.sink.enabled:
            self.sink.emit(TraceEvent(ts=self.clock(), name=name,
                                      fields=fields))

    def close(self) -> None:
        self.sink.close()
