"""Low-overhead structured event tracing with pluggable sinks.

A :class:`Tracer` stamps every event with the *simulated* clock and
hands it to its sink.  The disabled tracer (the default
:class:`NullSink`) is free on the hot path: emission sites guard with
``if tracer:`` and never even build the fields dict.

Sinks:

- :class:`NullSink`   — drop everything (default);
- :class:`MemorySink` — keep events in a list (tests, analysis);
- :class:`JsonlSink`  — append one JSON object per line to a file,
  replayable with :func:`read_jsonl`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Union


@dataclass
class TraceEvent:
    """One structured trace record."""

    ts: float
    name: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        record = {"ts": self.ts, "name": self.name}
        for key, value in self.fields.items():
            record[key] = _jsonable(value)
        return json.dumps(record, sort_keys=False)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    value_attr = getattr(value, "value", None)  # enums (MsgKind)
    if isinstance(value_attr, (int, float, str)):
        return value_attr
    return str(value)


class TraceSink:
    """Sink interface; subclasses override :meth:`emit`."""

    enabled = True

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class NullSink(TraceSink):
    """Drops every event; marks the tracer disabled."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        pass


class MemorySink(TraceSink):
    """Keeps every event in ``self.events``."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def named(self, name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.name == name]


class JsonlSink(TraceSink):
    """Appends one JSON line per event to ``path`` (or a file-like)."""

    def __init__(self, path_or_file: Union[str, Any]) -> None:
        if hasattr(path_or_file, "write"):
            self._file = path_or_file
            self._owns = False
        else:
            self._file = open(path_or_file, "w")
            self._owns = True

    def emit(self, event: TraceEvent) -> None:
        self._file.write(event.to_json() + "\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns:
            self._file.close()


def read_jsonl(path: str) -> Iterator[TraceEvent]:
    """Replay a JSONL trace file as :class:`TraceEvent` objects."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            ts = record.pop("ts")
            name = record.pop("name")
            yield TraceEvent(ts=ts, name=name, fields=record)


class Tracer:
    """Emission front-end: ``tracer.emit("msg.send", src=0, dst=1)``.

    Truth-testing a tracer answers "is anyone listening?", so hot
    paths write ``if tracer: tracer.emit(...)`` and skip the call (and
    its keyword-dict construction) entirely when tracing is off.
    """

    def __init__(self, sink: Optional[TraceSink] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.sink = sink or NullSink()
        self.clock = clock or (lambda: 0.0)

    @property
    def enabled(self) -> bool:
        return self.sink.enabled

    def __bool__(self) -> bool:
        return self.sink.enabled

    def emit(self, name: str, **fields) -> None:
        if self.sink.enabled:
            self.sink.emit(TraceEvent(ts=self.clock(), name=name,
                                      fields=fields))

    def close(self) -> None:
        self.sink.close()
