"""repro.obs — unified metrics and tracing for the DSM simulator.

One :class:`Observability` context travels with each simulated
machine: a :class:`MetricsRegistry` (the documented stats schema, see
``docs/observability.md``), a :class:`Tracer` with pluggable sinks,
and simulated-time :class:`Span` timers.  Every layer emits into it —
the event kernel, the network models, the per-node protocol engines,
and the lock/barrier managers — and the analysis drivers, the ``repro
stats`` CLI subcommand, and the report generator read from it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.catalog import (CATALOG, CATALOG_BY_NAME, LAB_CATALOG,
                               MEM_CATALOG, ROBUSTNESS_CATALOG,
                               SERVE_CATALOG, MetricSpec,
                               SYNC_MSG_TYPES, install_catalog,
                               install_lab, install_mem,
                               install_robustness, install_serve)
from repro.obs.registry import (DEFAULT_BUCKETS, Metric, MetricError,
                                MetricsRegistry)
from repro.obs.causal import CausalGraph, CausalTrace
from repro.obs.chrome_trace import chrome_trace, validate_chrome_trace
from repro.obs.timers import Span
from repro.obs.timeseries import (TIMESERIES_SCHEMA, TimeseriesSampler,
                                  Window, format_timeseries_table,
                                  merge_windows)
from repro.obs.tracer import (TRACE_EVENTS, JsonlSink, MemorySink,
                              NullSink, TraceEvent, TraceSink, Tracer,
                              read_jsonl)

__all__ = [
    "CATALOG", "CATALOG_BY_NAME", "CausalGraph", "CausalTrace",
    "DEFAULT_BUCKETS", "JsonlSink",
    "LAB_CATALOG", "MEM_CATALOG", "MemorySink", "Metric",
    "MetricError", "MetricSpec",
    "MetricsRegistry", "NodeInstruments", "NullSink", "Observability",
    "ROBUSTNESS_CATALOG", "SERVE_CATALOG", "SYNC_MSG_TYPES", "Span",
    "TIMESERIES_SCHEMA", "TRACE_EVENTS", "TimeseriesSampler",
    "TraceEvent", "TraceSink", "Tracer", "Window", "chrome_trace",
    "format_timeseries_table", "install_catalog",
    "install_lab", "install_mem", "install_robustness",
    "install_serve", "merge_windows", "read_jsonl",
    "validate_chrome_trace",
]


class NodeInstruments:
    """Pre-bound registry children for one node's hot paths.

    Binding the (node,) label once at construction keeps per-event
    emission down to an attribute access plus an addition.
    """

    __slots__ = ("node_label", "messages", "_msg_children",
                 "data_bytes", "wire_bytes",
                 "read_misses", "write_misses", "cold_misses",
                 "page_transfers", "diffs_created", "diff_words",
                 "diffs_applied", "invalidations", "notices_created",
                 "notices_received", "miss_wait", "lock_acquires",
                 "lock_local_acquires", "lock_wait", "barrier_waits",
                 "barrier_wait", "compute_cycles", "overhead_cycles")

    def __init__(self, registry: MetricsRegistry, proc: int) -> None:
        node = str(proc)
        self.node_label = node

        def bound(name):
            return registry.get(name).labels(node=node)

        self.messages = registry.get("dsm.messages_total")
        # Per-message-kind children resolved once on first use (the
        # (node, msg_type) label pair is fixed per kind for this node).
        self._msg_children = {}
        self.data_bytes = bound("dsm.data_bytes_total")
        self.wire_bytes = bound("dsm.wire_bytes_total")
        self.read_misses = bound("dsm.read_misses_total")
        self.write_misses = bound("dsm.write_misses_total")
        self.cold_misses = bound("dsm.cold_misses_total")
        self.page_transfers = bound("dsm.page_transfers_total")
        self.diffs_created = bound("dsm.diffs_created_total")
        self.diff_words = bound("dsm.diff_words_total")
        self.diffs_applied = bound("dsm.diffs_applied_total")
        self.invalidations = bound("dsm.invalidations_total")
        self.notices_created = bound("dsm.write_notices_created_total")
        self.notices_received = bound("dsm.write_notices_received_total")
        self.miss_wait = bound("dsm.miss_wait_cycles")
        self.lock_acquires = bound("sync.lock_acquires_total")
        self.lock_local_acquires = bound("sync.lock_local_acquires_total")
        self.lock_wait = bound("sync.lock_wait_cycles")
        self.barrier_waits = bound("sync.barrier_waits_total")
        self.barrier_wait = bound("sync.barrier_wait_cycles")
        self.compute_cycles = bound("cpu.compute_cycles_total")
        self.overhead_cycles = bound("cpu.overhead_cycles_total")

    def record_send(self, message) -> None:
        """Mirror of :meth:`NodeMetrics.record_send` into the registry."""
        # Keyed by the enum member (C-level hash), not ``kind.value``:
        # the .value descriptor is a Python call per message.
        kind = message.kind
        child = self._msg_children.get(kind)
        if child is None:
            child = self.messages.labels(node=self.node_label,
                                         msg_type=kind.value)
            self._msg_children[kind] = child
        # Counter children are bare .value cells; this runs twice per
        # message (send + its NodeMetrics mirror), so skip the inc()
        # call frame per field.
        child.value += 1
        self.data_bytes.value += message.data_bytes
        self.wire_bytes.value += message.size_bytes


class Observability:
    """Registry + tracer + simulated clock for one machine."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer or Tracer()
        self.clock = clock or (lambda: 0.0)
        self.tracer.clock = self.clock
        install_catalog(self.registry)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point registry spans and the tracer at the sim clock."""
        self.clock = clock
        self.tracer.clock = clock

    def node_instruments(self, proc: int) -> NodeInstruments:
        return NodeInstruments(self.registry, proc)

    def span(self, name: str, histogram=None, **fields) -> Span:
        return Span(self.clock, name, histogram=histogram,
                    tracer=self.tracer, **fields)

    def close(self) -> None:
        self.tracer.close()
