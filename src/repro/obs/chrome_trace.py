"""Chrome trace-event JSON export (loadable in Perfetto).

Layout:

- process 1, "processors": one track (thread) per simulated
  processor, carrying complete (``X``) slices for compute spans,
  interval seals (diff creation), lock/barrier waits, and access
  misses;
- process 2, "network": one track per destination port, carrying the
  wire occupancy of every transmission;
- flow events (``s``/``f``) arrow every message from its sender's
  track to its receiver's track, keyed by message id.

Timestamps are simulated processor *cycles* written into the
trace-event ``ts`` field (which viewers display as microseconds) —
relative magnitudes, not wall time.  See docs/tracing.md.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.causal import CausalTrace

_PID_PROCS = 1
_PID_NET = 2


def _meta(pid: int, tid: Optional[int], name: str,
          what: str) -> Dict[str, Any]:
    event: Dict[str, Any] = {"ph": "M", "pid": pid, "name": what,
                             "args": {"name": name}}
    if tid is not None:
        event["tid"] = tid
    return event


def _slice(pid: int, tid: int, name: str, ts: float, dur: float,
           cat: str, args: Optional[dict] = None) -> Dict[str, Any]:
    event: Dict[str, Any] = {"ph": "X", "pid": pid, "tid": tid,
                             "name": name, "cat": cat,
                             "ts": ts, "dur": max(dur, 0.0)}
    if args:
        event["args"] = args
    return event


def chrome_trace(trace: CausalTrace) -> Dict[str, Any]:
    """Render ``trace`` as a Chrome trace-event JSON object."""
    events: List[Dict[str, Any]] = []
    procs = sorted(set(trace.computes) | set(trace.wakes)
                   | set(trace.finish)
                   | {m.src for m in trace.messages.values()
                      if m.src >= 0}
                   | {m.dst for m in trace.messages.values()
                      if m.dst >= 0})

    events.append(_meta(_PID_PROCS, None, "processors",
                        "process_name"))
    events.append(_meta(_PID_NET, None, "network", "process_name"))
    for proc in procs:
        events.append(_meta(_PID_PROCS, proc, f"cpu {proc}",
                            "thread_name"))
        events.append(_meta(_PID_NET, proc, f"port->{proc}",
                            "thread_name"))

    for proc, spans in trace.computes.items():
        for started, end, cycles in spans:
            events.append(_slice(_PID_PROCS, proc, "compute",
                                 started, end - started, "cpu",
                                 {"pure_cycles": cycles}))
    for proc, seals in trace.seals.items():
        for ts, cost in seals:
            if cost > 0:
                events.append(_slice(_PID_PROCS, proc, "diff (seal)",
                                     ts, cost, "protocol"))

    for event in trace.events:
        name = event.name
        fields = event.fields
        if name == "sync.lock_acquired":
            waited = fields.get("wait_cycles", 0.0)
            if waited > 0:
                events.append(_slice(
                    _PID_PROCS, fields.get("node", 0),
                    f"lock {fields.get('lock')} wait",
                    event.ts - waited, waited, "sync"))
        elif name == "sync.barrier_done":
            waited = fields.get("wait_cycles", 0.0)
            if waited > 0:
                events.append(_slice(
                    _PID_PROCS, fields.get("node", 0),
                    f"barrier {fields.get('barrier')} wait",
                    event.ts - waited, waited, "sync"))
        elif name == "protocol.fault_done":
            waited = fields.get("waited", 0.0)
            if waited > 0:
                events.append(_slice(
                    _PID_PROCS, fields.get("node", 0),
                    f"page {fields.get('page')} miss",
                    event.ts - waited, waited, "protocol"))

    for message in trace.messages.values():
        if message.accept_ts is not None:
            events.append(_slice(
                _PID_NET, max(message.dst, 0), message.kind,
                message.accept_ts + message.waited, message.wire,
                "net",
                {"msg": message.msg_id, "src": message.src,
                 "waited": message.waited}))
        if message.send_ts is None or message.recv_ts is None:
            continue
        flow = {"pid": _PID_PROCS, "cat": "msg",
                "name": message.kind or "msg", "id": message.msg_id}
        events.append({**flow, "ph": "s", "tid": max(message.src, 0),
                       "ts": message.send_ts})
        events.append({**flow, "ph": "f", "bp": "e",
                       "tid": max(message.dst, 0),
                       "ts": message.recv_ts})

    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"time_unit": "cycles"}}


def validate_chrome_trace(obj: Any) -> List[str]:
    """Minimal structural schema check of a Chrome trace-event JSON
    object.  Returns a list of problems (empty when valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return ["top level is not an object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    flows: Dict[Tuple[Any, Any], set] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("M", "X", "s", "f", "B", "E", "i", "C"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if "pid" not in event:
            errors.append(f"{where}: missing pid")
        if ph == "M":
            if event.get("name") not in ("process_name",
                                         "thread_name"):
                errors.append(f"{where}: metadata name "
                              f"{event.get('name')!r}")
            if "name" not in event.get("args", {}):
                errors.append(f"{where}: metadata without args.name")
            continue
        if not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric ts")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs dur >= 0")
            if not event.get("name"):
                errors.append(f"{where}: X event without name")
        elif ph in ("s", "f"):
            if "id" not in event:
                errors.append(f"{where}: flow event without id")
            else:
                flows.setdefault((event.get("cat"), event["id"]),
                                 set()).add(ph)
    for (cat, flow_id), phases in flows.items():
        if phases != {"s", "f"}:
            errors.append(f"flow {cat}/{flow_id}: has {sorted(phases)}"
                          ", needs both start (s) and finish (f)")
    return errors
