"""Chrome trace-event JSON export (loadable in Perfetto).

Layout:

- process 1, "processors": one track (thread) per simulated
  processor, carrying complete (``X``) slices for compute spans,
  interval seals (diff creation), lock/barrier waits, and access
  misses;
- process 2, "network": one track per destination port, carrying the
  wire occupancy of every transmission;
- process 3, "telemetry" (only when a timeseries sampler is passed):
  counter (``C``) tracks sampled per window — events dispatched,
  messages, wire KB, lock wait, queue depth, and the serving series
  (requests, p99 µs, SLO burn rate);
- flow events (``s``/``f``) arrow every message from its sender's
  track to its receiver's track, keyed by message id.

Timestamps are simulated processor *cycles* written into the
trace-event ``ts`` field (which viewers display as microseconds) —
relative magnitudes, not wall time.  See docs/tracing.md.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.causal import CausalTrace

_PID_PROCS = 1
_PID_NET = 2
_PID_TELEMETRY = 3


def _meta(pid: int, tid: Optional[int], name: str,
          what: str) -> Dict[str, Any]:
    event: Dict[str, Any] = {"ph": "M", "pid": pid, "name": what,
                             "args": {"name": name}}
    if tid is not None:
        event["tid"] = tid
    return event


def _slice(pid: int, tid: int, name: str, ts: float, dur: float,
           cat: str, args: Optional[dict] = None) -> Dict[str, Any]:
    event: Dict[str, Any] = {"ph": "X", "pid": pid, "tid": tid,
                             "name": name, "cat": cat,
                             "ts": ts, "dur": max(dur, 0.0)}
    if args:
        event["args"] = args
    return event


def _counter(name: str, ts: float, value: float) -> Dict[str, Any]:
    return {"ph": "C", "pid": _PID_TELEMETRY, "name": name,
            "cat": "telemetry", "ts": ts, "args": {"value": value}}


def _counter_tracks(timeseries) -> List[Dict[str, Any]]:
    """Counter (``C``) events for a :class:`TimeseriesSampler`'s
    windows, one sample per window at the window's start.  Perfetto
    draws each named counter as a stepped track under the telemetry
    process."""
    events: List[Dict[str, Any]] = [
        _meta(_PID_TELEMETRY, None, "telemetry", "process_name")]
    serving = any(w.requests for w in timeseries.windows)
    for w in timeseries.windows:
        ts = w.t0_cycles
        events.append(_counter("events dispatched", ts, w.events))
        events.append(_counter("messages", ts,
                               sum(w.messages.values())))
        events.append(_counter("wire KB", ts, w.wire_bytes / 1024))
        events.append(_counter("lock wait cycles", ts,
                               w.lock_wait_cycles))
        events.append(_counter("queue depth", ts, w.queue_depth))
        if serving:
            events.append(_counter("requests", ts, w.requests))
            events.append(_counter("p99 us", ts, w.p99_us))
            events.append(_counter("SLO burn rate", ts, w.burn_rate))
    return events


def chrome_trace(trace: CausalTrace,
                 timeseries=None) -> Dict[str, Any]:
    """Render ``trace`` as a Chrome trace-event JSON object.  With a
    bound :class:`repro.obs.TimeseriesSampler` in ``timeseries``, the
    export also carries its windows as counter tracks."""
    events: List[Dict[str, Any]] = []
    procs = sorted(set(trace.computes) | set(trace.wakes)
                   | set(trace.finish)
                   | {m.src for m in trace.messages.values()
                      if m.src >= 0}
                   | {m.dst for m in trace.messages.values()
                      if m.dst >= 0})

    events.append(_meta(_PID_PROCS, None, "processors",
                        "process_name"))
    events.append(_meta(_PID_NET, None, "network", "process_name"))
    for proc in procs:
        events.append(_meta(_PID_PROCS, proc, f"cpu {proc}",
                            "thread_name"))
        events.append(_meta(_PID_NET, proc, f"port->{proc}",
                            "thread_name"))

    for proc, spans in trace.computes.items():
        for started, end, cycles in spans:
            events.append(_slice(_PID_PROCS, proc, "compute",
                                 started, end - started, "cpu",
                                 {"pure_cycles": cycles}))
    for proc, seals in trace.seals.items():
        for ts, cost in seals:
            if cost > 0:
                events.append(_slice(_PID_PROCS, proc, "diff (seal)",
                                     ts, cost, "protocol"))

    for event in trace.events:
        name = event.name
        fields = event.fields
        if name == "sync.lock_acquired":
            waited = fields.get("wait_cycles", 0.0)
            if waited > 0:
                events.append(_slice(
                    _PID_PROCS, fields.get("node", 0),
                    f"lock {fields.get('lock')} wait",
                    event.ts - waited, waited, "sync"))
        elif name == "sync.barrier_done":
            waited = fields.get("wait_cycles", 0.0)
            if waited > 0:
                events.append(_slice(
                    _PID_PROCS, fields.get("node", 0),
                    f"barrier {fields.get('barrier')} wait",
                    event.ts - waited, waited, "sync"))
        elif name == "protocol.fault_done":
            waited = fields.get("waited", 0.0)
            if waited > 0:
                events.append(_slice(
                    _PID_PROCS, fields.get("node", 0),
                    f"page {fields.get('page')} miss",
                    event.ts - waited, waited, "protocol"))

    for message in trace.messages.values():
        if message.accept_ts is not None:
            events.append(_slice(
                _PID_NET, max(message.dst, 0), message.kind,
                message.accept_ts + message.waited, message.wire,
                "net",
                {"msg": message.msg_id, "src": message.src,
                 "waited": message.waited}))
        if message.send_ts is None or message.recv_ts is None:
            continue
        flow = {"pid": _PID_PROCS, "cat": "msg",
                "name": message.kind or "msg", "id": message.msg_id}
        events.append({**flow, "ph": "s", "tid": max(message.src, 0),
                       "ts": message.send_ts})
        events.append({**flow, "ph": "f", "bp": "e",
                       "tid": max(message.dst, 0),
                       "ts": message.recv_ts})

    if timeseries is not None and timeseries.windows:
        events.extend(_counter_tracks(timeseries))

    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"time_unit": "cycles"}}


def validate_chrome_trace(obj: Any) -> List[str]:
    """Minimal structural schema check of a Chrome trace-event JSON
    object.  Returns a list of problems (empty when valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return ["top level is not an object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    flows: Dict[Tuple[Any, Any], set] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("M", "X", "s", "f", "B", "E", "i", "C"):
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if "pid" not in event:
            errors.append(f"{where}: missing pid")
        if ph == "M":
            if event.get("name") not in ("process_name",
                                         "thread_name"):
                errors.append(f"{where}: metadata name "
                              f"{event.get('name')!r}")
            if "name" not in event.get("args", {}):
                errors.append(f"{where}: metadata without args.name")
            continue
        if not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric ts")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs dur >= 0")
            if not event.get("name"):
                errors.append(f"{where}: X event without name")
        elif ph == "C":
            if not event.get("name"):
                errors.append(f"{where}: counter event without name")
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                errors.append(f"{where}: counter event needs a "
                              "non-empty args object")
            elif not all(isinstance(v, (int, float))
                         for v in args.values()):
                errors.append(f"{where}: counter args must be numeric")
        elif ph in ("s", "f"):
            if "id" not in event:
                errors.append(f"{where}: flow event without id")
            else:
                flows.setdefault((event.get("cat"), event["id"]),
                                 set()).add(ph)
    for (cat, flow_id), phases in flows.items():
        if phases != {"s", "f"}:
            errors.append(f"flow {cat}/{flow_id}: has {sorted(phases)}"
                          ", needs both start (s) and finish (f)")
    return errors
