"""Windowed time-series telemetry: the registry, over time.

Every number the registry reports is an end-of-run aggregate, so phase
behaviour — update bursts at lock releases, barrier-synchronized
message storms, crash-recovery dips, serving-latency transients — is
invisible.  A :class:`TimeseriesSampler` fixes that: attached to a
machine, it snapshots a fixed probe set (events dispatched, messages
by kind, wire/data bytes, lock wait, diff bytes, pending-event depth,
and — when the serving workload runs — per-window request completions
with nearest-rank p50/p99 and SLO burn rate) every ``window_us`` of
*simulated* time and emits **delta-encoded** windows: each window
carries the activity inside ``[t0, t1)``, not the cumulative total.

Window semantics (docs/observability.md):

- Boundaries lie on the fixed grid ``k * window_cycles``.  The
  scheduler closes all elapsed windows the moment a heap pop advances
  the clock to or past a boundary, *before* the popped callback runs,
  so an event dispatched exactly at a boundary lands in the window
  that starts there.  A clock jump across several boundaries closes
  one window holding the accrued deltas plus empty windows for the
  fully-skipped periods — metric state only changes when events
  dispatch, so the deltas genuinely belong to the window the jump
  started in.
- The run's trailing partial window ``[k * window_cycles, end]`` is
  closed by :meth:`TimeseriesSampler.finish`.
- ``queue_depth`` is a *gauge* (the pending-event count at the
  window's closing boundary), everything else in a window is a delta.
- Because boundaries are grid-aligned, merging ``k`` adjacent windows
  (:func:`merge_windows`) reproduces exactly what sampling at
  ``k * window_us`` would have recorded — the associativity property
  ``tests/properties/test_timeseries_merge.py`` pins.

Zero overhead when disabled: a machine without a sampler takes the
unmodified fast dispatch loops (one ``is None`` check per *run*, not
per event) and the serving pump's ``if sampler is not None:`` guard
never fires — the 19 golden dumps stay byte-identical and
``benchmarks/test_perf_core.py`` bounds the instrumented-but-disabled
configuration under 1%.  Enabled sampling is pure observation: it
schedules nothing and only reads, so the simulation's event sequence,
metrics, and :class:`~repro.core.metrics.RunResult` are *identical*
with and without it (``tests/obs/test_timeseries.py`` asserts the
canonical dumps match byte for byte).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Bumped whenever the exported window layout changes.
TIMESERIES_SCHEMA = "repro.obs.timeseries/1"

#: Default SLO latency threshold (µs) and attainment target; the burn
#: rate of a window is ``violation_fraction / (1 - slo_target)`` — the
#: SRE convention where 1.0 means "spending error budget exactly as
#: fast as the target allows".
DEFAULT_SLO_US = 500.0
DEFAULT_SLO_TARGET = 0.999


def _percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile of an already-sorted list (the serving
    convention, see :func:`repro.analysis.serving.percentile`)."""
    if not values:
        return 0.0
    rank = max(1, math.ceil(p / 100.0 * len(values)))
    return float(values[rank - 1])


@dataclass
class Window:
    """One closed sampling window ``[t0, t1)`` of delta-encoded
    activity.  ``latencies_us`` (the raw request latencies completed in
    the window, sorted) stays out of :meth:`to_dict` — it exists so
    :func:`merge_windows` can recompute exact percentiles."""

    index: int
    t0_cycles: float
    t1_cycles: float
    events: int
    messages: Dict[str, float]
    wire_bytes: float
    data_bytes: float
    lock_wait_cycles: float
    diff_bytes: float
    queue_depth: int
    requests: int
    slo_violations: int
    p50_us: float
    p99_us: float
    burn_rate: float
    latencies_us: List[float] = field(default_factory=list, repr=False)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "t0_cycles": self.t0_cycles,
            "t1_cycles": self.t1_cycles,
            "events": self.events,
            "messages": dict(sorted(self.messages.items())),
            "wire_bytes": self.wire_bytes,
            "data_bytes": self.data_bytes,
            "lock_wait_cycles": self.lock_wait_cycles,
            "diff_bytes": self.diff_bytes,
            "queue_depth": self.queue_depth,
            "requests": self.requests,
            "slo_violations": self.slo_violations,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "burn_rate": self.burn_rate,
        }


def _request_stats(latencies_us: List[float], slo_us: float,
                   slo_target: float):
    """(requests, violations, p50, p99, burn) of one window's sorted
    latency list."""
    requests = len(latencies_us)
    violations = sum(1 for lat in latencies_us if lat > slo_us)
    burn = (violations / requests / (1.0 - slo_target)
            if requests else 0.0)
    return (requests, violations, _percentile(latencies_us, 50),
            _percentile(latencies_us, 99), burn)


class TimeseriesSampler:
    """Samples a machine's metrics registry on the simulated-time grid.

    Construct with the window size (and SLO parameters for the serving
    probes), then hand it to :func:`repro.core.runner.run_app` (or
    :class:`repro.core.machine.Machine`) via the ``sampler`` keyword —
    the machine calls :meth:`bind`, the scheduler's sampled dispatch
    loop calls :meth:`advance_to` on boundary crossings, the serving
    pump feeds :meth:`record_request`, and the machine closes the
    trailing window with :meth:`finish` when the run ends.
    """

    def __init__(self, window_us: float,
                 slo_us: float = DEFAULT_SLO_US,
                 slo_target: float = DEFAULT_SLO_TARGET) -> None:
        if not window_us > 0:
            raise ValueError(
                f"window must be > 0 µs, got {window_us}")
        if not slo_us > 0:
            raise ValueError(f"SLO must be > 0 µs, got {slo_us}")
        if not 0.0 < slo_target < 1.0:
            raise ValueError(
                f"SLO target must be within (0, 1), got {slo_target}")
        self.window_us = float(window_us)
        self.slo_us = float(slo_us)
        self.slo_target = float(slo_target)
        self.windows: List[Window] = []
        self.window_cycles: float = 0.0
        self.next_boundary: float = math.inf
        self.cpu_mhz: float = 0.0
        self._sim = None
        self._registry = None
        self._word_size = 8
        self._origin = 0.0
        self._window_start = 0.0
        self._last: Optional[dict] = None
        self._latencies: List[float] = []

    # -- machine wiring ------------------------------------------------

    def bind(self, machine) -> None:
        """Resolve the probe handles against one machine and arm the
        first boundary.  Rejects windows finer than the scheduler's
        resolution (one cycle) — a grid the clock can never land on."""
        config = machine.config
        # µs × cycles/µs, computed directly (not through the
        # seconds-based helper) so integral windows stay exact floats:
        # the grid k * window_cycles must be reproducible across
        # window sizes for the merge law to hold bit-for-bit.
        self.window_cycles = self.window_us * config.cpu_mhz
        if self.window_cycles < 1.0:
            raise ValueError(
                f"window of {self.window_us} µs is "
                f"{self.window_cycles:.3f} cycles at "
                f"{config.cpu_mhz:g} MHz — smaller than the scheduler "
                "tick (1 cycle)")
        self.cpu_mhz = config.cpu_mhz
        self._word_size = config.word_size
        self._sim = machine.sim
        self._registry = machine.obs.registry
        self._origin = machine.sim.now
        self._window_start = machine.sim.now
        self.next_boundary = self._origin + self.window_cycles
        self._last = self._snapshot()
        machine.sim.attach_sampler(self)

    def _snapshot(self) -> dict:
        """Cumulative probe values.  Every probe is *live* mid-run:
        the message/byte/lock/diff metrics are incremented per event
        by pre-bound registry children, and the sampled dispatch loop
        maintains ``processed_events`` per event (the batched obs
        counter flushes only at loop exit, so it is not read here)."""
        registry = self._registry
        return {
            "events": self._sim.processed_events,
            "messages": registry.get(
                "dsm.messages_total").by_label("msg_type"),
            "wire_bytes": registry.get("net.wire_bytes_total").total(),
            "data_bytes": registry.get("net.data_bytes_total").total(),
            "lock_wait_cycles": registry.get(
                "sync.lock_wait_cycles").total(),
            "diff_bytes": registry.get("dsm.diff_words_total").total()
            * self._word_size,
        }

    # -- sampling hooks (scheduler / serving pump) ---------------------

    def advance_to(self, time: float) -> float:
        """Close every window whose boundary is at or before ``time``;
        returns the new next boundary.  Called by the sampled dispatch
        loop on the heap pop that advances the clock, *before* the
        popped callback runs."""
        boundary = self.next_boundary
        while time >= boundary:
            self._close(boundary)
            # Boundaries come from the window index, not accumulation:
            # k * window_cycles is bit-identical however the grid is
            # walked, so merged fine windows line up exactly with a
            # coarser sampler's.
            boundary = (self._origin
                        + (len(self.windows) + 1) * self.window_cycles)
        self.next_boundary = boundary
        return boundary

    def record_request(self, latency_cycles: float) -> None:
        """One serving request completed ``latency_cycles`` after its
        scheduled arrival (fed by the serving pump under an
        ``if sampler is not None:`` guard)."""
        self._latencies.append(latency_cycles / self.cpu_mhz)

    def finish(self, now: float) -> None:
        """Close the trailing partial window (called by the machine
        when the run ends).  A zero-length window is emitted only when
        same-cycle events landed after the last boundary."""
        if self._last is None:
            return
        if now > self._window_start or self._has_residual():
            self._close(now)

    def _has_residual(self) -> bool:
        snap = self._snapshot()
        return snap != self._last or bool(self._latencies)

    def _close(self, t1: float) -> None:
        snap = self._snapshot()
        last = self._last
        messages = {
            kind: count - last["messages"].get(kind, 0)
            for kind, count in snap["messages"].items()
            if count - last["messages"].get(kind, 0)}
        latencies = sorted(self._latencies)
        self._latencies = []
        (requests, violations, p50,
         p99, burn) = _request_stats(latencies, self.slo_us,
                                     self.slo_target)
        self.windows.append(Window(
            index=len(self.windows),
            t0_cycles=self._window_start,
            t1_cycles=t1,
            events=snap["events"] - last["events"],
            messages=messages,
            wire_bytes=snap["wire_bytes"] - last["wire_bytes"],
            data_bytes=snap["data_bytes"] - last["data_bytes"],
            lock_wait_cycles=(snap["lock_wait_cycles"]
                              - last["lock_wait_cycles"]),
            diff_bytes=snap["diff_bytes"] - last["diff_bytes"],
            queue_depth=self._sim.pending,
            requests=requests,
            slo_violations=violations,
            p50_us=p50,
            p99_us=p99,
            burn_rate=burn,
            latencies_us=latencies,
        ))
        self._window_start = t1
        self._last = snap

    # -- export --------------------------------------------------------

    def to_dict(self) -> dict:
        """The schema-versioned export ``repro timeseries export``
        writes (see docs/observability.md)."""
        return {
            "schema": TIMESERIES_SCHEMA,
            "window_us": self.window_us,
            "window_cycles": self.window_cycles,
            "cpu_mhz": self.cpu_mhz,
            "slo_us": self.slo_us,
            "slo_target": self.slo_target,
            "windows": [window.to_dict() for window in self.windows],
        }

    def as_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=True)


def merge_windows(windows: List[Window], factor: int,
                  slo_us: float = DEFAULT_SLO_US,
                  slo_target: float = DEFAULT_SLO_TARGET
                  ) -> List[Window]:
    """Merge each run of ``factor`` consecutive windows into one.

    Deltas add, message maps add, the queue-depth gauge takes the last
    member's value (both samplers read pending at the same closing
    boundary), and request percentiles are recomputed from the
    concatenated raw latencies — so the result equals what sampling at
    ``factor * window_us`` would have produced, and merging composes:
    ``merge(merge(w, a), b) == merge(w, a * b)``.
    """
    if factor < 1:
        raise ValueError(f"merge factor must be >= 1, got {factor}")
    merged: List[Window] = []
    for start in range(0, len(windows), factor):
        group = windows[start:start + factor]
        messages: Dict[str, float] = {}
        for window in group:
            for kind, count in window.messages.items():
                messages[kind] = messages.get(kind, 0) + count
        latencies = sorted(lat for window in group
                           for lat in window.latencies_us)
        (requests, violations, p50,
         p99, burn) = _request_stats(latencies, slo_us, slo_target)
        merged.append(Window(
            index=len(merged),
            t0_cycles=group[0].t0_cycles,
            t1_cycles=group[-1].t1_cycles,
            events=sum(w.events for w in group),
            messages=messages,
            wire_bytes=sum(w.wire_bytes for w in group),
            data_bytes=sum(w.data_bytes for w in group),
            lock_wait_cycles=sum(w.lock_wait_cycles for w in group),
            diff_bytes=sum(w.diff_bytes for w in group),
            queue_depth=group[-1].queue_depth,
            requests=requests,
            slo_violations=violations,
            p50_us=p50,
            p99_us=p99,
            burn_rate=burn,
            latencies_us=latencies,
        ))
    return merged


def format_timeseries_table(sampler: TimeseriesSampler) -> str:
    """Fixed-width rendering of a sampler's windows — what ``repro
    timeseries report`` prints.  Times in µs at the bound machine's
    clock rate."""
    mhz = sampler.cpu_mhz or 1.0
    lines = [f"{'t0us':>9s} {'t1us':>9s} {'events':>8s} "
             f"{'msgs':>7s} {'wireKB':>8s} {'lockus':>8s} "
             f"{'depth':>6s} {'reqs':>5s} {'p50us':>8s} "
             f"{'p99us':>8s} {'burn':>7s}"]
    for w in sampler.windows:
        lines.append(
            f"{w.t0_cycles / mhz:9.0f} {w.t1_cycles / mhz:9.0f} "
            f"{w.events:8d} {sum(w.messages.values()):7.0f} "
            f"{w.wire_bytes / 1024:8.2f} "
            f"{w.lock_wait_cycles / mhz:8.1f} "
            f"{w.queue_depth:6d} {w.requests:5d} "
            f"{w.p50_us:8.1f} {w.p99_us:8.1f} {w.burn_rate:7.2f}")
    return "\n".join(lines)
