"""Label-aware metrics registry: counters, gauges, histograms.

The hot-path contract is prometheus-style: ``labels(...)`` returns a
*child* that the caller keeps and increments directly, so per-message
emission costs one attribute access and one addition, not a dict walk.
Catalogued names (see :mod:`repro.obs.catalog`) resolve their spec
automatically; ad-hoc metrics supply their own description/unit/labels.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.catalog import (CATALOG_BY_NAME, COUNTER, GAUGE,
                               HISTOGRAM, MetricSpec)


class MetricError(ValueError):
    """Inconsistent registration or label use."""


#: Default histogram bucket upper bounds (cycles); +inf is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8)


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise MetricError(f"counter decrement: {amount}")
        self.value += amount


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def set_max(self, value) -> None:
        if value > self.value:
            self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount


class _HistogramChild:
    __slots__ = ("count", "sum", "min", "max", "bounds", "buckets")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)  # last = +inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        # First bucket with bound >= value — bisect_left on the sorted
        # bounds is the C-speed equivalent of the linear <= scan (the
        # overflow bucket is buckets[len(bounds)]).
        self.buckets[bisect_left(self.bounds, value)] += 1

    def snapshot(self) -> dict:
        return {"count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max,
                "buckets": dict(zip([*map(str, self.bounds), "+inf"],
                                    self.buckets))}


_CHILD_FACTORY = {COUNTER: _CounterChild, GAUGE: _GaugeChild}


class Metric:
    """One named metric holding a child per label-value combination."""

    def __init__(self, spec: MetricSpec,
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.spec = spec
        self._buckets = tuple(buckets or DEFAULT_BUCKETS)
        self._children: Dict[Tuple, object] = {}
        # Expected label names precomputed once: labels() sits on the
        # per-message hot path (docs/performance.md).
        self._label_names = spec.labels
        self._label_set = frozenset(spec.labels)
        self._default = None if spec.labels else self.labels()

    def _make_child(self):
        if self.spec.kind == HISTOGRAM:
            return _HistogramChild(self._buckets)
        return _CHILD_FACTORY[self.spec.kind]()

    def labels(self, **labelvalues):
        """Get (or create) the child for one label-value combination."""
        if set(labelvalues) != self._label_set:
            raise MetricError(
                f"{self.spec.name} takes labels {self._label_names}, "
                f"got {tuple(sorted(labelvalues))}")
        key = tuple(str(labelvalues[name])
                    for name in self._label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    # -- label-free conveniences (delegate to the sole child) ----------

    def _sole(self):
        if self._default is None:
            raise MetricError(
                f"{self.spec.name} is labelled {self.spec.labels}; "
                "use .labels(...)")
        return self._default

    def inc(self, amount=1) -> None:
        self._sole().inc(amount)

    def set(self, value) -> None:
        self._sole().set(value)

    def set_max(self, value) -> None:
        self._sole().set_max(value)

    def observe(self, value) -> None:
        self._sole().observe(value)

    # -- reading -------------------------------------------------------

    def series(self) -> Iterable[Tuple[Dict[str, str], object]]:
        for key, child in self._children.items():
            yield dict(zip(self.spec.labels, key)), child

    def total(self) -> float:
        """Sum of all series (counter/gauge values; histogram sums)."""
        if self.spec.kind == HISTOGRAM:
            return sum(child.sum for child in self._children.values())
        return sum(child.value for child in self._children.values())

    def by_label(self, label: str) -> Dict[str, float]:
        """Totals grouped by one label's values."""
        if label not in self.spec.labels:
            raise MetricError(
                f"{self.spec.name} has no label {label!r}")
        position = self.spec.labels.index(label)
        out: Dict[str, float] = {}
        for key, child in self._children.items():
            value = (child.sum if self.spec.kind == HISTOGRAM
                     else child.value)
            out[key[position]] = out.get(key[position], 0) + value
        return out


class MetricsRegistry:
    """All metrics of one simulated machine run.

    ``const_labels`` describe the whole run (protocol, network, app,
    nprocs) and are reported once in the dump rather than repeated on
    every series.
    """

    def __init__(self,
                 const_labels: Optional[Dict[str, str]] = None) -> None:
        self._metrics: Dict[str, Metric] = {}
        self.const_labels: Dict[str, str] = dict(const_labels or {})

    # -- registration --------------------------------------------------

    def from_spec(self, spec: MetricSpec,
                  buckets: Optional[Tuple[float, ...]] = None) -> Metric:
        existing = self._metrics.get(spec.name)
        if existing is not None:
            if existing.spec != spec:
                raise MetricError(
                    f"metric {spec.name} re-registered with a "
                    "different spec")
            return existing
        metric = Metric(spec, buckets=buckets)
        self._metrics[spec.name] = metric
        return metric

    def _resolve(self, name: str, kind: str, unit: str,
                 description: str, labels, consumers) -> MetricSpec:
        spec = CATALOG_BY_NAME.get(name)
        if spec is not None:
            if spec.kind != kind:
                raise MetricError(
                    f"{name} is catalogued as a {spec.kind}, "
                    f"requested as a {kind}")
            return spec
        return MetricSpec(name=name, kind=kind, unit=unit,
                          description=description,
                          labels=tuple(labels),
                          consumers=tuple(consumers))

    def counter(self, name: str, *, unit: str = "",
                description: str = "", labels=(),
                consumers=()) -> Metric:
        return self.from_spec(self._resolve(name, COUNTER, unit,
                                            description, labels,
                                            consumers))

    def gauge(self, name: str, *, unit: str = "", description: str = "",
              labels=(), consumers=()) -> Metric:
        return self.from_spec(self._resolve(name, GAUGE, unit,
                                            description, labels,
                                            consumers))

    def histogram(self, name: str, *, unit: str = "",
                  description: str = "", labels=(), consumers=(),
                  buckets: Optional[Tuple[float, ...]] = None) -> Metric:
        return self.from_spec(self._resolve(name, HISTOGRAM, unit,
                                            description, labels,
                                            consumers),
                              buckets=buckets)

    # -- reading -------------------------------------------------------

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise MetricError(f"no metric named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def total(self, name: str) -> float:
        return self.get(name).total()

    def by_label(self, name: str, label: str) -> Dict[str, float]:
        return self.get(name).by_label(label)

    # -- restoring (repro.lab result cache) ----------------------------

    @classmethod
    def from_dump(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a readable registry from :meth:`dump` output, so a
        cached :class:`repro.RunResult` answers ``metric_total`` /
        ``metric_by`` exactly like the live run did.  Re-dumping the
        restored registry reproduces ``data`` (the lab determinism
        tests pin this)."""
        registry = cls(const_labels=data.get("const_labels"))
        for entry in data.get("metrics", ()):
            spec = CATALOG_BY_NAME.get(entry["name"])
            if spec is None or spec.kind != entry["type"]:
                spec = MetricSpec(
                    name=entry["name"], kind=entry["type"],
                    unit=entry["unit"],
                    description=entry["description"],
                    labels=tuple(entry["labels"]),
                    consumers=tuple(entry["consumers"]))
            buckets = None
            if entry["type"] == HISTOGRAM and entry["series"]:
                # Sorted numerically: JSON stores (and sort_keys
                # reorders) bucket bounds as string keys.
                buckets = tuple(sorted(
                    float(bound)
                    for bound in entry["series"][0]["buckets"]
                    if bound != "+inf"))
            metric = registry.from_spec(spec, buckets=buckets)
            for series in entry["series"]:
                child = metric.labels(**series["labels"])
                if entry["type"] == HISTOGRAM:
                    child.count = series["count"]
                    child.sum = series["sum"]
                    child.min = series["min"]
                    child.max = series["max"]
                    child.buckets = [
                        series["buckets"][bound]
                        for bound in (*map(str, child.bounds),
                                      "+inf")]
                else:
                    child.value = series["value"]
        return registry

    # -- export --------------------------------------------------------

    def dump(self) -> dict:
        """The full stats schema: const labels + every metric with its
        spec and current series (see docs/observability.md)."""
        metrics = []
        for name in self.names():
            metric = self._metrics[name]
            spec = metric.spec
            series = []
            for labelvalues, child in metric.series():
                # Sorted label keys keep the dump canonical: identical
                # bytes whether it comes from a live run or back off
                # the lab cache (which stores JSON with sorted keys).
                labelvalues = dict(sorted(labelvalues.items()))
                if spec.kind == HISTOGRAM:
                    entry = {"labels": labelvalues,
                             **child.snapshot()}
                else:
                    entry = {"labels": labelvalues,
                             "value": child.value}
                series.append(entry)
            series.sort(key=lambda e: sorted(e["labels"].items()))
            metrics.append({
                "name": name, "type": spec.kind, "unit": spec.unit,
                "description": spec.description,
                "labels": list(spec.labels),
                "consumers": list(spec.consumers),
                "total": metric.total(),
                "series": series,
            })
        return {"const_labels": dict(sorted(self.const_labels.items())),
                "metrics": metrics}

    def as_json(self, indent: int = 2) -> str:
        return json.dumps(self.dump(), indent=indent, sort_keys=False)

    def as_text(self, skip_empty: bool = False) -> str:
        """Human-readable table: one line per series."""
        lines = []
        if self.const_labels:
            context = ", ".join(f"{k}={v}" for k, v
                                in sorted(self.const_labels.items()))
            lines.append(f"run: {context}")
        header = f"{'metric':<38s} {'labels':<36s} {'value':>14s} unit"
        lines.append(header)
        lines.append("-" * len(header))
        for name in self.names():
            metric = self._metrics[name]
            spec = metric.spec
            rows = list(metric.series())
            if not rows:
                if not skip_empty:
                    lines.append(f"{name:<38s} {'-':<36s} "
                                 f"{'(no data)':>14s} {spec.unit}")
                continue
            rows.sort(key=lambda item: tuple(item[0].values()))
            for labelvalues, child in rows:
                label_text = ",".join(
                    f"{k}={v}" for k, v in labelvalues.items()) or "-"
                if spec.kind == HISTOGRAM:
                    value_text = (f"n={child.count} "
                                  f"sum={child.sum:.0f}")
                else:
                    value = child.value
                    value_text = (f"{value:.0f}"
                                  if isinstance(value, float)
                                  else str(value))
                lines.append(f"{name:<38s} {label_text:<36s} "
                             f"{value_text:>14s} {spec.unit}")
        return "\n".join(lines)
