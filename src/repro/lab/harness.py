"""The experiment harness: fan run specs out, cache every result.

One :class:`Lab` owns three tiers of result resolution:

1. an **in-memory memo** (per-``Lab`` dict) — dedupes identical specs
   within a session, e.g. the one-processor baselines every figure
   driver needs;
2. the **on-disk content-addressed cache** (optional ``cache_dir``) —
   survives across processes and sessions;
3. **execution**, either in-process (``jobs=None``) or across a
   ``concurrent.futures`` process pool with failure isolation and
   bounded retries.

Everything the harness does is observable through its own
``lab.*``-catalogued :class:`repro.obs.MetricsRegistry` (jobs run,
cache hits per tier, retries, failures, wall time, worker
utilization) — the warm-cache CI gate and ``BENCH_lab.json`` read it.
"""

from __future__ import annotations

import gc
import os
import sys
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, \
    wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.metrics import RunResult, json_safe
from repro.lab.cache import ResultCache
from repro.lab.spec import (RunSpec, code_version, execute_spec,
                            payload_fingerprint)
from repro.obs import MetricsRegistry, install_lab

#: Default on-disk cache location (CLI ``--cache-dir`` default).
DEFAULT_CACHE_DIR = ".repro-cache"

#: cgroup CPU-quota files (module constants so tests can point them
#: at fixtures).  v2: ``max 100000`` or ``200000 100000``
#: (quota period); v1: quota and period in separate files, quota -1
#: when unlimited.
_CGROUP_V2_CPU_MAX = "/sys/fs/cgroup/cpu.max"
_CGROUP_V1_QUOTA = "/sys/fs/cgroup/cpu/cpu.cfs_quota_us"
_CGROUP_V1_PERIOD = "/sys/fs/cgroup/cpu/cpu.cfs_period_us"


def _read_first_line(path: str) -> Optional[str]:
    try:
        with open(path) as handle:
            return handle.readline().strip()
    except OSError:
        return None


def _cgroup_cpus() -> Optional[int]:
    """CPUs allowed by the container's CPU quota, or None when
    unlimited/undetectable.  Fractional quotas round up: a 1.5-CPU
    container can keep two workers busy part-time."""
    line = _read_first_line(_CGROUP_V2_CPU_MAX)
    if line:
        parts = line.split()
        if len(parts) == 2 and parts[0] != "max":
            try:
                quota, period = float(parts[0]), float(parts[1])
            except ValueError:
                return None
            if quota > 0 and period > 0:
                return max(1, -(-int(quota) // int(period)))
    quota_line = _read_first_line(_CGROUP_V1_QUOTA)
    period_line = _read_first_line(_CGROUP_V1_PERIOD)
    if quota_line and period_line:
        try:
            quota, period = float(quota_line), float(period_line)
        except ValueError:
            return None
        if quota > 0 and period > 0:
            return max(1, -(-int(quota) // int(period)))
    return None


def available_cpus() -> int:
    """CPUs this process can actually use, not what the host has.

    Resolution order: the ``REPRO_LAB_CPUS`` env override, then the
    minimum of every signal that answers (scheduler affinity mask,
    cgroup v2/v1 CPU quota, ``os.cpu_count()``).  Containers routinely
    make ``os.cpu_count()`` wrong in both directions, which is how
    BENCH_lab once reported ``effective_jobs: 1`` with a speedup of
    1.0x on a multi-core runner."""
    override = os.environ.get("REPRO_LAB_CPUS")
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    signals = []
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            signals.append(len(getaffinity(0)))
        except OSError:
            pass
    quota = _cgroup_cpus()
    if quota is not None:
        signals.append(quota)
    count = os.cpu_count()
    if count:
        signals.append(count)
    return max(1, min(signals)) if signals else 1


class LabError(RuntimeError):
    """One or more runs failed every allowed attempt."""

    def __init__(self, failures: Sequence["LabFailure"]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} run(s) failed:"]
        for failure in self.failures[:5]:
            lines.append(f"  {failure.spec.label()}: {failure.error}")
        if len(self.failures) > 5:
            lines.append(f"  ... and {len(self.failures) - 5} more")
        super().__init__("\n".join(lines))


@dataclass
class LabFailure:
    """Terminal failure record for one spec (strict=False slots)."""

    spec: RunSpec
    fingerprint: str
    error: str
    traceback: str
    attempts: int


def _warm_worker(version: str) -> None:
    """Process-pool initializer: runs once per worker, at fork time.

    Seeds the code-version memo (so no worker re-hashes the source
    tree), pays the heavy imports up front instead of inside the first
    real run, and tunes the collector for simulation throughput: the
    startup heap is frozen out of every pass, and the gen-0 threshold
    is raised — the simulator allocates heavily but builds few
    long-lived cycles, so prompt collection only costs time in a
    short-lived worker (simulation results are GC-independent)."""
    from repro.lab import spec as spec_module
    spec_module._code_version_cache = version
    import repro.apps  # noqa: F401  - import cost paid at startup
    import repro.core.runner  # noqa: F401
    gc.collect()
    if hasattr(gc, "freeze"):
        gc.freeze()
    gc.set_threshold(50_000, 25, 25)


def _noop(_: int) -> None:
    """Warm-up ping: forces worker spawn so startup cost is measured
    (and paid) before the first real batch."""
    return None


def _execute_payload(payload: dict) -> dict:
    """Process-pool worker: runs one serialized spec and ships the
    serialized result back.  Must stay a module-level function so the
    pool can pickle it; exceptions are caught and reported as data so
    one crashed run never kills the batch."""
    started = time.perf_counter()
    try:
        spec = RunSpec.from_dict(payload["spec"])
        result = execute_spec(spec,
                              trace_path=payload.get("trace_path"))
        return {"fingerprint": payload["fingerprint"], "ok": True,
                "result": result.to_dict(),
                "seconds": time.perf_counter() - started}
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        return {"fingerprint": payload["fingerprint"], "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
                "seconds": time.perf_counter() - started}


def _execute_payload_batch(payloads: Sequence[dict]) -> List[dict]:
    """Run a chunk of specs in one worker task: small runs are chunked
    so per-future pickling and IPC overhead amortizes (a per-spec
    future made the pool slower than serial at bench scale).  Each
    spec's outcome is still isolated — one failure never poisons its
    chunk-mates."""
    outcomes = [_execute_payload(payload) for payload in payloads]
    # With the raised thresholds from _warm_worker, dead machine
    # graphs (which are cyclic) pile up across runs and progressively
    # slow the worker; one full collection per chunk caps the heap at
    # negligible amortized cost.
    gc.collect()
    return outcomes


class Lab:
    """Parallel experiment runner with a content-addressed cache.

    >>> lab = Lab(jobs=4, cache_dir=".repro-cache")
    >>> results = lab.run_many([RunSpec("jacobi", {"n": 48, ...})])

    ``jobs=None`` (the default) executes misses serially in-process —
    the right mode for library callers and tests; any integer >= 1
    spins up a process pool of that size.  ``cache=False`` disables
    memoization entirely (every spec executes); ``cache_dir=None``
    keeps the memo but skips the disk tier.

    ``trace_dir`` streams a JSONL trace of every *executed* spec into
    that directory — one file per spec (so pool workers never share a
    sink and lines cannot interleave), named
    ``<app>-<protocol>-<fingerprint12>.jsonl``.  Cache hits skip
    execution and therefore produce no trace; run with
    ``cache=False`` to trace everything (determinism guarantees the
    traced run equals the cached one).
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache_dir: Optional[str] = None, cache: bool = True,
                 retries: int = 1, progress: bool = False,
                 registry: Optional[MetricsRegistry] = None,
                 trace_dir: Optional[str] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1 (or None for serial)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.use_cache = cache
        self.disk = (ResultCache(cache_dir)
                     if cache and cache_dir else None)
        self.retries = retries
        self.progress = progress
        self.trace_dir = trace_dir
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
        self._memo: Dict[str, RunResult] = {}
        self._payload_memo: Dict[str, object] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        # Source-tree hash, computed at most once per Lab (it was a
        # per-spec rglob+sha256 of every repro source file before) and
        # shipped to pool workers so they never recompute it either.
        self._code_version: Optional[str] = None
        #: One-time pool spin-up cost (fork + imports + warm pings);
        #: 0.0 until the first parallel batch.  BENCH_lab records it.
        self.executor_startup_seconds = 0.0

        self.registry = registry or MetricsRegistry(
            const_labels={"subsystem": "lab"})
        install_lab(self.registry)
        reg = self.registry
        self._m_executed = reg.get("lab.jobs_executed_total")
        self._m_hits_memory = reg.get("lab.cache_hits_total").labels(
            tier="memory")
        self._m_hits_disk = reg.get("lab.cache_hits_total").labels(
            tier="disk")
        self._m_misses = reg.get("lab.cache_misses_total")
        self._m_retries = reg.get("lab.retries_total")
        self._m_failures = reg.get("lab.failures_total")
        self._m_wall = reg.get("lab.wall_seconds_total")
        self._m_run_seconds = reg.get("lab.run_seconds")
        self._m_utilization = reg.get("lab.worker_utilization")
        self._m_startup = reg.get("lab.executor_startup_seconds")

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "Lab":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def effective_jobs(self) -> int:
        """Worker count actually used: the requested ``jobs`` clamped
        to twice the CPUs actually *available* (see
        :func:`available_cpus`).  ``os.cpu_count()`` alone lied in
        both directions — it reports the host's cores inside a
        quota-limited container (oversubscribing a small container is
        how the pool once ended up slower than serial) and, on some
        runners, reported 1 while the cgroup quota allowed more,
        silently serializing sweeps.  The 2x headroom covers workers
        blocked on pickling/IPC/cache writes rather than simulating."""
        if self.jobs is None:
            return 1
        return max(1, min(self.jobs, 2 * available_cpus()))

    def _version(self) -> str:
        if self._code_version is None:
            self._code_version = code_version()
        return self._code_version

    def warm(self) -> float:
        """Spin up and warm the process pool now, instead of inside
        the first parallel batch (no-op for serial labs).  Returns the
        measured startup seconds — BENCH_lab records this separately
        from batch wall time."""
        if self.jobs is not None:
            self._executor()
        return self.executor_startup_seconds

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            started = time.perf_counter()
            workers = self.effective_jobs
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_warm_worker,
                initargs=(self._version(),))
            # Force every worker to fork and warm up now, so startup
            # is measured (and paid) outside the first real batch.
            list(self._pool.map(_noop, range(workers)))
            self.executor_startup_seconds += (time.perf_counter()
                                              - started)
            self._m_startup.set(self.executor_startup_seconds)
        return self._pool

    # -- running specs -------------------------------------------------

    def run(self, spec: RunSpec) -> RunResult:
        """Resolve one spec (cache or execute)."""
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[RunSpec], strict: bool = True
                 ) -> List[Optional[RunResult]]:
        """Resolve every spec, order-preserving.

        Identical specs (same fingerprint) simulate at most once per
        batch.  A run that fails every attempt is *reported*, never
        fatal to its siblings: with ``strict=True`` (default) a
        :class:`LabError` is raised after the whole batch settles;
        with ``strict=False`` the failing slots hold
        :class:`LabFailure` markers exposed via :attr:`failures` and
        the returned list carries ``None`` there."""
        started = time.perf_counter()
        specs = list(specs)
        version = self._version()
        fingerprints = [spec.fingerprint(version) for spec in specs]
        self.failures: List[LabFailure] = []

        resolved: Dict[str, RunResult] = {}
        to_run: Dict[str, RunSpec] = {}
        for spec, fingerprint in zip(specs, fingerprints):
            if fingerprint in resolved or fingerprint in to_run:
                continue  # batch-level dedupe
            hit = self._lookup(fingerprint)
            if hit is not None:
                resolved[fingerprint] = hit
            else:
                if self.use_cache:
                    self._m_misses.inc()
                to_run[fingerprint] = spec

        failed: Dict[str, LabFailure] = {}
        busy_seconds = 0.0
        if to_run:
            if self.jobs is None:
                busy_seconds = self._run_serial(to_run, resolved,
                                                failed)
            else:
                busy_seconds = self._run_pool(to_run, resolved,
                                              failed,
                                              hits=len(resolved),
                                              total=len(to_run))

        wall = time.perf_counter() - started
        self._m_wall.inc(wall)
        pool_size = self.effective_jobs
        if to_run and wall > 0:
            self._m_utilization.set(
                min(1.0, busy_seconds / (wall * pool_size)))

        self.failures = list(failed.values())
        if self.failures and strict:
            raise LabError(self.failures)
        return [resolved.get(fingerprint)
                for fingerprint in fingerprints]

    # -- execution strategies ------------------------------------------

    def _trace_path(self, fingerprint: str,
                    spec: RunSpec) -> Optional[str]:
        """Per-spec trace file under ``trace_dir`` (None when the lab
        is not tracing)."""
        if self.trace_dir is None:
            return None
        return os.path.join(
            self.trace_dir,
            f"{spec.app}-{spec.protocol}-{fingerprint[:12]}.jsonl")

    def _run_serial(self, to_run, resolved, failed) -> float:
        busy = 0.0
        for fingerprint, spec in to_run.items():
            for attempt in range(1 + self.retries):
                if attempt:
                    self._m_retries.inc()
                started = time.perf_counter()
                try:
                    result = execute_spec(
                        spec,
                        trace_path=self._trace_path(fingerprint,
                                                    spec))
                except BaseException as exc:  # noqa: BLE001
                    busy += time.perf_counter() - started
                    failure = LabFailure(
                        spec=spec, fingerprint=fingerprint,
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback.format_exc(),
                        attempts=attempt + 1)
                    continue
                seconds = time.perf_counter() - started
                busy += seconds
                self._record_success(fingerprint, spec, result,
                                     seconds, resolved)
                failed.pop(fingerprint, None)
                break
            else:
                failed[fingerprint] = failure
                self._m_failures.inc()
        return busy

    def _run_pool(self, to_run, resolved, failed, hits: int,
                  total: int) -> float:
        busy = 0.0
        attempts = {fp: 1 for fp in to_run}
        executor = self._executor()
        workers = self.effective_jobs
        items = [{"fingerprint": fingerprint, "spec": spec.to_dict(),
                  "trace_path": self._trace_path(fingerprint, spec)}
                 for fingerprint, spec in to_run.items()]
        # Chunk small runs: ~4 chunks per worker amortizes pickling
        # and future overhead while keeping the tail balanced.  A
        # lone worker has no tail to balance, so it gets one chunk
        # (fewer IPC round-trips and per-chunk collections).
        chunks_per_worker = 4 if workers > 1 else 1
        chunk_size = max(1, -(-len(items)
                              // (workers * chunks_per_worker)))
        pending: Dict[object, List[str]] = {}
        for offset in range(0, len(items), chunk_size):
            chunk = items[offset:offset + chunk_size]
            future = executor.submit(_execute_payload_batch, chunk)
            pending[future] = [c["fingerprint"] for c in chunk]
        done_count = 0
        while pending:
            done, _ = wait(list(pending),
                           return_when=FIRST_COMPLETED)
            for future in done:
                chunk_fps = pending.pop(future)
                try:
                    outcomes = future.result()
                except BaseException as exc:  # noqa: BLE001
                    # The pool itself broke (worker killed, pickling
                    # error, ...): rebuild it before any retry.
                    outcomes = [
                        {"fingerprint": fp, "ok": False,
                         "error": f"{type(exc).__name__}: {exc}",
                         "traceback": traceback.format_exc(),
                         "seconds": 0.0}
                        for fp in chunk_fps]
                    self.close()
                for outcome in outcomes:
                    fingerprint = outcome["fingerprint"]
                    spec = to_run[fingerprint]
                    busy += outcome.get("seconds", 0.0)
                    if outcome["ok"]:
                        result = RunResult.from_dict(outcome["result"])
                        self._record_success(fingerprint, spec, result,
                                             outcome["seconds"],
                                             resolved,
                                             result_dict=outcome[
                                                 "result"])
                        failed.pop(fingerprint, None)
                        done_count += 1
                        self._progress_line(done_count, total, hits,
                                            len(failed))
                    elif attempts[fingerprint] <= self.retries:
                        attempts[fingerprint] += 1
                        self._m_retries.inc()
                        retry = self._executor().submit(
                            _execute_payload_batch,
                            [{"fingerprint": fingerprint,
                              "spec": spec.to_dict(),
                              "trace_path": self._trace_path(
                                  fingerprint, spec)}])
                        pending[retry] = [fingerprint]
                    else:
                        failed[fingerprint] = LabFailure(
                            spec=spec, fingerprint=fingerprint,
                            error=outcome["error"],
                            traceback=outcome.get("traceback", ""),
                            attempts=attempts[fingerprint])
                        self._m_failures.inc()
                        done_count += 1
                        self._progress_line(done_count, total, hits,
                                            len(failed))
        return busy

    # -- bookkeeping ---------------------------------------------------

    def _lookup(self, fingerprint: str) -> Optional[RunResult]:
        if not self.use_cache:
            return None
        result = self._memo.get(fingerprint)
        if result is not None:
            self._m_hits_memory.inc()
            return result
        if self.disk is not None:
            result = self.disk.get(fingerprint)
            if result is not None:
                self._m_hits_disk.inc()
                self._memo[fingerprint] = result
                return result
        return None

    def _record_success(self, fingerprint: str, spec: RunSpec,
                        result: RunResult, seconds: float,
                        resolved: Dict[str, RunResult],
                        result_dict: Optional[dict] = None) -> None:
        self._m_executed.inc()
        self._m_run_seconds.observe(seconds)
        resolved[fingerprint] = result
        if self.use_cache:
            self._memo[fingerprint] = result
            if self.disk is not None:
                self.disk.put(fingerprint, result, spec=spec,
                              result_dict=result_dict)

    def _progress_line(self, done: int, total: int, hits: int,
                       failures: int) -> None:
        if not self.progress or total <= 1:
            return
        print(f"[lab] {done}/{total} executed "
              f"({hits} cached, {failures} failed)",
              file=sys.stderr, flush=True)

    # -- generic cached computations -----------------------------------

    def cached(self, kind: str, params: dict,
               compute: Callable[[], object]):
        """Content-addressed memo for arbitrary JSON-safe values —
        for drivers whose unit of work is not a single
        :class:`RunSpec` (e.g. Table 1's micro-scenarios).  The key
        commits to ``kind``, ``params``, and the code version, with
        the same invalidation rules as run specs."""
        fingerprint = payload_fingerprint(kind, params)
        if self.use_cache:
            if fingerprint in self._payload_memo:
                self._m_hits_memory.inc()
                return self._payload_memo[fingerprint]
            if self.disk is not None:
                payload = self.disk.get_payload(fingerprint)
                if payload is not None:
                    self._m_hits_disk.inc()
                    self._payload_memo[fingerprint] = payload
                    return payload
            self._m_misses.inc()
        value = json_safe(compute())
        self._m_executed.inc()
        if self.use_cache:
            self._payload_memo[fingerprint] = value
            if self.disk is not None:
                self.disk.put_payload(fingerprint, value,
                                      kind_label=kind)
        return value

    # -- reading back --------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Harness counters as a flat dict (see docs/lab.md)."""
        reg = self.registry
        return {
            "executed": reg.total("lab.jobs_executed_total"),
            "cache_hits_memory":
                reg.by_label("lab.cache_hits_total",
                             "tier").get("memory", 0),
            "cache_hits_disk":
                reg.by_label("lab.cache_hits_total",
                             "tier").get("disk", 0),
            "cache_misses": reg.total("lab.cache_misses_total"),
            "retries": reg.total("lab.retries_total"),
            "failures": reg.total("lab.failures_total"),
            "wall_seconds": reg.total("lab.wall_seconds_total"),
            "worker_utilization":
                reg.total("lab.worker_utilization"),
            "executor_startup_seconds":
                reg.total("lab.executor_startup_seconds"),
        }

    def format_stats(self) -> str:
        """One-line summary for CLI output and the CI gate."""
        stats = self.stats()
        hits = (stats["cache_hits_memory"]
                + stats["cache_hits_disk"])
        return (f"lab: executed {stats['executed']:.0f}, "
                f"cache hits {hits:.0f} "
                f"(memory {stats['cache_hits_memory']:.0f}, "
                f"disk {stats['cache_hits_disk']:.0f}), "
                f"failures {stats['failures']:.0f}, "
                f"wall {stats['wall_seconds']:.1f}s")
