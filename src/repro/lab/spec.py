"""Run specifications and deterministic fingerprinting.

A :class:`RunSpec` is the *complete* description of one simulated run:
application + parameters, protocol, :class:`repro.MachineConfig`
(network, overheads, fault plan, transport tuning, seed), protocol
options, and execution knobs.  Because the simulator is deterministic
(the cross-process gate in ``tests/properties`` pins this), the spec
fully determines the :class:`repro.RunResult` — which is what makes
content-addressed caching safe.

The cache key is ``sha256(canonical-spec-JSON + code-version)``; the
code version hashes every ``repro`` source file, so *any* change to
the simulator invalidates every cached result (see docs/lab.md for
the invalidation rules).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.config import MachineConfig
from repro.core.metrics import RunResult, json_safe

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro``
    package (sorted by relative path).  Computed once per process;
    override with ``REPRO_CODE_VERSION`` to pin or bust caches by
    hand."""
    global _code_version_cache
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if _code_version_cache is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to reproduce one simulated run."""

    app: str
    app_params: dict = field(default_factory=dict)
    protocol: str = "lh"
    config: MachineConfig = field(default_factory=MachineConfig)
    protocol_options: Optional[dict] = None
    lock_broadcast: bool = False
    threads_per_proc: int = 1
    max_events: Optional[int] = None

    def to_dict(self) -> dict:
        """Canonical JSON-ready form (``protocol_options=None`` and
        ``{}`` normalize to the same spec)."""
        return {
            "app": self.app,
            "app_params": json_safe(dict(self.app_params)),
            "protocol": self.protocol,
            "config": self.config.to_dict(),
            "protocol_options": json_safe(
                dict(self.protocol_options or {})),
            "lock_broadcast": bool(self.lock_broadcast),
            "threads_per_proc": self.threads_per_proc,
            "max_events": self.max_events,
        }

    @staticmethod
    def from_dict(data: dict) -> "RunSpec":
        return RunSpec(
            app=data["app"],
            app_params=dict(data.get("app_params", {})),
            protocol=data.get("protocol", "lh"),
            config=MachineConfig.from_dict(data["config"]),
            protocol_options=dict(data["protocol_options"])
                if data.get("protocol_options") else None,
            lock_broadcast=data.get("lock_broadcast", False),
            threads_per_proc=data.get("threads_per_proc", 1),
            max_events=data.get("max_events"),
        )

    def canonical(self) -> str:
        """Canonical JSON: sorted keys, no whitespace variance."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self, version: Optional[str] = None) -> str:
        """Content address of this run under the given (default:
        current) code version."""
        payload = (self.canonical() + "\0"
                   + (version if version is not None
                      else code_version()))
        return hashlib.sha256(payload.encode()).hexdigest()

    def label(self) -> str:
        """Short human-readable tag for progress lines and errors."""
        return (f"{self.app}/{self.protocol}"
                f"@{self.config.nprocs}p/{self.config.network.kind}")


def payload_fingerprint(kind: str, params: dict,
                        version: Optional[str] = None) -> str:
    """Content address for a non-RunResult cached computation (e.g.
    one Table 1 micro-scenario): the analogue of
    :meth:`RunSpec.fingerprint` for arbitrary JSON payloads."""
    canonical = json.dumps({"kind": kind,
                            "params": json_safe(params)},
                           sort_keys=True, separators=(",", ":"))
    payload = (canonical + "\0"
               + (version if version is not None else code_version()))
    return hashlib.sha256(payload.encode()).hexdigest()


def execute_spec(spec: RunSpec,
                 trace_path: Optional[str] = None) -> RunResult:
    """Run one spec in this process (workers and the serial path both
    land here).

    ``trace_path`` optionally streams the run's trace events to a
    JSONL file (gzipped for ``.gz`` paths).  The path is *not* part of
    the spec and never enters the cache fingerprint — tracing observes
    a run, it does not change one (determinism makes the traced run
    identical to the cached one)."""
    from repro.apps import create_app
    from repro.core.runner import run_app

    obs = None
    if trace_path is not None:
        from repro.obs import JsonlSink, Observability, Tracer
        obs = Observability(tracer=Tracer(JsonlSink(str(trace_path))))

    app = create_app(spec.app, **spec.app_params)
    try:
        if spec.threads_per_proc == 1:
            return run_app(app, spec.config, protocol=spec.protocol,
                           max_events=spec.max_events,
                           protocol_options=spec.protocol_options,
                           lock_broadcast=spec.lock_broadcast,
                           obs=obs)

        # The multithreading extension (paper section 8): each node
        # runs ``threads_per_proc`` generators from
        # ``app.worker_thread``.
        from repro.core.api import DsmApi
        from repro.core.machine import Machine

        machine = Machine(spec.config, protocol=spec.protocol,
                          protocol_options=spec.protocol_options,
                          lock_broadcast=spec.lock_broadcast,
                          obs=obs)
        shared = app.setup(machine)
        result = machine.run(
            lambda proc, thread: app.worker_thread(
                DsmApi(machine.nodes[proc]), proc, thread, shared),
            threads_per_proc=spec.threads_per_proc,
            max_events=spec.max_events, app=app.name)
        app.finish(machine, shared, result)
        return result
    finally:
        if obs is not None:
            obs.close()
