"""repro.lab — parallel experiment harness with a content-addressed
result cache.

The paper's evaluation is a large cross-product (protocols x
applications x networks x processor counts x page sizes x overhead
ablations); :class:`Lab` runs such matrices across CPU cores and
never simulates the same configuration twice:

>>> from repro.lab import Lab, RunSpec
>>> from repro.core.config import MachineConfig, NetworkConfig
>>> lab = Lab(jobs=4, cache_dir=".repro-cache")
>>> spec = RunSpec("jacobi", {"n": 48, "iterations": 3},
...                protocol="lh",
...                config=MachineConfig(nprocs=4,
...                                     network=NetworkConfig.atm()))
>>> result = lab.run(spec)          # doctest: +SKIP

Safety rests on determinism: a :class:`RunSpec` fingerprint commits
to the full machine configuration, the application parameters, and a
hash of every ``repro`` source file, and the simulator produces
bit-identical results per fingerprint (gated by the cross-process
determinism test in ``tests/properties``).  See docs/lab.md.
"""

from repro.lab.cache import ResultCache
from repro.lab.harness import (DEFAULT_CACHE_DIR, Lab, LabError,
                               LabFailure)
from repro.lab.spec import (RunSpec, code_version, execute_spec,
                            payload_fingerprint)

__all__ = [
    "DEFAULT_CACHE_DIR", "Lab", "LabError", "LabFailure",
    "ResultCache", "RunSpec", "code_version", "execute_spec",
    "payload_fingerprint",
]
