"""Content-addressed on-disk result store.

Layout (see docs/lab.md)::

    <root>/
      <fp[:2]>/<fp>.json     one envelope per fingerprint

where ``fp`` is the 64-hex-digit SHA-256 from
:meth:`repro.lab.RunSpec.fingerprint`.  The two-character shard keeps
directories small on big sweeps.  Each envelope records the
fingerprint, the spec that produced it (for humans; the *key* already
commits to it), and the serialized :class:`repro.RunResult` — or an
arbitrary JSON payload for :meth:`repro.lab.Lab.cached` entries.

Writes are atomic (temp file + ``os.replace``), so a crashed or
parallel writer can never leave a torn entry; unreadable or
mismatched entries read as misses and are quietly removed.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.core.metrics import RunResult
from repro.lab.spec import RunSpec

_FP_LEN = 64


class ResultCache:
    """One cache directory, addressed purely by fingerprint."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def _path(self, fingerprint: str) -> Path:
        if len(fingerprint) != _FP_LEN:
            raise ValueError(f"bad fingerprint {fingerprint!r}")
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # -- raw envelopes -------------------------------------------------

    def _read(self, fingerprint: str) -> Optional[dict]:
        path = self._path(fingerprint)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except OSError:
            return None
        except ValueError:        # torn/corrupt JSON: drop the entry
            self._evict(path)
            return None
        if (not isinstance(envelope, dict)
                or envelope.get("fingerprint") != fingerprint):
            self._evict(path)
            return None
        return envelope

    def _write(self, fingerprint: str, envelope: dict) -> None:
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{fingerprint[:8]}.",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            self._evict(Path(tmp))
            raise

    @staticmethod
    def _evict(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- RunResult entries ---------------------------------------------

    def get(self, fingerprint: str) -> Optional[RunResult]:
        """The cached result, or ``None`` on any kind of miss."""
        envelope = self._read(fingerprint)
        if envelope is None or envelope.get("kind") != "run":
            return None
        try:
            return RunResult.from_dict(envelope["result"])
        except (KeyError, TypeError, ValueError):
            self._evict(self._path(fingerprint))
            return None

    def put(self, fingerprint: str, result: RunResult,
            spec: Optional[RunSpec] = None,
            result_dict: Optional[dict] = None) -> None:
        """Store one run.  ``result_dict`` lets callers that already
        hold the serialized form (pool workers ship results as dicts)
        skip a second ``to_dict`` pass."""
        self._write(fingerprint, {
            "fingerprint": fingerprint,
            "kind": "run",
            "spec": spec.to_dict() if spec is not None else None,
            "result": (result_dict if result_dict is not None
                       else result.to_dict()),
        })

    # -- arbitrary JSON payloads (Lab.cached) --------------------------

    def get_payload(self, fingerprint: str):
        envelope = self._read(fingerprint)
        if envelope is None or envelope.get("kind") != "payload":
            return None
        return envelope.get("payload")

    def put_payload(self, fingerprint: str, payload,
                    kind_label: str = "") -> None:
        self._write(fingerprint, {
            "fingerprint": fingerprint,
            "kind": "payload",
            "label": kind_label,
            "payload": payload,
        })

    # -- maintenance ---------------------------------------------------

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.root.glob("??/*.json")):
            self._evict(path)
            removed += 1
        return removed
