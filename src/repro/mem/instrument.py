"""Opt-in instrumentation for the memory substrate.

The :mod:`repro.mem` data structures (pages, twins, diffs, the RDIF
wire codec) carry no registry reference — they are pure data types
used by every node of every machine.  This module provides a process-
global switch instead: :func:`enable` installs the ``mem.*`` catalogue
(:data:`repro.obs.catalog.MEM_CATALOG`) on a registry and binds its
children; emission sites in :mod:`repro.mem.wire` and
:mod:`repro.mem.pages` check the module-level handle for ``None``
before recording anything.

Disabled (the default) the cost on the hot path is one global load
and a ``None`` test, and — the parity-critical property — a default
run's stats dump is bit-for-bit identical to a build without this
module: the ``mem.*`` series are never even registered.  This mirrors
how the robustness catalogue stays out of fault-free dumps
(docs/observability.md).

Usage::

    from repro.mem import instrument

    ins = instrument.enable(registry)   # e.g. machine.obs.registry
    try:
        ...  # run simulations; mem.* series accumulate
    finally:
        instrument.disable()
"""

from __future__ import annotations

from typing import Optional

from repro.obs.catalog import install_mem


class MemInstruments:
    """Pre-bound registry children for the memory substrate's
    emission sites (one attribute access + one addition each)."""

    __slots__ = ("registry", "diffs_encoded", "diffs_decoded",
                 "diff_runs", "diff_encoded_bytes",
                 "diff_accounted_bytes", "twin_snapshots",
                 "page_installs")

    def __init__(self, registry) -> None:
        install_mem(registry)
        self.registry = registry
        bound = (lambda name: registry.get(name).labels())
        self.diffs_encoded = bound("mem.diffs_encoded_total")
        self.diffs_decoded = bound("mem.diffs_decoded_total")
        self.diff_runs = bound("mem.diff_runs")
        self.diff_encoded_bytes = bound("mem.diff_encoded_bytes")
        self.diff_accounted_bytes = bound("mem.diff_accounted_bytes")
        self.twin_snapshots = bound("mem.twin_snapshots_total")
        self.page_installs = bound("mem.page_installs_total")


#: The active instruments, or None (the default: nothing is recorded).
#: Emission sites read this through their module's import of
#: ``instrument`` so enable/disable take effect immediately.
active: Optional[MemInstruments] = None


def enable(registry) -> MemInstruments:
    """Install the ``mem.*`` catalogue on ``registry`` and start
    recording substrate activity into it.  Returns the bound
    instruments (also available as ``instrument.active``)."""
    global active
    active = MemInstruments(registry)
    return active


def disable() -> None:
    """Stop recording; already-registered series keep their values."""
    global active
    active = None
