"""Per-node page copies.

Each node holds, for every shared page it caches, a :class:`PageCopy`
with real word values (so applications compute on genuine data through
the DSM), the word ranges written in the current interval, and the set
of write notices received but not yet reflected in the copy.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mem.intervals import WriteNotice
from repro.mem.timestamps import VectorClock


class PageCopy:
    """One node's copy of one shared page.

    Two protocol-critical-path invariants (docs/performance.md):
    ``written`` is kept sorted and disjoint *incrementally* by
    :meth:`record_write` (so sealing an interval never re-normalizes),
    and pending write notices carry a parallel id set so
    :meth:`add_notice` deduplicates in O(1) instead of scanning.
    """

    __slots__ = ("page", "words", "values", "valid", "written",
                 "_pending_notices", "_pending_ids", "vc", "applied",
                 "due_cache")

    def __init__(self, page: int, words: int,
                 values: Optional[np.ndarray] = None,
                 valid: bool = True,
                 vc: Optional[VectorClock] = None) -> None:
        self.page = page
        self.words = words
        if values is None:
            self.values = np.zeros(words, dtype=np.float64)
        else:
            if len(values) != words:
                raise ValueError("page value size mismatch")
            self.values = np.array(values, dtype=np.float64)
        self.valid = valid
        # Word ranges written during the current (unsealed) interval;
        # always sorted and pairwise disjoint (record_write merges).
        self.written: List[Tuple[int, int]] = []
        # Write notices received whose modifications are not yet applied.
        self._pending_notices: List[WriteNotice] = []
        self._pending_ids: set = set()
        # Memo for BaseProtocol.due_notices: (node vc, pending list,
        # pending length, result).  Valid while the clock object and
        # the list (object and length) are unchanged — every mutation
        # path either swaps the list object or appends to it.
        self.due_cache: Optional[tuple] = None
        self.vc = vc
        # Highest interval index per processor whose modification of this
        # page is reflected in ``values`` (coverage map).
        self.applied: Dict[int, int] = {}

    @property
    def pending_notices(self) -> List[WriteNotice]:
        return self._pending_notices

    @pending_notices.setter
    def pending_notices(self, notices: List[WriteNotice]) -> None:
        # Protocols occasionally rebuild the list wholesale (GC prune,
        # refetch); keep the dedup id set in lockstep.
        self._pending_notices = notices
        self._pending_ids = {(n.proc, n.index) for n in notices}

    @property
    def dirty(self) -> bool:
        return bool(self.written)

    def record_write(self, start: int, end: int) -> None:
        """Merge ``[start, end)`` into the sorted, disjoint run list.

        Equivalent to append-then-:func:`normalize_ranges` (the
        property test in tests/perf checks this against that oracle),
        but incremental: the common cases — first write, append past
        the last run, extend/re-hit the last run — are O(1), and the
        rare out-of-order write is a bisect plus one slice splice.
        """
        if start < 0 or end > self.words or start >= end:
            raise ValueError(f"bad write range [{start},{end}) on page "
                             f"of {self.words} words")
        w = self.written
        if not w:
            w.append((start, end))
            return
        last_start, last_end = w[-1]
        if start > last_end:
            w.append((start, end))
            return
        if start >= last_start:
            if end > last_end:
                w[-1] = (last_start, end)
            return
        # Out-of-order write: splice into place, merging any runs the
        # (possibly extended) range now touches.
        lo = bisect_left(w, (start, -1))
        if lo > 0 and w[lo - 1][1] >= start:
            lo -= 1
            start = w[lo][0]
        hi = lo
        n = len(w)
        while hi < n and w[hi][0] <= end:
            if w[hi][1] > end:
                end = w[hi][1]
            hi += 1
        w[lo:hi] = [(start, end)]

    def take_written_ranges(self) -> List[Tuple[int, int]]:
        """Return and clear the current interval's written ranges
        (already normalized — see :meth:`record_write`)."""
        ranges = self.written
        self.written = []
        return ranges

    def is_applied(self, proc: int, index: int) -> bool:
        return self.applied.get(proc, 0) >= index

    def mark_applied(self, proc: int, index: int) -> None:
        if index > self.applied.get(proc, 0):
            self.applied[proc] = index

    def add_notice(self, notice: WriteNotice) -> bool:
        """Record a foreign write notice; returns True if it was new.

        Notices already reflected in the copy (per the ``applied``
        coverage map) and duplicates are ignored.
        """
        if notice.proc < 0:
            raise ValueError("invalid notice")
        if self.is_applied(notice.proc, notice.index):
            return False
        interval_id = (notice.proc, notice.index)
        if interval_id in self._pending_ids:
            return False
        self._pending_ids.add(interval_id)
        self._pending_notices.append(notice)
        return True

    def clear_notices(self) -> List[WriteNotice]:
        notices = self._pending_notices
        self._pending_notices = []
        self._pending_ids = set()
        return notices

    def __repr__(self) -> str:
        flags = "valid" if self.valid else "INVALID"
        if self.dirty:
            flags += ",dirty"
        return f"<PageCopy page={self.page} {flags}>"


class PageTable:
    """All page copies held by one node."""

    def __init__(self, words_per_page: int) -> None:
        self.words_per_page = words_per_page
        # Exposed: hot loops (API region ops, notice incorporation)
        # hoist ``pagetable.copies.get`` to skip the method wrapper.
        self.copies: Dict[int, PageCopy] = {}

    def get(self, page: int) -> Optional[PageCopy]:
        return self.copies.get(page)

    def has_copy(self, page: int) -> bool:
        return page in self.copies

    def is_valid(self, page: int) -> bool:
        copy = self.copies.get(page)
        return copy is not None and copy.valid

    def install(self, page: int, values: Optional[np.ndarray] = None,
                valid: bool = True) -> PageCopy:
        copy = self.copies.get(page)
        if copy is None:
            copy = PageCopy(page, self.words_per_page, values=values,
                            valid=valid)
            self.copies[page] = copy
        else:
            if values is not None:
                copy.values[:] = values
            copy.valid = valid
        return copy

    def invalidate(self, page: int) -> None:
        copy = self.copies.get(page)
        if copy is not None:
            copy.valid = False

    def drop(self, page: int) -> None:
        self.copies.pop(page, None)

    def pages(self) -> List[int]:
        return sorted(self.copies)

    def valid_pages(self) -> List[int]:
        return sorted(page for page, copy in self.copies.items()
                      if copy.valid)

    def __len__(self) -> int:
        return len(self.copies)
