"""Per-node page copies on a flat buffer substrate.

Each node holds, for every shared page it caches, a :class:`PageCopy`
with real word values (so applications compute on genuine data through
the DSM), the word ranges written in the current interval, and the set
of write notices received but not yet reflected in the copy.

Representation (docs/memory.md): a page's words live in one contiguous
``bytearray`` (``buffer``, 8 host bytes per word).  Three views share
that storage with zero copies — ``raw`` (a memoryview, the byte-level
splice target for diff create/apply and page installs) and ``values``
(a float64 numpy view, what applications and the API read and write
through).  A *twin* is a frozen ``bytes`` snapshot of the buffer;
:meth:`twin_dirty_ranges` finds the modified runs with one vectorized
compare over the flat words.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mem import instrument
from repro.mem.intervals import WriteNotice
from repro.mem.timestamps import VectorClock


class PageCopy:
    """One node's copy of one shared page.

    Two protocol-critical-path invariants (docs/performance.md):
    ``written`` is kept sorted and disjoint *incrementally* by
    :meth:`record_write` (so sealing an interval never re-normalizes),
    and pending write notices carry a parallel id set so
    :meth:`add_notice` deduplicates in O(1) instead of scanning.
    """

    __slots__ = ("page", "words", "buffer", "raw", "values", "twin",
                 "valid", "written", "_pending_notices", "_pending_ids",
                 "vc", "applied", "due_cache")

    def __init__(self, page: int, words: int,
                 values=None,
                 valid: bool = True,
                 vc: Optional[VectorClock] = None) -> None:
        self.page = page
        self.words = words
        self.buffer = bytearray(words * 8)
        self.raw = memoryview(self.buffer)
        self.values = np.frombuffer(self.buffer, dtype=np.float64)
        if values is not None:
            self.set_values(values)
        self.valid = valid
        # Frozen buffer snapshot for twin-based diffing (None unless
        # the protocol runs with diff_source="twin").
        self.twin: Optional[bytes] = None
        # Word ranges written during the current (unsealed) interval;
        # always sorted and pairwise disjoint (record_write merges).
        self.written: List[Tuple[int, int]] = []
        # Write notices received whose modifications are not yet applied.
        self._pending_notices: List[WriteNotice] = []
        self._pending_ids: set = set()
        # Memo for BaseProtocol.due_notices: (node vc, pending list,
        # pending length, result).  Valid while the clock object and
        # the list (object and length) are unchanged — every mutation
        # path either swaps the list object or appends to it.
        self.due_cache: Optional[tuple] = None
        self.vc = vc
        # Highest interval index per processor whose modification of this
        # page is reflected in ``values`` (coverage map).
        self.applied: Dict[int, int] = {}

    # -- flat-buffer plumbing --------------------------------------------

    def set_values(self, values) -> None:
        """Overwrite the whole page.  ``values`` is a ``bytes`` /
        ``bytearray`` snapshot (one memcpy) or a float64 sequence."""
        if isinstance(values, (bytes, bytearray, memoryview)):
            if len(values) != len(self.buffer):
                raise ValueError("page snapshot size mismatch")
            self.buffer[:] = values
        else:
            if len(values) != self.words:
                raise ValueError("page value size mismatch")
            self.values[:] = values

    def snapshot(self) -> bytes:
        """Immutable copy of the page contents (what PAGE_REPLY and
        the SC/eager page transfers put on the wire)."""
        return bytes(self.buffer)

    # -- twins ------------------------------------------------------------

    def make_twin(self) -> None:
        """Freeze the current contents as the interval's twin (no-op
        if a twin already exists — the twin must keep the values from
        the interval's start)."""
        if self.twin is None:
            self.twin = bytes(self.buffer)
            ins = instrument.active
            if ins is not None:
                ins.twin_snapshots.inc()

    def drop_twin(self) -> None:
        self.twin = None

    def twin_dirty_ranges(self) -> List[Tuple[int, int]]:
        """Word ranges whose value differs from the twin, as a sorted
        disjoint run list — one vectorized compare over the flat
        buffer (this is how the mprotect-based systems the paper
        models create diffs: compare the twin with the modified page
        word by word)."""
        if self.twin is None:
            return []
        changed = np.frombuffer(self.twin, dtype=np.float64) \
            != self.values
        # Bitwise compare, not value compare: NaN words must count as
        # modified when their bit pattern changed.
        if not changed.any():
            nan_mask = np.isnan(self.values)
            if nan_mask.any():
                changed = np.frombuffer(self.twin, dtype=np.int64) \
                    != self.values.view(np.int64)
            if not changed.any():
                return []
        elif np.isnan(self.values).any() or np.isnan(
                np.frombuffer(self.twin, dtype=np.float64)).any():
            changed = np.frombuffer(self.twin, dtype=np.int64) \
                != self.values.view(np.int64)
        indices = np.flatnonzero(changed)
        if len(indices) == 0:
            return []
        breaks = np.flatnonzero(np.diff(indices) > 1)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [len(indices) - 1]))
        return [(int(indices[a]), int(indices[b]) + 1)
                for a, b in zip(starts, ends)]

    # -- interval write tracking ------------------------------------------

    @property
    def pending_notices(self) -> List[WriteNotice]:
        return self._pending_notices

    @pending_notices.setter
    def pending_notices(self, notices: List[WriteNotice]) -> None:
        # Protocols occasionally rebuild the list wholesale (GC prune,
        # refetch); keep the dedup id set in lockstep.
        self._pending_notices = notices
        self._pending_ids = {(n.proc, n.index) for n in notices}

    def remove_notices(self, interval_ids) -> None:
        """Drop the given (proc, index) ids from the pending list,
        preserving order.  Cheaper than reassigning
        ``pending_notices`` (which rebuilds the whole dedup set)."""
        self._pending_notices = [n for n in self._pending_notices
                                 if n.interval_id not in interval_ids]
        self._pending_ids.difference_update(interval_ids)

    @property
    def dirty(self) -> bool:
        return bool(self.written)

    def record_write(self, start: int, end: int) -> None:
        """Merge ``[start, end)`` into the sorted, disjoint run list.

        Equivalent to append-then-:func:`normalize_ranges` (the
        property test in tests/perf checks this against that oracle),
        but incremental: the common cases — first write, append past
        the last run, extend/re-hit the last run — are O(1), and the
        rare out-of-order write is a bisect plus one slice splice.
        """
        if start < 0 or end > self.words or start >= end:
            raise ValueError(f"bad write range [{start},{end}) on page "
                             f"of {self.words} words")
        w = self.written
        if not w:
            w.append((start, end))
            return
        last_start, last_end = w[-1]
        if start > last_end:
            w.append((start, end))
            return
        if start >= last_start:
            if end > last_end:
                w[-1] = (last_start, end)
            return
        # Out-of-order write: splice into place, merging any runs the
        # (possibly extended) range now touches.
        lo = bisect_left(w, (start, -1))
        if lo > 0 and w[lo - 1][1] >= start:
            lo -= 1
            start = w[lo][0]
        hi = lo
        n = len(w)
        while hi < n and w[hi][0] <= end:
            if w[hi][1] > end:
                end = w[hi][1]
            hi += 1
        w[lo:hi] = [(start, end)]

    def take_written_ranges(self) -> List[Tuple[int, int]]:
        """Return and clear the current interval's written ranges
        (already normalized — see :meth:`record_write`)."""
        ranges = self.written
        self.written = []
        return ranges

    def is_applied(self, proc: int, index: int) -> bool:
        return self.applied.get(proc, 0) >= index

    def mark_applied(self, proc: int, index: int) -> None:
        if index > self.applied.get(proc, 0):
            self.applied[proc] = index

    def add_notice(self, notice: WriteNotice) -> bool:
        """Record a foreign write notice; returns True if it was new.

        Notices already reflected in the copy (per the ``applied``
        coverage map) and duplicates are ignored.
        """
        if notice.proc < 0:
            raise ValueError("invalid notice")
        if self.is_applied(notice.proc, notice.index):
            return False
        interval_id = notice.interval_id
        if interval_id in self._pending_ids:
            return False
        self._pending_ids.add(interval_id)
        self._pending_notices.append(notice)
        return True

    def clear_notices(self) -> List[WriteNotice]:
        notices = self._pending_notices
        self._pending_notices = []
        self._pending_ids = set()
        return notices

    def __repr__(self) -> str:
        flags = "valid" if self.valid else "INVALID"
        if self.dirty:
            flags += ",dirty"
        return f"<PageCopy page={self.page} {flags}>"


class PageTable:
    """All page copies held by one node."""

    def __init__(self, words_per_page: int) -> None:
        self.words_per_page = words_per_page
        # Exposed: hot loops (API region ops, notice incorporation)
        # hoist ``pagetable.copies.get`` to skip the method wrapper.
        self.copies: Dict[int, PageCopy] = {}

    def get(self, page: int) -> Optional[PageCopy]:
        return self.copies.get(page)

    def has_copy(self, page: int) -> bool:
        return page in self.copies

    def is_valid(self, page: int) -> bool:
        copy = self.copies.get(page)
        return copy is not None and copy.valid

    def install(self, page: int, values=None,
                valid: bool = True) -> PageCopy:
        copy = self.copies.get(page)
        if copy is None:
            copy = PageCopy(page, self.words_per_page, values=values,
                            valid=valid)
            self.copies[page] = copy
        else:
            if values is not None:
                copy.set_values(values)
            copy.valid = valid
        ins = instrument.active
        if ins is not None:
            ins.page_installs.inc()
        return copy

    def invalidate(self, page: int) -> None:
        copy = self.copies.get(page)
        if copy is not None:
            copy.valid = False

    def drop(self, page: int) -> None:
        self.copies.pop(page, None)

    def pages(self) -> List[int]:
        return sorted(self.copies)

    def valid_pages(self) -> List[int]:
        return sorted(page for page, copy in self.copies.items()
                      if copy.valid)

    def __len__(self) -> int:
        return len(self.copies)
