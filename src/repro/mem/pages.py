"""Per-node page copies.

Each node holds, for every shared page it caches, a :class:`PageCopy`
with real word values (so applications compute on genuine data through
the DSM), the word ranges written in the current interval, and the set
of write notices received but not yet reflected in the copy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mem.diffs import normalize_ranges
from repro.mem.intervals import WriteNotice
from repro.mem.timestamps import VectorClock


class PageCopy:
    """One node's copy of one shared page."""

    __slots__ = ("page", "words", "values", "valid", "written",
                 "pending_notices", "vc", "applied")

    def __init__(self, page: int, words: int,
                 values: Optional[np.ndarray] = None,
                 valid: bool = True,
                 vc: Optional[VectorClock] = None) -> None:
        self.page = page
        self.words = words
        if values is None:
            self.values = np.zeros(words, dtype=np.float64)
        else:
            if len(values) != words:
                raise ValueError("page value size mismatch")
            self.values = np.array(values, dtype=np.float64)
        self.valid = valid
        # Word ranges written during the current (unsealed) interval.
        self.written: List[Tuple[int, int]] = []
        # Write notices received whose modifications are not yet applied.
        self.pending_notices: List[WriteNotice] = []
        self.vc = vc
        # Highest interval index per processor whose modification of this
        # page is reflected in ``values`` (coverage map).
        self.applied: Dict[int, int] = {}

    @property
    def dirty(self) -> bool:
        return bool(self.written)

    def record_write(self, start: int, end: int) -> None:
        if start < 0 or end > self.words or start >= end:
            raise ValueError(f"bad write range [{start},{end}) on page "
                             f"of {self.words} words")
        self.written.append((start, end))
        if len(self.written) > 64:
            self.written = normalize_ranges(self.written)

    def take_written_ranges(self) -> List[Tuple[int, int]]:
        """Return and clear the current interval's written ranges."""
        ranges = normalize_ranges(self.written)
        self.written = []
        return ranges

    def is_applied(self, proc: int, index: int) -> bool:
        return self.applied.get(proc, 0) >= index

    def mark_applied(self, proc: int, index: int) -> None:
        if index > self.applied.get(proc, 0):
            self.applied[proc] = index

    def add_notice(self, notice: WriteNotice) -> bool:
        """Record a foreign write notice; returns True if it was new.

        Notices already reflected in the copy (per the ``applied``
        coverage map) and duplicates are ignored.
        """
        if notice.proc < 0:
            raise ValueError("invalid notice")
        if self.is_applied(notice.proc, notice.index):
            return False
        for existing in self.pending_notices:
            if existing.interval_id == notice.interval_id:
                return False
        self.pending_notices.append(notice)
        return True

    def clear_notices(self) -> List[WriteNotice]:
        notices, self.pending_notices = self.pending_notices, []
        return notices

    def __repr__(self) -> str:
        flags = "valid" if self.valid else "INVALID"
        if self.dirty:
            flags += ",dirty"
        return f"<PageCopy page={self.page} {flags}>"


class PageTable:
    """All page copies held by one node."""

    def __init__(self, words_per_page: int) -> None:
        self.words_per_page = words_per_page
        self._copies: Dict[int, PageCopy] = {}

    def get(self, page: int) -> Optional[PageCopy]:
        return self._copies.get(page)

    def has_copy(self, page: int) -> bool:
        return page in self._copies

    def is_valid(self, page: int) -> bool:
        copy = self._copies.get(page)
        return copy is not None and copy.valid

    def install(self, page: int, values: Optional[np.ndarray] = None,
                valid: bool = True) -> PageCopy:
        copy = self._copies.get(page)
        if copy is None:
            copy = PageCopy(page, self.words_per_page, values=values,
                            valid=valid)
            self._copies[page] = copy
        else:
            if values is not None:
                copy.values[:] = values
            copy.valid = valid
        return copy

    def invalidate(self, page: int) -> None:
        copy = self._copies.get(page)
        if copy is not None:
            copy.valid = False

    def drop(self, page: int) -> None:
        self._copies.pop(page, None)

    def pages(self) -> List[int]:
        return sorted(self._copies)

    def valid_pages(self) -> List[int]:
        return sorted(page for page, copy in self._copies.items()
                      if copy.valid)

    def __len__(self) -> int:
        return len(self._copies)
