"""Node-state checkpointing (the ``RCKP`` format).

When the lifecycle manager crashes a node (:mod:`repro.sim.lifecycle`)
it serializes the node's entire DSM state into one binary blob in the
style of the RDIF diff encoding (:mod:`repro.mem.wire`): a fixed
little-endian header, then tagged sections for the vector clocks, the
page table (contents, twins, written runs, applied coverage, pending
write notices), the interval log, the stored diffs (each reusing the
RDIF encoding verbatim), the copyset masks, and the protocol's
consistency metadata.  Recovery parses the blob back and refills the
node *in place* — every data field comes from the bytes, but container
and :class:`~repro.mem.pages.PageCopy` object identities are
preserved, because application/protocol continuations frozen at the
crash instant may hold references across their paused yields.

docs/robustness.md documents the byte layout; tests/mem pin the
round-trip (checkpoint -> wipe -> restore -> identical re-checkpoint).

Layout (all integers little-endian)::

    header (20 bytes)
      0   4s  magic          b"RCKP"
      4   B   version        CHECKPOINT_VERSION (currently 1)
      5   B   word_size      simulated machine word, bytes
      6   H   flags          0 (reserved)
      8   I   proc           the checkpointed node
      12  I   nprocs         vector-clock width
      16  I   words_per_page page geometry
    sections, in this fixed order, each introduced by an 8-byte
    section header (4s tag + I payload length):
      CLKS  node vc, then one peer vc per processor
      PAGE  page copies (buffer, optional twin, written runs,
            applied map, pending notices)
      ILOG  interval records (vc, page set, pending ranges)
      DIFS  stored diffs as embedded RDIF blobs keyed (proc, index)
      CSET  copyset bitmasks (one u64 per page)
      PROT  orphan notices, own-page interval indices, unpropagated
            sets, last barrier vc

A vector clock is ``nprocs`` u32 components (width from the header).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.mem.diffs import Diff
from repro.mem.intervals import IntervalRecord, WriteNotice
from repro.mem.pages import PageCopy
from repro.mem.timestamps import VectorClock
from repro.mem.wire import decode_diff, encode_diff

MAGIC = b"RCKP"
CHECKPOINT_VERSION = 1

_HEADER = struct.Struct("<4sBBHIII")
_SECTION = struct.Struct("<4sI")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_PAIR = struct.Struct("<II")

#: Section tags, in the order they are written.
SECTION_ORDER = (b"CLKS", b"PAGE", b"ILOG", b"DIFS", b"CSET", b"PROT")


class CheckpointError(ValueError):
    """A checkpoint blob violates the RCKP layout or its invariants."""


class _Writer:
    def __init__(self) -> None:
        self.parts: List[bytes] = []

    def u8(self, value: int) -> None:
        self.parts.append(bytes((value,)))

    def u32(self, value: int) -> None:
        self.parts.append(_U32.pack(value))

    def u64(self, value: int) -> None:
        self.parts.append(_U64.pack(value))

    def pair(self, a: int, b: int) -> None:
        self.parts.append(_PAIR.pack(a, b))

    def raw(self, blob: bytes) -> None:
        self.parts.append(bytes(blob))

    def vc(self, clock: VectorClock) -> None:
        self.parts.append(struct.pack(f"<{len(clock)}I",
                                      *clock.components))

    def payload(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    def __init__(self, blob: bytes, nprocs: int) -> None:
        self.blob = blob
        self.pos = 0
        self.nprocs = nprocs
        self._vc = struct.Struct(f"<{nprocs}I")

    def _take(self, nbytes: int) -> int:
        pos = self.pos
        if pos + nbytes > len(self.blob):
            raise CheckpointError(
                f"truncated checkpoint: need {nbytes} bytes at offset "
                f"{pos}, have {len(self.blob) - pos}")
        self.pos = pos + nbytes
        return pos

    def u8(self) -> int:
        return self.blob[self._take(1)]

    def u32(self) -> int:
        return _U32.unpack_from(self.blob, self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack_from(self.blob, self._take(8))[0]

    def pair(self) -> Tuple[int, int]:
        return _PAIR.unpack_from(self.blob, self._take(8))

    def raw(self, nbytes: int) -> bytes:
        pos = self._take(nbytes)
        return self.blob[pos:pos + nbytes]

    def vc(self) -> VectorClock:
        pos = self._take(self._vc.size)
        return VectorClock._of(self._vc.unpack_from(self.blob, pos))

    def done(self) -> bool:
        return self.pos == len(self.blob)


# -- encoding ----------------------------------------------------------


def _encode_clocks(node) -> bytes:
    w = _Writer()
    w.vc(node.vc)
    for proc in range(node.config.nprocs):
        # peer_clock folds deferred observations so the checkpoint
        # carries the same value an eager-merging node would hold.
        w.vc(node.peer_clock(proc))
    return w.payload()


def _encode_pages(node) -> bytes:
    w = _Writer()
    copies = node.pagetable.copies
    w.u32(len(copies))
    for page in sorted(copies):
        copy = copies[page]
        w.u32(page)
        flags = ((1 if copy.valid else 0)
                 | (2 if copy.twin is not None else 0)
                 | (4 if copy.vc is not None else 0))
        w.u8(flags)
        w.raw(copy.buffer)
        if copy.twin is not None:
            w.raw(copy.twin)
        if copy.vc is not None:
            w.vc(copy.vc)
        w.u32(len(copy.written))
        for start, end in copy.written:
            w.pair(start, end)
        applied = copy.applied
        w.u32(len(applied))
        for proc in sorted(applied):
            w.pair(proc, applied[proc])
        pending = copy.pending_notices
        w.u32(len(pending))
        for notice in pending:
            w.pair(notice.proc, notice.index)
            w.vc(notice.vc)
    return w.payload()


def _encode_interval_log(node) -> bytes:
    w = _Writer()
    records = node.interval_log.all_records()
    w.u32(len(records))
    for record in records:
        w.pair(record.proc, record.index)
        w.vc(record.vc)
        pages = sorted(record.pages)
        w.u32(len(pages))
        for page in pages:
            w.u32(page)
        pending = record.pending_ranges
        w.u32(len(pending))
        for page in sorted(pending):
            w.u32(page)
            runs = pending[page]
            w.u32(len(runs))
            for start, end in runs:
                w.pair(start, end)
    return w.payload()


def _encode_diff_store(node) -> bytes:
    w = _Writer()
    diffs = node.diff_store._diffs
    w.u32(len(diffs))
    for proc, index, _page in sorted(diffs):
        blob = encode_diff(diffs[(proc, index, _page)])
        w.pair(proc, index)
        w.u32(len(blob))
        w.raw(blob)
    return w.payload()


def _encode_copysets(node) -> bytes:
    if node.config.nprocs > 64:
        raise CheckpointError(
            "copyset masks are serialized as u64; checkpointing needs "
            f"nprocs <= 64, machine has {node.config.nprocs}")
    w = _Writer()
    masks = node.copysets._masks
    w.u32(len(masks))
    for page in sorted(masks):
        w.u32(page)
        w.u64(masks[page])
    return w.payload()


def _encode_protocol(node) -> bytes:
    protocol = node.protocol
    w = _Writer()
    orphan = protocol.orphan_notices
    w.u32(len(orphan))
    for page in sorted(orphan):
        notices = orphan[page]
        w.u32(page)
        w.u32(len(notices))
        for notice in notices.values():
            w.pair(notice.proc, notice.index)
            w.vc(notice.vc)
    own = protocol.own_page_intervals
    w.u32(len(own))
    for page in sorted(own):
        indices = own[page]
        w.u32(page)
        w.u32(len(indices))
        for index in indices:
            w.u32(index)
    unpropagated = protocol.unpropagated
    w.u32(len(unpropagated))
    for proc, index in sorted(unpropagated):
        w.pair(proc, index)
        pages = sorted(unpropagated[(proc, index)])
        w.u32(len(pages))
        for page in pages:
            w.u32(page)
    w.vc(protocol.last_barrier_vc)
    return w.payload()


def checkpoint_node(node) -> bytes:
    """Serialize ``node``'s complete DSM state into one RCKP blob."""
    protocol = node.protocol
    if protocol is None or not getattr(protocol, "supports_checkpoint",
                                       False):
        name = getattr(protocol, "name", protocol)
        raise CheckpointError(
            f"protocol {name!r} does not support checkpointing")
    sections = (
        (b"CLKS", _encode_clocks(node)),
        (b"PAGE", _encode_pages(node)),
        (b"ILOG", _encode_interval_log(node)),
        (b"DIFS", _encode_diff_store(node)),
        (b"CSET", _encode_copysets(node)),
        (b"PROT", _encode_protocol(node)),
    )
    parts = [_HEADER.pack(MAGIC, CHECKPOINT_VERSION,
                          node.config.word_size, 0, node.proc,
                          node.config.nprocs,
                          node.config.words_per_page)]
    for tag, payload in sections:
        parts.append(_SECTION.pack(tag, len(payload)))
        parts.append(payload)
    return b"".join(parts)


# -- wiping ------------------------------------------------------------


def wipe_node(node) -> None:
    """Erase the node's DSM state in place, modeling the memory loss
    of a crash.  Container objects (and existing ``PageCopy``
    instances, as invalid husks) keep their identity so that frozen
    continuations stay wired to whatever :func:`restore_node` refills;
    every data field is cleared so nothing can survive a restore
    except through the checkpoint bytes."""
    for copy in node.pagetable.copies.values():
        copy.buffer[:] = bytes(len(copy.buffer))
        copy.twin = None
        copy.valid = False
        copy.written = []
        copy.pending_notices = []
        copy.vc = None
        copy.applied = {}
        copy.due_cache = None
    log = node.interval_log
    log._records.clear()
    log._by_proc.clear()
    node.diff_store._diffs.clear()
    node.copysets._masks.clear()
    nprocs = node.config.nprocs
    node.vc = VectorClock.zero(nprocs)
    for proc in range(nprocs):
        node.peer_vc[proc] = VectorClock.zero(nprocs)
        node._peer_vc_pending[proc].clear()
    protocol = node.protocol
    protocol.orphan_notices.clear()
    protocol.own_page_intervals.clear()
    protocol.unpropagated.clear()
    protocol._dirty_pages.clear()
    protocol.last_barrier_vc = VectorClock.zero(nprocs)


# -- decoding / restore ------------------------------------------------


def _restore_clocks(reader: _Reader, node) -> None:
    node.vc = reader.vc()
    for proc in range(reader.nprocs):
        node.peer_vc[proc] = reader.vc()
        node._peer_vc_pending[proc].clear()


def _restore_pages(reader: _Reader, node,
                   words_per_page: int) -> None:
    copies = node.pagetable.copies
    count = reader.u32()
    seen = set()
    page_bytes = words_per_page * 8
    for _ in range(count):
        page = reader.u32()
        if page in seen:
            raise CheckpointError(f"duplicate page {page} in PAGE")
        seen.add(page)
        flags = reader.u8()
        if flags & ~0x7:
            raise CheckpointError(
                f"unknown page flags 0x{flags:02x}")
        copy = copies.get(page)
        if copy is None:
            copy = PageCopy(page, words_per_page)
            copies[page] = copy
        copy.set_values(reader.raw(page_bytes))
        copy.valid = bool(flags & 1)
        copy.twin = bytes(reader.raw(page_bytes)) \
            if flags & 2 else None
        copy.vc = reader.vc() if flags & 4 else None
        copy.written = [reader.pair() for _ in range(reader.u32())]
        if copy.written:
            # Keep the protocol's dirty-page index (which seals scan
            # instead of the whole page table) in sync with restored
            # written ranges.
            node.protocol._dirty_pages.add(page)
        copy.applied = dict(reader.pair()
                            for _ in range(reader.u32()))
        notices = []
        for _ in range(reader.u32()):
            proc, index = reader.pair()
            notices.append(WriteNotice(page=page, proc=proc,
                                       index=index, vc=reader.vc()))
        copy.pending_notices = notices
        copy.due_cache = None
    # Husk copies the checkpoint does not know about cannot exist: the
    # blob was taken from exactly this page table.
    stray = set(copies) - seen
    if stray:
        raise CheckpointError(
            f"page table holds pages absent from checkpoint: "
            f"{sorted(stray)}")


def _restore_interval_log(reader: _Reader, node) -> None:
    log = node.interval_log
    for _ in range(reader.u32()):
        proc, index = reader.pair()
        vc = reader.vc()
        pages = frozenset(reader.u32()
                          for _ in range(reader.u32()))
        pending: Dict[int, List[Tuple[int, int]]] = {}
        for _ in range(reader.u32()):
            page = reader.u32()
            pending[page] = [reader.pair()
                             for _ in range(reader.u32())]
        log.add_if_new(IntervalRecord(proc=proc, index=index, vc=vc,
                                      pages=pages,
                                      pending_ranges=pending))


def _restore_diff_store(reader: _Reader, node) -> None:
    store = node.diff_store
    for _ in range(reader.u32()):
        proc, index = reader.pair()
        blob = reader.raw(reader.u32())
        diff: Diff = decode_diff(blob)
        store.put(proc, index, diff)


def _restore_copysets(reader: _Reader, node) -> None:
    masks = node.copysets._masks
    for _ in range(reader.u32()):
        page = reader.u32()
        masks[page] = reader.u64()


def _restore_protocol(reader: _Reader, node) -> None:
    protocol = node.protocol
    for _ in range(reader.u32()):
        page = reader.u32()
        notices = {}
        for _ in range(reader.u32()):
            proc, index = reader.pair()
            notice = WriteNotice(page=page, proc=proc, index=index,
                                 vc=reader.vc())
            notices[notice.interval_id] = notice
        protocol.orphan_notices[page] = notices
    for _ in range(reader.u32()):
        page = reader.u32()
        protocol.own_page_intervals[page] = [
            reader.u32() for _ in range(reader.u32())]
    for _ in range(reader.u32()):
        proc, index = reader.pair()
        protocol.unpropagated[(proc, index)] = {
            reader.u32() for _ in range(reader.u32())}
    protocol.last_barrier_vc = reader.vc()


_RESTORERS = {
    b"CLKS": _restore_clocks,
    b"ILOG": _restore_interval_log,
    b"DIFS": _restore_diff_store,
    b"CSET": _restore_copysets,
    b"PROT": _restore_protocol,
}


def restore_node(node, blob: bytes) -> None:
    """Refill ``node`` from an RCKP blob produced by
    :func:`checkpoint_node`.  The node is wiped first, so the restored
    state is a pure function of the bytes."""
    if len(blob) < _HEADER.size:
        raise CheckpointError(
            f"blob of {len(blob)} bytes is shorter than the "
            f"{_HEADER.size}-byte header")
    magic, version, word_size, flags, proc, nprocs, words_per_page = \
        _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise CheckpointError(f"bad magic {magic!r}")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(f"unsupported version {version}")
    if flags != 0:
        raise CheckpointError(f"unknown flags 0x{flags:04x}")
    if proc != node.proc:
        raise CheckpointError(
            f"checkpoint of node {proc} restored on node {node.proc}")
    if nprocs != node.config.nprocs:
        raise CheckpointError(
            f"checkpoint for {nprocs} procs, machine has "
            f"{node.config.nprocs}")
    if word_size != node.config.word_size:
        raise CheckpointError(
            f"word size mismatch: {word_size} vs "
            f"{node.config.word_size}")
    if words_per_page != node.config.words_per_page:
        raise CheckpointError(
            f"page geometry mismatch: {words_per_page} vs "
            f"{node.config.words_per_page} words per page")
    wipe_node(node)
    offset = _HEADER.size
    for expected in SECTION_ORDER:
        if offset + _SECTION.size > len(blob):
            raise CheckpointError(
                f"missing section {expected.decode()}")
        tag, length = _SECTION.unpack_from(blob, offset)
        if tag != expected:
            raise CheckpointError(
                f"expected section {expected.decode()}, found "
                f"{tag!r} at offset {offset}")
        offset += _SECTION.size
        if offset + length > len(blob):
            raise CheckpointError(
                f"section {expected.decode()} of {length} bytes "
                f"overruns the blob")
        reader = _Reader(blob[offset:offset + length], nprocs)
        if tag == b"PAGE":
            _restore_pages(reader, node, words_per_page)
        else:
            _RESTORERS[tag](reader, node)
        if not reader.done():
            raise CheckpointError(
                f"section {expected.decode()} has "
                f"{len(reader.blob) - reader.pos} trailing bytes")
        offset += length
    if offset != len(blob):
        raise CheckpointError(
            f"{len(blob) - offset} trailing bytes after last section")
