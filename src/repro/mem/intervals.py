"""Intervals, write notices, and the per-machine diff store.

Execution on each processor is divided into *intervals*, delimited by
synchronization events.  A :class:`WriteNotice` announces that a page
was modified during a given interval; the notice carries the interval's
vector time so receivers can order it under happened-before-1.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.mem.diffs import Diff
from repro.mem.timestamps import VectorClock

IntervalId = Tuple[int, int]  # (proc, interval index)


@dataclass(frozen=True)
class WriteNotice:
    """'Processor ``proc``, in interval ``index``, modified ``page``.'"""

    page: int
    proc: int
    index: int
    vc: VectorClock

    def __post_init__(self) -> None:
        # Materialized once: interval_id is read many times per notice
        # on the dedup/apply paths (a property would rebuild the tuple
        # each time).  Not a field, so __eq__/__hash__ are unchanged.
        object.__setattr__(self, "interval_id",
                           (self.proc, self.index))


@dataclass
class IntervalRecord:
    """One sealed interval: which pages it wrote and its vector time.

    ``pending_ranges`` holds the written word ranges per page until the
    diff is actually created (lazy diff creation).
    """

    proc: int
    index: int
    vc: VectorClock
    pages: FrozenSet[int]
    pending_ranges: Dict[int, List[Tuple[int, int]]] = field(
        default_factory=dict)

    def __post_init__(self) -> None:
        self.interval_id: IntervalId = (self.proc, self.index)
        self._notices: Optional[List[WriteNotice]] = None

    def notices(self) -> List[WriteNotice]:
        """The record's write notices (page-ascending).  Cached: a
        record object is shared by every node that receives it, and
        notices are immutable — building them once per record (instead
        of once per receiving node) takes dataclass construction off
        the incorporate hot path.  Callers must not mutate the list."""
        built = self._notices
        if built is None:
            built = [WriteNotice(page=page, proc=self.proc,
                                 index=self.index, vc=self.vc)
                     for page in sorted(self.pages)]
            self._notices = built
        return built


class IntervalLog:
    """A node's knowledge of intervals (its own and received ones).

    Alongside the flat id->record map, records are indexed per
    processor in ascending interval order, so :meth:`records_after` —
    called on every lock grant and barrier arrival — is a bisect per
    processor instead of a scan of the whole log (which made barrier
    cost grow with run length before GC could prune).
    """

    def __init__(self) -> None:
        self._records: Dict[IntervalId, IntervalRecord] = {}
        # proc -> (ascending interval indices, records in that order).
        self._by_proc: Dict[int, Tuple[List[int],
                                       List[IntervalRecord]]] = {}

    def add(self, record: IntervalRecord) -> None:
        self.add_if_new(record)

    def add_if_new(self, record: IntervalRecord) -> bool:
        """Add ``record`` unless already known; returns True if added.
        Single-lookup variant for the incorporate hot path (which
        otherwise pays a ``in`` check plus ``add``'s own)."""
        interval_id = record.interval_id
        if interval_id in self._records:
            return False
        self._records[interval_id] = record
        indices, records = self._by_proc.setdefault(record.proc,
                                                    ([], []))
        if not indices or record.index > indices[-1]:
            indices.append(record.index)
            records.append(record)
        else:
            position = bisect_left(indices, record.index)
            indices.insert(position, record.index)
            records.insert(position, record)
        return True

    def get(self, interval_id: IntervalId) -> Optional[IntervalRecord]:
        return self._records.get(interval_id)

    def __contains__(self, interval_id: IntervalId) -> bool:
        return interval_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records_after(self, vc: VectorClock) -> List[IntervalRecord]:
        """Intervals (q, i) known here with i > vc[q]: exactly the write
        notices a releaser must ship to an acquirer whose clock is
        ``vc``."""
        components = vc.components
        found: List[IntervalRecord] = []
        for proc, (indices, records) in self._by_proc.items():
            # Quick reject: indices are ascending, so when the newest
            # known interval is already covered by ``vc`` the bisect
            # (and the slice) can be skipped for this processor.
            if indices[-1] <= components[proc]:
                continue
            cut = bisect_right(indices, components[proc])
            if cut < len(records):
                found.extend(records[cut:])
        if len(found) > 1:
            found.sort(key=lambda r: (r.vc.total(), r.proc, r.index))
        return found

    def all_records(self) -> List[IntervalRecord]:
        return sorted(self._records.values(),
                      key=lambda r: (r.vc.total(), r.proc, r.index))

    def prune_dominated(self, vc: VectorClock) -> List[IntervalId]:
        """Drop every record whose vector time is dominated by ``vc``
        (globally-known history); returns the dropped ids."""
        dropped = [iid for iid, record in self._records.items()
                   if vc.dominates(record.vc)]
        for iid in dropped:
            del self._records[iid]
        if dropped:
            self._by_proc = {}
            for record in self._records.values():
                indices, records = self._by_proc.setdefault(
                    record.proc, ([], []))
                # _records preserves insertion order, but per-proc
                # index order must be rebuilt defensively.
                if indices and record.index <= indices[-1]:
                    position = bisect_left(indices, record.index)
                    indices.insert(position, record.index)
                    records.insert(position, record)
                else:
                    indices.append(record.index)
                    records.append(record)
        return dropped


class DiffStore:
    """Diffs retained by one node, keyed by (proc, interval, page).

    A node stores every diff it creates and every diff it receives; the
    lazy protocols exploit this to fetch, from each concurrent last
    modifier, all diffs that precede that modifier's write (paper
    section 4.2.1/4.2.3).
    """

    def __init__(self) -> None:
        self._diffs: Dict[Tuple[int, int, int], Diff] = {}

    @staticmethod
    def key(proc: int, index: int, page: int) -> Tuple[int, int, int]:
        return (proc, index, page)

    def put(self, proc: int, index: int, diff: Diff) -> None:
        self._diffs.setdefault((proc, index, diff.page), diff)

    def get(self, proc: int, index: int, page: int) -> Optional[Diff]:
        return self._diffs.get((proc, index, page))

    def has(self, proc: int, index: int, page: int) -> bool:
        return (proc, index, page) in self._diffs

    def __len__(self) -> int:
        return len(self._diffs)

    def prune_intervals(self, interval_ids) -> int:
        """Drop every stored diff belonging to the given intervals;
        returns how many were removed."""
        doomed_ids = set(interval_ids)
        doomed = [key for key in self._diffs
                  if (key[0], key[1]) in doomed_ids]
        for key in doomed:
            del self._diffs[key]
        return len(doomed)
