"""Intervals, write notices, and the per-machine diff store.

Execution on each processor is divided into *intervals*, delimited by
synchronization events.  A :class:`WriteNotice` announces that a page
was modified during a given interval; the notice carries the interval's
vector time so receivers can order it under happened-before-1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.mem.diffs import Diff
from repro.mem.timestamps import VectorClock

IntervalId = Tuple[int, int]  # (proc, interval index)


@dataclass(frozen=True)
class WriteNotice:
    """'Processor ``proc``, in interval ``index``, modified ``page``.'"""

    page: int
    proc: int
    index: int
    vc: VectorClock

    @property
    def interval_id(self) -> IntervalId:
        return (self.proc, self.index)


@dataclass
class IntervalRecord:
    """One sealed interval: which pages it wrote and its vector time.

    ``pending_ranges`` holds the written word ranges per page until the
    diff is actually created (lazy diff creation).
    """

    proc: int
    index: int
    vc: VectorClock
    pages: FrozenSet[int]
    pending_ranges: Dict[int, List[Tuple[int, int]]] = field(
        default_factory=dict)

    @property
    def interval_id(self) -> IntervalId:
        return (self.proc, self.index)

    def notices(self) -> List[WriteNotice]:
        return [WriteNotice(page=page, proc=self.proc, index=self.index,
                            vc=self.vc)
                for page in sorted(self.pages)]


class IntervalLog:
    """A node's knowledge of intervals (its own and received ones)."""

    def __init__(self) -> None:
        self._records: Dict[IntervalId, IntervalRecord] = {}

    def add(self, record: IntervalRecord) -> None:
        self._records.setdefault(record.interval_id, record)

    def get(self, interval_id: IntervalId) -> Optional[IntervalRecord]:
        return self._records.get(interval_id)

    def __contains__(self, interval_id: IntervalId) -> bool:
        return interval_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records_after(self, vc: VectorClock) -> List[IntervalRecord]:
        """Intervals (q, i) known here with i > vc[q]: exactly the write
        notices a releaser must ship to an acquirer whose clock is
        ``vc``."""
        found = [record for record in self._records.values()
                 if record.index > vc[record.proc]]
        found.sort(key=lambda r: (r.vc.total(), r.proc, r.index))
        return found

    def all_records(self) -> List[IntervalRecord]:
        return sorted(self._records.values(),
                      key=lambda r: (r.vc.total(), r.proc, r.index))

    def prune_dominated(self, vc: VectorClock) -> List[IntervalId]:
        """Drop every record whose vector time is dominated by ``vc``
        (globally-known history); returns the dropped ids."""
        dropped = [iid for iid, record in self._records.items()
                   if vc.dominates(record.vc)]
        for iid in dropped:
            del self._records[iid]
        return dropped


class DiffStore:
    """Diffs retained by one node, keyed by (proc, interval, page).

    A node stores every diff it creates and every diff it receives; the
    lazy protocols exploit this to fetch, from each concurrent last
    modifier, all diffs that precede that modifier's write (paper
    section 4.2.1/4.2.3).
    """

    def __init__(self) -> None:
        self._diffs: Dict[Tuple[int, int, int], Diff] = {}

    @staticmethod
    def key(proc: int, index: int, page: int) -> Tuple[int, int, int]:
        return (proc, index, page)

    def put(self, proc: int, index: int, diff: Diff) -> None:
        self._diffs.setdefault((proc, index, diff.page), diff)

    def get(self, proc: int, index: int, page: int) -> Optional[Diff]:
        return self._diffs.get((proc, index, page))

    def has(self, proc: int, index: int, page: int) -> bool:
        return (proc, index, page) in self._diffs

    def __len__(self) -> int:
        return len(self._diffs)

    def prune_intervals(self, interval_ids) -> int:
        """Drop every stored diff belonging to the given intervals;
        returns how many were removed."""
        doomed_ids = set(interval_ids)
        doomed = [key for key in self._diffs
                  if (key[0], key[1]) in doomed_ids]
        for key in doomed:
            del self._diffs[key]
        return len(doomed)
