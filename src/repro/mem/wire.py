"""Canonical on-wire encoding of page diffs (the ``RDIF`` format).

This module is the single source of truth for how a run-length encoded
diff is laid out as bytes and how its wire cost is accounted.  The
protocol layer's ``size_bytes`` charging (and through it every
diff-bearing message's ``data_bytes``) derives from the constants
defined here; docs/memory.md walks through a byte-level example and
the round-trip property tests in tests/mem pin the format.

Layout (all integers little-endian)::

    header (16 bytes)
      0   4s  magic          b"RDIF"
      4   B   version        WIRE_VERSION (currently 1)
      5   B   word_size      simulated machine word, bytes (config)
      6   H   flags          0 (reserved)
      8   I   page           global page number
      12  I   run_count      number of dirty runs
    run table (8 bytes per run == RUN_HEADER_BYTES)
      +0  I   offset         first dirty word (page-relative)
      +4  I   count          dirty words in this run
    payload (8 bytes per word)
      IEEE-754 float64 host words, runs concatenated in table order

Two sizes are associated with a diff and they are *not* the same
number:

- ``Diff.size_bytes`` — the **accounted** wire cost charged by the
  simulated machine: ``RUN_HEADER_BYTES * runs + word_count *
  word_size``.  The simulated DSM moves ``word_size``-byte machine
  words (4 bytes, matching the paper's 32-bit SPARC words); the fixed
  16-byte format header is part of the per-message fixed cost
  (``MESSAGE_HEADER_BYTES``), not the diff payload.
- ``len(encode_diff(d))`` — the **host** encoding length:
  ``DIFF_HEADER_BYTES + RUN_HEADER_BYTES * runs + word_count *
  HOST_WORD_BYTES``.  The host carries float64 so that
  ``decode(encode(d))`` reproduces every word bit for bit.

``accounted_size`` and ``encoded_size`` compute the two; the property
tests assert both against real encodings.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING

from repro.mem import instrument

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mem.diffs import Diff

MAGIC = b"RDIF"
WIRE_VERSION = 1

#: Fixed format header preceding the run table.
DIFF_HEADER_BYTES = 16
#: Per-run (offset, count) entry — also the accounted per-run cost.
RUN_HEADER_BYTES = 8
#: Host representation of one word (IEEE-754 float64).
HOST_WORD_BYTES = 8

_HEADER = struct.Struct("<4sBBHII")
_RUN = struct.Struct("<II")

assert _HEADER.size == DIFF_HEADER_BYTES
assert _RUN.size == RUN_HEADER_BYTES


class WireFormatError(ValueError):
    """A diff blob violates the RDIF layout or its invariants."""


def accounted_size(run_count: int, word_count: int,
                   word_size: int) -> int:
    """Simulated wire cost of a diff (``Diff.size_bytes``)."""
    return RUN_HEADER_BYTES * run_count + word_count * word_size


def encoded_size(run_count: int, word_count: int) -> int:
    """Host length of :func:`encode_diff`'s output."""
    return (DIFF_HEADER_BYTES + RUN_HEADER_BYTES * run_count
            + word_count * HOST_WORD_BYTES)


def encode_diff(diff: "Diff") -> bytes:
    """Serialize ``diff`` into the canonical RDIF byte layout.

    Memoized on the diff: a ``Diff`` is immutable and the format has
    exactly one valid encoding per diff, so the blob is materialized
    once and the bytes reused on every later call (checkpoints
    re-encode the whole diff store each episode; repeated encodes of
    the same diff are the common case there).  The instrument counters
    keep per-call semantics — they count serialization events, cached
    or not — so metric dumps are unaffected by the cache.
    """
    blob = diff._encoded
    if blob is None:
        starts = diff.starts
        counts = diff.counts
        parts = [_HEADER.pack(MAGIC, WIRE_VERSION, diff.word_size, 0,
                              diff.page, len(starts))]
        parts.extend(_RUN.pack(start, count)
                     for start, count in zip(starts, counts))
        parts.append(diff.payload)
        blob = b"".join(parts)
        diff._encoded = blob
    ins = instrument.active
    if ins is not None:
        ins.diffs_encoded.inc()
        ins.diff_runs.observe(len(diff.starts))
        ins.diff_encoded_bytes.observe(len(blob))
        ins.diff_accounted_bytes.observe(diff.size_bytes)
    return blob


def decode_diff(blob: bytes) -> "Diff":
    """Parse an RDIF blob back into a :class:`repro.mem.diffs.Diff`.

    Validates the magic, version, run-table invariants (runs sorted,
    disjoint, non-empty) and that the payload length matches the run
    table exactly.
    """
    from repro.mem.diffs import Diff

    if len(blob) < DIFF_HEADER_BYTES:
        raise WireFormatError(
            f"blob of {len(blob)} bytes is shorter than the "
            f"{DIFF_HEADER_BYTES}-byte header")
    magic, version, word_size, flags, page, run_count = \
        _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported version {version}")
    if flags != 0:
        raise WireFormatError(f"unknown flags 0x{flags:04x}")
    table_end = DIFF_HEADER_BYTES + RUN_HEADER_BYTES * run_count
    if len(blob) < table_end:
        raise WireFormatError(
            f"truncated run table: {run_count} runs need "
            f"{table_end} bytes, got {len(blob)}")
    starts = []
    counts = []
    word_count = 0
    previous_end = -1
    for i in range(run_count):
        start, count = _RUN.unpack_from(
            blob, DIFF_HEADER_BYTES + RUN_HEADER_BYTES * i)
        if count == 0:
            raise WireFormatError(f"run {i} is empty")
        if start <= previous_end:
            raise WireFormatError(
                f"run {i} at word {start} overlaps or touches the "
                f"previous run ending at {previous_end}")
        previous_end = start + count - 1
        starts.append(start)
        counts.append(count)
        word_count += count
    payload = blob[table_end:]
    if len(payload) != word_count * HOST_WORD_BYTES:
        raise WireFormatError(
            f"payload of {len(payload)} bytes does not match "
            f"{word_count} words ({word_count * HOST_WORD_BYTES} "
            "bytes expected)")
    ins = instrument.active
    if ins is not None:
        ins.diffs_decoded.inc()
    diff = Diff.from_flat(page, tuple(starts), tuple(counts), payload,
                          word_size=word_size)
    # The validation above admits exactly the canonical layout, so the
    # input blob IS this diff's encoding — seed the encode memo with it
    # (a restored checkpoint re-checkpoints without re-encoding).
    diff._encoded = bytes(blob)
    return diff
