"""Shared address space: segment allocation and page/word arithmetic."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


@dataclass(frozen=True)
class Segment:
    """A named, page-aligned region of the shared address space.

    Addresses are expressed in *words* throughout the simulator; the
    byte-level picture only matters for message sizing, which the diff
    and config layers handle.
    """

    name: str
    base_word: int
    nwords: int
    words_per_page: int

    @property
    def first_page(self) -> int:
        return self.base_word // self.words_per_page

    @property
    def npages(self) -> int:
        last_word = self.base_word + self.nwords - 1
        return last_word // self.words_per_page - self.first_page + 1

    @property
    def pages(self) -> range:
        return range(self.first_page, self.first_page + self.npages)

    def word_address(self, index: int) -> int:
        if index < 0 or index >= self.nwords:
            raise IndexError(f"index {index} outside segment "
                             f"{self.name!r} of {self.nwords} words")
        return self.base_word + index

    def locate(self, index: int) -> Tuple[int, int]:
        """Map a segment-relative word index to (page, offset)."""
        addr = self.word_address(index)
        return divmod(addr, self.words_per_page)

    def page_ranges(self, start: int, end: int
                    ) -> Iterator[Tuple[int, int, int]]:
        """Split segment-relative [start, end) into per-page pieces.

        Yields (page, page_start_offset, page_end_offset) triples.
        """
        if start < 0 or end > self.nwords or start > end:
            raise IndexError(f"bad range [{start},{end}) in segment "
                             f"{self.name!r}")
        word = self.base_word + start
        last = self.base_word + end
        while word < last:
            page, offset = divmod(word, self.words_per_page)
            chunk = min(self.words_per_page - offset, last - word)
            yield page, offset, offset + chunk
            word += chunk


class AddressSpace:
    """Allocates page-aligned shared segments."""

    def __init__(self, words_per_page: int) -> None:
        if words_per_page < 1:
            raise ValueError("words_per_page must be >= 1")
        self.words_per_page = words_per_page
        self._next_page = 0
        self._segments: Dict[str, Segment] = {}

    def allocate(self, name: str, nwords: int) -> Segment:
        if name in self._segments:
            raise ValueError(f"segment {name!r} already allocated")
        if nwords < 1:
            raise ValueError("segment must have at least one word")
        npages = -(-nwords // self.words_per_page)  # ceil division
        segment = Segment(name=name,
                          base_word=self._next_page * self.words_per_page,
                          nwords=nwords,
                          words_per_page=self.words_per_page)
        self._next_page += npages
        self._segments[name] = segment
        return segment

    def segment(self, name: str) -> Segment:
        return self._segments[name]

    def segments(self) -> List[Segment]:
        return list(self._segments.values())

    @property
    def allocated_pages(self) -> int:
        return self._next_page
