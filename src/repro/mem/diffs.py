"""Run-length encoded page diffs.

A diff captures the words of one page modified during one interval, as
runs of (start word, values).  Sending diffs instead of pages is what
lets the multiple-writer protocols merge concurrent modifications of a
falsely-shared page.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

RUN_HEADER_BYTES = 8  # per-run (offset, length) encoding cost


def normalize_ranges(ranges: Iterable[Tuple[int, int]]
                     ) -> List[Tuple[int, int]]:
    """Merge overlapping/adjacent half-open word ranges, sorted."""
    items = sorted((int(a), int(b)) for a, b in ranges if b > a)
    merged: List[Tuple[int, int]] = []
    for start, end in items:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def ranges_word_count(ranges: Sequence[Tuple[int, int]]) -> int:
    return sum(end - start for start, end in ranges)


class Diff:
    """Modified words of a single page, as run-length runs.

    Runs are immutable once constructed, so the derived sizes
    (``word_count``, ``size_bytes`` — consulted per message on the
    protocol critical path) are computed lazily once and cached.
    """

    __slots__ = ("page", "runs", "word_size", "_word_count",
                 "_size_bytes")

    def __init__(self, page: int,
                 runs: Sequence[Tuple[int, np.ndarray]],
                 word_size: int = 4) -> None:
        self.page = page
        self.runs: List[Tuple[int, np.ndarray]] = [
            (int(start), np.asarray(values, dtype=np.float64))
            for start, values in runs]
        self.word_size = word_size
        self._word_count: int = -1
        self._size_bytes: int = -1

    @staticmethod
    def from_ranges(page: int, values: np.ndarray,
                    ranges: Iterable[Tuple[int, int]],
                    word_size: int = 4,
                    assume_normalized: bool = False) -> "Diff":
        """Snapshot ``values`` over the given word ranges.

        With ``assume_normalized`` the caller promises ``ranges`` is
        already sorted and disjoint (e.g. straight out of
        :meth:`repro.mem.pages.PageCopy.take_written_ranges`), skipping
        a redundant :func:`normalize_ranges` pass.
        """
        if not assume_normalized:
            ranges = normalize_ranges(ranges)
        runs = [(start, values[start:end].copy())
                for start, end in ranges]
        return Diff(page, runs, word_size=word_size)

    @property
    def word_count(self) -> int:
        if self._word_count < 0:
            self._word_count = sum(len(values)
                                   for _start, values in self.runs)
        return self._word_count

    @property
    def size_bytes(self) -> int:
        """Encoded size: per-run header plus the run payloads."""
        if self._size_bytes < 0:
            self._size_bytes = (
                RUN_HEADER_BYTES * len(self.runs)
                + self.word_count * self.word_size)
        return self._size_bytes

    def ranges(self) -> List[Tuple[int, int]]:
        return [(start, start + len(values))
                for start, values in self.runs]

    def apply(self, target: np.ndarray) -> None:
        """Write the diff's words into ``target`` in place."""
        runs = self.runs
        if len(runs) == 1:
            # Single-run diffs dominate (regular apps write whole
            # rows/pages): one slice assignment, no loop.
            start, values = runs[0]
            end = start + len(values)
            if end > len(target):
                raise ValueError(
                    f"diff run [{start},{end}) exceeds "
                    f"page of {len(target)} words")
            target[start:end] = values
            return
        size = len(target)
        for start, values in runs:
            end = start + len(values)
            if end > size:
                raise ValueError(
                    f"diff run [{start},{end}) exceeds "
                    f"page of {size} words")
            target[start:end] = values

    def overlaps(self, other: "Diff") -> bool:
        mine = normalize_ranges(self.ranges())
        theirs = normalize_ranges(other.ranges())
        i = j = 0
        while i < len(mine) and j < len(theirs):
            a_start, a_end = mine[i]
            b_start, b_end = theirs[j]
            if a_start < b_end and b_start < a_end:
                return True
            if a_end <= b_end:
                i += 1
            else:
                j += 1
        return False

    def __repr__(self) -> str:
        return (f"<Diff page={self.page} runs={len(self.runs)} "
                f"words={self.word_count}>")
