"""Run-length encoded page diffs on a flat buffer substrate.

A diff captures the words of one page modified during one interval, as
runs of (start word, values).  Sending diffs instead of pages is what
lets the multiple-writer protocols merge concurrent modifications of a
falsely-shared page.

Representation (docs/memory.md): a diff is three flat pieces — a
``starts`` tuple, a ``counts`` tuple, and one contiguous ``payload``
``bytes`` holding every run's float64 words back to back.  Creating a
diff from a :class:`repro.mem.pages.PageCopy` is a byte-slice per run
off the page's flat buffer (no numpy allocation per run), and applying
one is a single-pass memoryview splice per run — both C-speed
``memcpy``s.  The canonical serialized form lives in
:mod:`repro.mem.wire`; ``size_bytes`` follows that spec's accounting.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.mem.wire import (HOST_WORD_BYTES, RUN_HEADER_BYTES,
                            accounted_size, decode_diff, encode_diff)

__all__ = ["Diff", "RUN_HEADER_BYTES", "normalize_ranges",
           "ranges_word_count"]


def normalize_ranges(ranges: Iterable[Tuple[int, int]]
                     ) -> List[Tuple[int, int]]:
    """Merge overlapping/adjacent half-open word ranges, sorted."""
    items = sorted((int(a), int(b)) for a, b in ranges if b > a)
    merged: List[Tuple[int, int]] = []
    for start, end in items:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def ranges_word_count(ranges: Sequence[Tuple[int, int]]) -> int:
    return sum(end - start for start, end in ranges)


class Diff:
    """Modified words of a single page, as run-length runs.

    Immutable once constructed: the flat pieces (``starts``,
    ``counts``, ``payload``) never change, so the derived sizes
    (``word_count``, ``size_bytes`` — consulted per message on the
    protocol critical path) are plain attributes computed once.
    """

    __slots__ = ("page", "starts", "counts", "payload", "word_size",
                 "word_count", "size_bytes", "_runs", "_encoded")

    def __init__(self, page: int,
                 runs: Sequence[Tuple[int, np.ndarray]],
                 word_size: int = 4) -> None:
        starts = []
        counts = []
        parts = []
        for start, values in runs:
            values = np.asarray(values, dtype=np.float64)
            starts.append(int(start))
            counts.append(len(values))
            parts.append(values.tobytes())
        self._init_flat(page, tuple(starts), tuple(counts),
                        b"".join(parts), word_size)

    def _init_flat(self, page: int, starts: Tuple[int, ...],
                   counts: Tuple[int, ...], payload: bytes,
                   word_size: int) -> None:
        self.page = page
        self.starts = starts
        self.counts = counts
        self.payload = payload
        self.word_size = word_size
        self.word_count = len(payload) // HOST_WORD_BYTES
        self.size_bytes = accounted_size(len(starts), self.word_count,
                                         word_size)
        self._runs = None
        # Memoized canonical RDIF encoding (repro.mem.wire fills it on
        # the first encode, or seeds it from the source blob on
        # decode).  Immutability makes invalidation unnecessary.
        self._encoded = None

    @classmethod
    def from_flat(cls, page: int, starts: Tuple[int, ...],
                  counts: Tuple[int, ...], payload: bytes,
                  word_size: int = 4) -> "Diff":
        """Fast constructor from the flat pieces (already validated)."""
        diff = object.__new__(cls)
        diff._init_flat(page, starts, counts, payload, word_size)
        return diff

    @staticmethod
    def from_ranges(page: int, source, ranges: Iterable[Tuple[int, int]],
                    word_size: int = 4,
                    assume_normalized: bool = False) -> "Diff":
        """Snapshot ``source`` over the given word ranges.

        ``source`` is a :class:`repro.mem.pages.PageCopy` (the hot
        path: each run is one byte-slice off the page's flat buffer)
        or a float64 numpy array.  With ``assume_normalized`` the
        caller promises ``ranges`` is already sorted and disjoint
        (e.g. straight out of
        :meth:`repro.mem.pages.PageCopy.take_written_ranges`), skipping
        a redundant :func:`normalize_ranges` pass.
        """
        if not assume_normalized:
            ranges = normalize_ranges(ranges)
        elif not isinstance(ranges, (list, tuple)):
            ranges = list(ranges)
        raw = getattr(source, "raw", None)
        if raw is None:
            raw = memoryview(np.ascontiguousarray(
                source, dtype=np.float64).tobytes())
        if len(ranges) == 1:
            # Single-run diffs dominate (regular apps write whole
            # rows/pages): one slice, no join.
            start, end = ranges[0]
            payload = bytes(raw[start * 8:end * 8])
            return Diff.from_flat(page, (int(start),),
                                  (int(end - start),), payload,
                                  word_size=word_size)
        starts = []
        counts = []
        parts = []
        for start, end in ranges:
            starts.append(int(start))
            counts.append(int(end - start))
            parts.append(raw[start * 8:end * 8])
        return Diff.from_flat(page, tuple(starts), tuple(counts),
                              b"".join(parts), word_size=word_size)

    @property
    def runs(self) -> List[Tuple[int, np.ndarray]]:
        """Compatibility view: ``[(start, float64 values), ...]``.
        Built lazily from the flat payload; the arrays are copies, so
        mutating them never corrupts the diff."""
        built = self._runs
        if built is None:
            words = np.frombuffer(self.payload, dtype=np.float64)
            built = []
            cursor = 0
            for start, count in zip(self.starts, self.counts):
                built.append((start,
                              words[cursor:cursor + count].copy()))
                cursor += count
            self._runs = built
        return built

    def ranges(self) -> List[Tuple[int, int]]:
        return [(start, start + count)
                for start, count in zip(self.starts, self.counts)]

    def apply(self, target) -> None:
        """Write the diff's words into ``target`` in place.

        ``target`` is a :class:`repro.mem.pages.PageCopy` (the hot
        path: one memoryview byte-splice per run — a straight
        ``memcpy``) or a float64 numpy array (tests, analysis code).
        """
        buffer = getattr(target, "buffer", None)
        if buffer is not None:
            size = len(buffer) // 8
            payload = self.payload
            starts = self.starts
            if len(starts) == 1:
                start = starts[0]
                end = start + self.counts[0]
                if end > size:
                    raise ValueError(
                        f"diff run [{start},{end}) exceeds "
                        f"page of {size} words")
                buffer[start * 8:end * 8] = payload
                return
            source = memoryview(payload)
            cursor = 0
            for start, count in zip(starts, self.counts):
                end = start + count
                if end > size:
                    raise ValueError(
                        f"diff run [{start},{end}) exceeds "
                        f"page of {size} words")
                stop = cursor + count * 8
                buffer[start * 8:end * 8] = source[cursor:stop]
                cursor = stop
            return
        size = len(target)
        words = np.frombuffer(self.payload, dtype=np.float64)
        cursor = 0
        for start, count in zip(self.starts, self.counts):
            end = start + count
            if end > size:
                raise ValueError(
                    f"diff run [{start},{end}) exceeds "
                    f"page of {size} words")
            target[start:end] = words[cursor:cursor + count]
            cursor += count

    # -- canonical serialization (repro.mem.wire) ----------------------

    def encode(self) -> bytes:
        """Serialize into the canonical RDIF wire format (memoized —
        the blob is built once and the same ``bytes`` reused)."""
        return encode_diff(self)

    @staticmethod
    def decode(blob: bytes) -> "Diff":
        """Inverse of :meth:`encode` (validating)."""
        return decode_diff(blob)

    def overlaps(self, other: "Diff") -> bool:
        mine = normalize_ranges(self.ranges())
        theirs = normalize_ranges(other.ranges())
        i = j = 0
        while i < len(mine) and j < len(theirs):
            a_start, a_end = mine[i]
            b_start, b_end = theirs[j]
            if a_start < b_end and b_start < a_end:
                return True
            if a_end <= b_end:
                i += 1
            else:
                j += 1
        return False

    def __eq__(self, other) -> bool:
        return (isinstance(other, Diff)
                and self.page == other.page
                and self.word_size == other.word_size
                and self.starts == other.starts
                and self.counts == other.counts
                and self.payload == other.payload)

    def __hash__(self) -> int:
        return hash((self.page, self.word_size, self.starts,
                     self.counts, self.payload))

    def __repr__(self) -> str:
        return (f"<Diff page={self.page} runs={len(self.starts)} "
                f"words={self.word_count}>")
