"""Run-length encoded page diffs.

A diff captures the words of one page modified during one interval, as
runs of (start word, values).  Sending diffs instead of pages is what
lets the multiple-writer protocols merge concurrent modifications of a
falsely-shared page.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

RUN_HEADER_BYTES = 8  # per-run (offset, length) encoding cost


def normalize_ranges(ranges: Iterable[Tuple[int, int]]
                     ) -> List[Tuple[int, int]]:
    """Merge overlapping/adjacent half-open word ranges, sorted."""
    items = sorted((int(a), int(b)) for a, b in ranges if b > a)
    merged: List[Tuple[int, int]] = []
    for start, end in items:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def ranges_word_count(ranges: Sequence[Tuple[int, int]]) -> int:
    return sum(end - start for start, end in ranges)


class Diff:
    """Modified words of a single page, as run-length runs."""

    __slots__ = ("page", "runs", "word_size")

    def __init__(self, page: int,
                 runs: Sequence[Tuple[int, np.ndarray]],
                 word_size: int = 4) -> None:
        self.page = page
        self.runs: List[Tuple[int, np.ndarray]] = [
            (int(start), np.asarray(values, dtype=np.float64))
            for start, values in runs]
        self.word_size = word_size

    @staticmethod
    def from_ranges(page: int, values: np.ndarray,
                    ranges: Iterable[Tuple[int, int]],
                    word_size: int = 4) -> "Diff":
        """Snapshot ``values`` over the given word ranges."""
        runs = [(start, values[start:end].copy())
                for start, end in normalize_ranges(ranges)]
        return Diff(page, runs, word_size=word_size)

    @property
    def word_count(self) -> int:
        return sum(len(values) for _start, values in self.runs)

    @property
    def size_bytes(self) -> int:
        """Encoded size: per-run header plus the run payloads."""
        return sum(RUN_HEADER_BYTES + len(values) * self.word_size
                   for _start, values in self.runs)

    def ranges(self) -> List[Tuple[int, int]]:
        return [(start, start + len(values))
                for start, values in self.runs]

    def apply(self, target: np.ndarray) -> None:
        """Write the diff's words into ``target`` in place."""
        for start, values in self.runs:
            if start + len(values) > len(target):
                raise ValueError(
                    f"diff run [{start},{start + len(values)}) exceeds "
                    f"page of {len(target)} words")
            target[start:start + len(values)] = values

    def overlaps(self, other: "Diff") -> bool:
        mine = normalize_ranges(self.ranges())
        theirs = normalize_ranges(other.ranges())
        i = j = 0
        while i < len(mine) and j < len(theirs):
            a_start, a_end = mine[i]
            b_start, b_end = theirs[j]
            if a_start < b_end and b_start < a_end:
                return True
            if a_end <= b_end:
                i += 1
            else:
                j += 1
        return False

    def __repr__(self) -> str:
        return (f"<Diff page={self.page} runs={len(self.runs)} "
                f"words={self.word_count}>")
