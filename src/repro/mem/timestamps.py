"""Vector timestamps for the happened-before-1 partial order.

Write notices are tagged with vector times (Keleher et al., ISCA 1992);
dominance between vector times encodes whether one shared-memory
modification precedes another under happened-before-1.
"""

from __future__ import annotations

from typing import Iterable, Tuple


class VectorClock:
    """Immutable vector of per-processor interval indices."""

    __slots__ = ("components",)

    def __init__(self, components: Iterable[int]) -> None:
        object.__setattr__(self, "components", tuple(int(c)
                                                     for c in components))

    @staticmethod
    def zero(nprocs: int) -> "VectorClock":
        return VectorClock((0,) * nprocs)

    def __len__(self) -> int:
        return len(self.components)

    def __getitem__(self, proc: int) -> int:
        return self.components[proc]

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("VectorClock is immutable")

    def incremented(self, proc: int) -> "VectorClock":
        parts = list(self.components)
        parts[proc] += 1
        return VectorClock(parts)

    def merged(self, other: "VectorClock") -> "VectorClock":
        self._check(other)
        return VectorClock(max(a, b) for a, b in
                           zip(self.components, other.components))

    def dominates(self, other: "VectorClock") -> bool:
        """True iff self >= other componentwise."""
        self._check(other)
        return all(a >= b for a, b in zip(self.components,
                                          other.components))

    def strictly_dominates(self, other: "VectorClock") -> bool:
        """True iff self >= other and self != other (other -> self)."""
        return self.dominates(other) and self.components != other.components

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.dominates(other) and not other.dominates(self)

    def total(self) -> int:
        """Sum of components: any linear extension key of hb1 (if
        a strictly-dominates b then a.total() > b.total())."""
        return sum(self.components)

    def _check(self, other: "VectorClock") -> None:
        if len(self.components) != len(other.components):
            raise ValueError("vector clock size mismatch: "
                             f"{len(self)} vs {len(other)}")

    def __eq__(self, other) -> bool:
        return (isinstance(other, VectorClock)
                and self.components == other.components)

    def __hash__(self) -> int:
        return hash(self.components)

    def __repr__(self) -> str:
        return f"VC{self.components}"
