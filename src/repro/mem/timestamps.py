"""Vector timestamps for the happened-before-1 partial order.

Write notices are tagged with vector times (Keleher et al., ISCA 1992);
dominance between vector times encodes whether one shared-memory
modification precedes another under happened-before-1.
"""

from __future__ import annotations

from typing import Iterable, Tuple


class VectorClock:
    """Immutable vector of per-processor interval indices."""

    __slots__ = ("components", "_total")

    def __init__(self, components: Iterable[int]) -> None:
        object.__setattr__(self, "components", tuple(int(c)
                                                     for c in components))
        object.__setattr__(self, "_total", -1)

    @classmethod
    def _of(cls, components: Tuple[int, ...]) -> "VectorClock":
        """Internal fast constructor: ``components`` must already be a
        tuple of ints.  Skips __init__'s coercion pass — clocks are
        allocated on every interval seal and clock merge."""
        clock = object.__new__(cls)
        object.__setattr__(clock, "components", components)
        object.__setattr__(clock, "_total", -1)
        return clock

    @staticmethod
    def zero(nprocs: int) -> "VectorClock":
        return VectorClock._of((0,) * nprocs)

    def __len__(self) -> int:
        return len(self.components)

    def __getitem__(self, proc: int) -> int:
        return self.components[proc]

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("VectorClock is immutable")

    def incremented(self, proc: int) -> "VectorClock":
        parts = self.components
        return VectorClock._of(parts[:proc] + (parts[proc] + 1,)
                               + parts[proc + 1:])

    def merged(self, other: "VectorClock") -> "VectorClock":
        if other is self:
            return self
        mine = self.components
        theirs = other.components
        if len(mine) != len(theirs):
            self._check(other)
        combined = tuple(map(max, mine, theirs))
        # Identity-preserving: when one side already dominates, return
        # that clock instead of an equal new one.  Downstream memos key
        # on clock object identity (PageCopy.due_cache), so keeping the
        # object stable turns value-equal merges into cache hits — and
        # the ``_total`` memo survives with it.
        if combined == mine:
            return self
        if combined == theirs:
            return other
        return VectorClock._of(combined)

    def dominates(self, other: "VectorClock") -> bool:
        """True iff self >= other componentwise."""
        if other is self:
            return True
        mine = self.components
        theirs = other.components
        if len(mine) != len(theirs):
            self._check(other)
        for a, b in zip(mine, theirs):
            if a < b:
                return False
        return True

    def strictly_dominates(self, other: "VectorClock") -> bool:
        """True iff self >= other and self != other (other -> self)."""
        return self.dominates(other) and self.components != other.components

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.dominates(other) and not other.dominates(self)

    def total(self) -> int:
        """Sum of components: any linear extension key of hb1 (if
        a strictly-dominates b then a.total() > b.total()).  Cached —
        it is the sort key for every record ordering."""
        total = self._total
        if total < 0:
            total = sum(self.components)
            object.__setattr__(self, "_total", total)
        return total

    def _check(self, other: "VectorClock") -> None:
        if len(self.components) != len(other.components):
            raise ValueError("vector clock size mismatch: "
                             f"{len(self)} vs {len(other)}")

    def __eq__(self, other) -> bool:
        return (isinstance(other, VectorClock)
                and self.components == other.components)

    def __hash__(self) -> int:
        return hash(self.components)

    def __repr__(self) -> str:
        return f"VC{self.components}"
