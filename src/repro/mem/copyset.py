"""Approximate per-page copysets.

Each node keeps, for every page, the set of processors it *believes*
cache the page.  The paper stresses that copysets are approximate: they
are seeded from the owner on page transfer and refreshed by write
notices and diff requests; the eager protocols compensate with extra
flush rounds, and the hybrid uses them as a heuristic for which diffs to
piggyback on lock grants.

Representation (docs/memory.md): one int bitmask per page — bit ``p``
set means "processor ``p`` caches this page".  Membership tests and
inserts are single bit ops, and the whole table is a flat
``page -> int`` dict.  The set-returning accessors (:meth:`get`,
:meth:`others`) materialize frozensets for callers that iterate.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable


def _mask_to_set(mask: int) -> FrozenSet[int]:
    procs = []
    proc = 0
    while mask:
        if mask & 1:
            procs.append(proc)
        mask >>= 1
        proc += 1
    return frozenset(procs)


class CopysetTable:
    """One node's view of who caches each page."""

    def __init__(self, self_proc: int) -> None:
        self.self_proc = self_proc
        self._self_bit = 1 << self_proc
        self._masks: Dict[int, int] = {}

    def get(self, page: int) -> FrozenSet[int]:
        return _mask_to_set(self._masks.get(page, 0))

    def others(self, page: int) -> FrozenSet[int]:
        return _mask_to_set(self._masks.get(page, 0) & ~self._self_bit)

    def add(self, page: int, proc: int) -> None:
        self._masks[page] = self._masks.get(page, 0) | (1 << proc)

    def add_many(self, page: int, procs: Iterable[int]) -> None:
        mask = self._masks.get(page, 0)
        for proc in procs:
            mask |= 1 << proc
        self._masks[page] = mask

    def remove(self, page: int, proc: int) -> None:
        mask = self._masks.get(page)
        if mask is not None:
            self._masks[page] = mask & ~(1 << proc)

    def replace(self, page: int, procs: Iterable[int]) -> None:
        mask = 0
        for proc in procs:
            mask |= 1 << proc
        self._masks[page] = mask

    def believes_cached(self, page: int, proc: int) -> bool:
        return bool(self._masks.get(page, 0) & (1 << proc))
