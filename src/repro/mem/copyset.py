"""Approximate per-page copysets.

Each node keeps, for every page, the set of processors it *believes*
cache the page.  The paper stresses that copysets are approximate: they
are seeded from the owner on page transfer and refreshed by write
notices and diff requests; the eager protocols compensate with extra
flush rounds, and the hybrid uses them as a heuristic for which diffs to
piggyback on lock grants.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set


class CopysetTable:
    """One node's view of who caches each page."""

    def __init__(self, self_proc: int) -> None:
        self.self_proc = self_proc
        self._copysets: Dict[int, Set[int]] = {}

    def get(self, page: int) -> FrozenSet[int]:
        return frozenset(self._copysets.get(page, ()))

    def others(self, page: int) -> FrozenSet[int]:
        return frozenset(p for p in self._copysets.get(page, ())
                         if p != self.self_proc)

    def add(self, page: int, proc: int) -> None:
        self._copysets.setdefault(page, set()).add(proc)

    def add_many(self, page: int, procs: Iterable[int]) -> None:
        self._copysets.setdefault(page, set()).update(procs)

    def remove(self, page: int, proc: int) -> None:
        copyset = self._copysets.get(page)
        if copyset is not None:
            copyset.discard(proc)

    def replace(self, page: int, procs: Iterable[int]) -> None:
        self._copysets[page] = set(procs)

    def believes_cached(self, page: int, proc: int) -> bool:
        return proc in self._copysets.get(page, ())
