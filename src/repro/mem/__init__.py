"""Memory substrate: pages, diffs, timestamps, intervals, copysets."""

from repro.mem.addressing import AddressSpace, Segment
from repro.mem.copyset import CopysetTable
from repro.mem.diffs import Diff, normalize_ranges, ranges_word_count
from repro.mem.intervals import (DiffStore, IntervalLog, IntervalRecord,
                                 WriteNotice)
from repro.mem.pages import PageCopy, PageTable
from repro.mem.timestamps import VectorClock
from repro.mem.wire import (WIRE_VERSION, WireFormatError, accounted_size,
                            decode_diff, encode_diff, encoded_size)

__all__ = [
    "AddressSpace", "CopysetTable", "Diff", "DiffStore", "IntervalLog",
    "IntervalRecord", "PageCopy", "PageTable", "Segment", "VectorClock",
    "WIRE_VERSION", "WireFormatError", "WriteNotice", "accounted_size",
    "decode_diff", "encode_diff", "encoded_size", "normalize_ranges",
    "ranges_word_count",
]
