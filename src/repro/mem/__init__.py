"""Memory substrate: pages, diffs, timestamps, intervals, copysets."""

from repro.mem.addressing import AddressSpace, Segment
from repro.mem.copyset import CopysetTable
from repro.mem.diffs import Diff, normalize_ranges, ranges_word_count
from repro.mem.intervals import (DiffStore, IntervalLog, IntervalRecord,
                                 WriteNotice)
from repro.mem.pages import PageCopy, PageTable
from repro.mem.timestamps import VectorClock

__all__ = [
    "AddressSpace", "CopysetTable", "Diff", "DiffStore", "IntervalLog",
    "IntervalRecord", "PageCopy", "PageTable", "Segment", "VectorClock",
    "WriteNotice", "normalize_ranges", "ranges_word_count",
]
