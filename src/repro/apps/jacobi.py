"""Jacobi: red/black-free successive over-relaxation on a square grid.

The paper's coarse-grained workload: each processor owns a block of
rows, reads its neighbours' boundary rows, writes its own, and meets
everyone at a barrier each iteration (~324K cycles of computation per
off-node synchronization at 16 processors on the 512x512 grid).

Two grids are used (read the old, write the new, swap), so each node
only ever writes its own rows — all cross-processor traffic is the
boundary rows, which share pages when the block size is not
page-aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.apps.base import Application, block_range
from repro.core.api import DsmApi
from repro.core.machine import Machine
from repro.core.metrics import RunResult

#: Calibrated so 512*512/16 elements cost ~324K cycles (paper grain).
CYCLES_PER_ELEMENT = 20.0


@dataclass
class JacobiShared:
    grids: tuple  # (segment A, segment B)
    n: int
    iterations: int


def boundary_grid(n: int) -> np.ndarray:
    """Initial condition: hot top edge, cold interior."""
    grid = np.zeros((n, n))
    grid[0, :] = 100.0
    grid[-1, :] = 0.0
    grid[:, 0] = 50.0
    grid[:, -1] = 50.0
    return grid


def sequential_jacobi(n: int, iterations: int) -> np.ndarray:
    """Oracle: the same averaging scheme, in plain numpy."""
    src = boundary_grid(n)
    dst = src.copy()
    for _ in range(iterations):
        dst[1:-1, 1:-1] = 0.25 * (src[:-2, 1:-1] + src[2:, 1:-1]
                                  + src[1:-1, :-2] + src[1:-1, 2:])
        src, dst = dst, src
    return src


class Jacobi(Application):
    """SOR solver; ``n`` is the grid edge (paper: 512)."""

    name = "jacobi"

    def __init__(self, n: int = 128, iterations: int = 10,
                 cycles_per_element: float = CYCLES_PER_ELEMENT) -> None:
        if n < 4:
            raise ValueError("grid too small")
        self.n = n
        self.iterations = iterations
        self.cycles_per_element = cycles_per_element

    def setup(self, machine: Machine) -> JacobiShared:
        init = boundary_grid(self.n).ravel()
        grid_a = machine.allocate("jacobi_a", self.n * self.n,
                                  init=init, owner="block")
        grid_b = machine.allocate("jacobi_b", self.n * self.n,
                                  init=init, owner="block")
        return JacobiShared(grids=(grid_a, grid_b), n=self.n,
                            iterations=self.iterations)

    def worker(self, api: DsmApi, proc: int,
               shared: JacobiShared) -> Generator:
        n = shared.n
        rows = block_range(n, api.nprocs, proc)
        if len(rows) == 0:
            for step in range(shared.iterations):
                yield from api.barrier(0)
            return None
        lo, hi = rows.start, rows.stop
        src, dst = shared.grids
        for step in range(shared.iterations):
            # Read own rows plus one halo row on each side.
            read_lo = max(lo - 1, 0)
            read_hi = min(hi + 1, n)
            band = yield from api.read_region(src, read_lo * n,
                                              read_hi * n)
            band = band.reshape(read_hi - read_lo, n)
            new = band.copy()
            # Interior update (global grid edges stay fixed).
            glo = max(lo, 1)
            ghi = min(hi, n - 1)
            if ghi > glo:
                b = glo - read_lo  # band-relative offset
                span = ghi - glo
                # In-place accumulation: identical IEEE operation
                # order to 0.25*(up + down + left + right), two fewer
                # temporaries per sweep.
                acc = (band[b - 1:b - 1 + span, 1:-1]
                       + band[b + 1:b + 1 + span, 1:-1])
                acc += band[b:b + span, :-2]
                acc += band[b:b + span, 2:]
                acc *= 0.25
                new[b:b + span, 1:-1] = acc
            yield from api.compute(len(rows) * n
                                   * self.cycles_per_element)
            write_band = new[lo - read_lo:hi - read_lo]
            yield from api.write_region(dst, lo * n, hi * n,
                                        write_band.ravel())
            yield from api.barrier(0)
            src, dst = dst, src
        # Return this block's checksum for verification.
        final = yield from api.read_region(src, lo * n, hi * n)
        return float(final.sum())

    def finish(self, machine: Machine, shared: JacobiShared,
               result: RunResult) -> None:
        expected = sequential_jacobi(shared.n, shared.iterations)
        checks = [r for r in result.app_result if r is not None]
        got = sum(checks)
        want = float(expected.sum())
        if abs(got - want) > 1e-6 * max(1.0, abs(want)):
            raise AssertionError(
                f"Jacobi result mismatch: got {got}, expected {want} "
                f"(protocol {result.protocol}, {result.nprocs} procs)")
