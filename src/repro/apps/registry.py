"""Application registry: name -> constructor with scaled defaults."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.apps.base import Application
from repro.apps.cholesky import Cholesky
from repro.apps.jacobi import Jacobi
from repro.apps.kvstore import KvStore
from repro.apps.tsp import Tsp
from repro.apps.water import Water

#: The paper's application suite, coarse to fine grained.  The
#: serving workload (kvstore) is deliberately not listed: the paper
#: reproduction sweeps iterate these four, while kvstore rides the
#: ``repro serve`` path (see docs/serving.md).
APP_NAMES: List[str] = ["jacobi", "tsp", "water", "cholesky"]

_FACTORIES: Dict[str, Callable[..., Application]] = {
    "jacobi": Jacobi,
    "tsp": Tsp,
    "water": Water,
    "cholesky": Cholesky,
    "kvstore": KvStore,
}


def create_app(name: str, **kwargs) -> Application:
    """Instantiate an application by name with keyword overrides."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown application {name!r}; choose from "
                         f"{sorted(_FACTORIES)}") from None
    return factory(**kwargs)
