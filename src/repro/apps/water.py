"""Water: SPLASH-style molecular dynamics (medium-grained).

The paper's medium-grained workload, standing in for SPLASH Water
(which we cannot ship): N molecules, each protected by its own lock,
iterated for a number of steps.  Every step has the structure of
Water's force/update phases:

1. *force phase*: each processor computes pairwise interactions between
   its owned molecules and the following N/2 molecules (Newton's third
   law halving), accumulates contributions locally, then adds them into
   each touched molecule's global force slot under that molecule's lock
   — the migratory, lock-per-record pattern the hybrid protocol loves;
2. *update phase* (after a barrier): each owner integrates its own
   molecules' positions from the accumulated forces.

Molecule records are a few words, so dozens share a page: heavy false
sharing, exactly as in the paper ("the relatively small size of the
molecule structure in comparison with the size of a page... creates a
large amount of false sharing").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List

import numpy as np

from repro.apps.base import Application, block_range
from repro.core.api import DsmApi
from repro.core.machine import Machine
from repro.core.metrics import RunResult

#: Cycles per pairwise interaction evaluated (calibrated to the paper's
#: ~19K cycles between off-node synchronizations at 16 processors).
CYCLES_PER_PAIR = 110.0
#: Cycles to integrate one molecule's position.
CYCLES_PER_UPDATE = 260.0

#: Words per molecule record in the force/position arrays (3 coordinates
#: plus padding; small enough that many molecules share one page).
MOL_WORDS = 4

#: Lock ids 0..nmols-1 are the per-molecule locks.
BOX = 100.0


def initial_positions(nmols: int, seed: int = 11) -> np.ndarray:
    rng = np.random.RandomState(seed)
    return rng.uniform(0.0, BOX, size=(nmols, 3))


def pair_force(pos_i: np.ndarray, pos_j: np.ndarray,
               cutoff: float) -> np.ndarray:
    """Soft inverse-square interaction with a spherical cutoff, with
    minimum-image wraparound (periodic box).

    The force tapers continuously to zero at the cutoff so that the
    last-bit position differences caused by parallel accumulation
    order cannot flip a pair in or out of range discontinuously —
    keeping parallel runs bit-comparable to the sequential oracle."""
    delta = pos_i - pos_j
    delta -= BOX * np.round(delta / BOX)
    dist2 = float((delta ** 2).sum())
    cutoff2 = cutoff * cutoff
    if dist2 >= cutoff2 or dist2 == 0.0:
        return np.zeros(3)
    taper = 1.0 - dist2 / cutoff2
    return delta / (dist2 + 1.0) * taper


def sequential_forces(positions: np.ndarray,
                      cutoff: float) -> np.ndarray:
    """Oracle for one force phase over all pairs (i, i+1..i+n/2)."""
    n = len(positions)
    half = n // 2
    forces = np.zeros((n, 3))
    for i in range(n):
        for k in range(1, half + 1):
            j = (i + k) % n
            if n % 2 == 0 and k == half and i >= j:
                continue  # count the diametric pair only once
            f = pair_force(positions[i], positions[j], cutoff)
            forces[i] += f
            forces[j] -= f
    return forces


@dataclass
class WaterShared:
    pos_seg: object
    force_seg: object
    nmols: int
    steps: int
    cutoff: float


class Water(Application):
    """Molecular dynamics (paper: 288 molecules, 2 steps)."""

    name = "water"

    def __init__(self, nmols: int = 64, steps: int = 2,
                 cutoff: float = BOX / 2, seed: int = 11,
                 cycles_per_pair: float = CYCLES_PER_PAIR) -> None:
        if nmols < 4:
            raise ValueError("need at least 4 molecules")
        self.nmols = nmols
        self.steps = steps
        self.cutoff = cutoff
        self.seed = seed
        self.cycles_per_pair = cycles_per_pair
        self.positions = initial_positions(nmols, seed)

    def setup(self, machine: Machine) -> WaterShared:
        nwords = self.nmols * MOL_WORDS
        pos_init = np.zeros(nwords)
        for i in range(self.nmols):
            pos_init[i * MOL_WORDS:i * MOL_WORDS + 3] = \
                self.positions[i]
        pos_seg = machine.allocate("water_pos", nwords, init=pos_init,
                                   owner="block")
        force_seg = machine.allocate("water_force", nwords,
                                     init=np.zeros(nwords),
                                     owner="block")
        # Entry-consistency annotations: molecule i's lock guards its
        # force record (used only by the 'ec' protocol).
        for i in range(self.nmols):
            machine.bind_lock(i, force_seg, i * MOL_WORDS,
                              i * MOL_WORDS + 3)
        return WaterShared(pos_seg=pos_seg, force_seg=force_seg,
                           nmols=self.nmols, steps=self.steps,
                           cutoff=self.cutoff)

    def worker(self, api: DsmApi, proc: int,
               shared: WaterShared) -> Generator:
        n = shared.nmols
        half = n // 2
        owned = block_range(n, api.nprocs, proc)
        checksum = 0.0
        for step in range(shared.steps):
            # ---- force phase -------------------------------------------------
            # Read every position we will interact with (the whole
            # array: with a half-box cutoff most molecules interact).
            pos_words = yield from api.read_region(
                shared.pos_seg, 0, n * MOL_WORDS)
            positions = pos_words.reshape(n, MOL_WORDS)[:, :3]
            local: Dict[int, np.ndarray] = {}
            pairs = 0
            for i in owned:
                for k in range(1, half + 1):
                    j = (i + k) % n
                    if n % 2 == 0 and k == half and i >= j:
                        continue
                    force = pair_force(positions[i], positions[j],
                                       shared.cutoff)
                    pairs += 1
                    if force.any():
                        local.setdefault(i, np.zeros(3))
                        local.setdefault(j, np.zeros(3))
                        local[i] += force
                        local[j] -= force
            yield from api.compute(pairs * self.cycles_per_pair)
            # Fold local accumulations into the global force array,
            # one molecule lock at a time (migratory sharing).
            for mol in sorted(local):
                base = mol * MOL_WORDS
                yield from api.acquire(mol)
                current = yield from api.read_region(
                    shared.force_seg, base, base + 3)
                yield from api.write_region(
                    shared.force_seg, base, base + 3,
                    current + local[mol])
                yield from api.release(mol)
            yield from api.barrier(0)
            # ---- update phase ------------------------------------------------
            for i in owned:
                base = i * MOL_WORDS
                force = yield from api.read_region(shared.force_seg,
                                                   base, base + 3)
                pos = yield from api.read_region(shared.pos_seg,
                                                 base, base + 3)
                new_pos = (pos + 0.01 * force) % BOX
                yield from api.write_region(shared.pos_seg, base,
                                            base + 3, new_pos)
                yield from api.write_region(shared.force_seg, base,
                                            base + 3, np.zeros(3))
                # Newton's third law makes the plain sum cancel to ~0,
                # so checksum absolute magnitudes instead.
                checksum += float(np.abs(force).sum())
            yield from api.compute(len(owned) * CYCLES_PER_UPDATE)
            yield from api.barrier(1)
        return checksum

    def finish(self, machine: Machine, shared: WaterShared,
               result: RunResult) -> None:
        """Replay the run sequentially and compare force checksums."""
        positions = self.positions.copy()
        expected = 0.0
        for _step in range(shared.steps):
            forces = sequential_forces(positions, shared.cutoff)
            expected += float(np.abs(forces).sum())
            positions = (positions + 0.01 * forces) % BOX
        got = sum(result.app_result)
        if abs(got - expected) > 1e-6 * max(1.0, abs(expected)):
            raise AssertionError(
                f"Water force checksum mismatch: got {got}, expected "
                f"{expected} (protocol {result.protocol}, "
                f"{result.nprocs} procs)")
