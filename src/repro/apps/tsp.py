"""TSP: branch-and-bound traveling salesman over a shared tour queue.

The paper's second coarse-grained workload.  Structure follows the
description in sections 5.1 and 6.2:

- a global queue of partial tours, protected by one lock; an acquirer
  holds the queue lock while it checks the topmost tour's promise and
  keeps popping until it finds a promising one;
- a global minimum tour length whose *read is not synchronized*: a
  processor prunes against a possibly stale minimum and only acquires
  the minimum lock (re-checking) when it believes it found a better
  tour.  Under the eager protocols each release pushes the fresh
  minimum to all cachers, so pruning is tighter and fewer tours are
  explored — the effect that makes eager TSP beat lazy TSP in the
  paper (Figure 10).

Partial tours up to ``queue_depth`` cities are expanded through the
queue; deeper suffixes are solved locally with recursive
branch-and-bound, charging compute cycles per node visited.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.apps.base import Application
from repro.core.api import DsmApi
from repro.core.machine import Machine
from repro.core.metrics import RunResult

#: Compute cycles charged per branch-and-bound node visited.
CYCLES_PER_NODE = 120.0
#: Cycles to evaluate one partial tour's promise at the queue head.
CYCLES_PER_CHECK = 60.0

QUEUE_LOCK = 0
MIN_LOCK = 1


def city_coordinates(ncities: int, seed: int = 42) -> np.ndarray:
    rng = np.random.RandomState(seed)
    return rng.uniform(0.0, 100.0, size=(ncities, 2))


def distance_matrix(coords: np.ndarray) -> np.ndarray:
    delta = coords[:, None, :] - coords[None, :, :]
    return np.sqrt((delta ** 2).sum(axis=2))


def sequential_tsp(dist: np.ndarray) -> float:
    """Oracle: exact branch-and-bound from city 0."""
    n = len(dist)
    best = [float("inf")]

    def recurse(path: List[int], length: float, visited: int) -> None:
        if length >= best[0]:
            return
        if len(path) == n:
            best[0] = min(best[0], length + dist[path[-1], 0])
            return
        last = path[-1]
        order = sorted(range(n), key=lambda c: dist[last, c])
        for city in order:
            if not visited & (1 << city):
                recurse(path + [city], length + dist[last, city],
                        visited | (1 << city))

    recurse([0], 0.0, 1)
    return best[0]


@dataclass
class TspShared:
    dist_seg: object
    queue_seg: object
    min_seg: object
    ncities: int
    queue_depth: int
    slot_words: int
    max_slots: int
    dist: np.ndarray  # workers also receive it read-only for setup


class Tsp(Application):
    """Branch-and-bound TSP (paper: 18 cities; default scaled to 10)."""

    name = "tsp"

    def __init__(self, ncities: int = 10, queue_depth: int = 3,
                 seed: int = 42,
                 cycles_per_node: float = CYCLES_PER_NODE) -> None:
        if not 3 <= ncities <= 20:
            raise ValueError("ncities must be in [3, 20]")
        self.ncities = ncities
        self.queue_depth = min(queue_depth, ncities - 1)
        self.seed = seed
        self.cycles_per_node = cycles_per_node
        self.dist = distance_matrix(city_coordinates(ncities, seed))

    def setup(self, machine: Machine) -> TspShared:
        n = self.ncities
        # Tour slot: [num_cities, length, city0..city_{depth-1}]
        slot_words = 2 + self.queue_depth
        max_slots = 4 * (math.factorial(self.queue_depth) * n ** 2
                         ) // n + 64
        dist_seg = machine.allocate("tsp_dist", n * n,
                                    init=self.dist.ravel())
        # Queue header (slot 0 of its own page): [count]
        queue_seg = machine.allocate("tsp_queue",
                                     64 + max_slots * slot_words,
                                     init=np.zeros(64 + max_slots
                                                   * slot_words))
        min_seg = machine.allocate("tsp_min", 16,
                                   init=np.full(16, 1e18))
        # Entry-consistency annotations ('ec' protocol only).
        machine.bind_lock(QUEUE_LOCK, queue_seg)
        machine.bind_lock(MIN_LOCK, min_seg)
        return TspShared(dist_seg=dist_seg, queue_seg=queue_seg,
                         min_seg=min_seg, ncities=n,
                         queue_depth=self.queue_depth,
                         slot_words=slot_words, max_slots=max_slots,
                         dist=self.dist)

    # -- queue helpers (caller must hold QUEUE_LOCK) ---------------------

    @staticmethod
    def _slot_base(shared: TspShared, index: int) -> int:
        return 64 + index * shared.slot_words

    def _push_tour(self, api: DsmApi, shared: TspShared,
                   tour: List[int], length: float) -> Generator:
        count = yield from api.read(shared.queue_seg, 0)
        index = int(count)
        if index >= shared.max_slots:
            raise RuntimeError("TSP queue overflow; raise max_slots")
        base = self._slot_base(shared, index)
        record = np.zeros(shared.slot_words)
        record[0] = len(tour)
        record[1] = length
        record[2:2 + len(tour)] = tour
        yield from api.write_region(shared.queue_seg, base,
                                    base + shared.slot_words, record)
        yield from api.write(shared.queue_seg, 0, index + 1)
        # Every queued tour is an outstanding work item (word 1).
        outstanding = yield from api.read(shared.queue_seg, 1)
        yield from api.write(shared.queue_seg, 1, outstanding + 1)

    def _finish_items(self, api: DsmApi, shared: TspShared,
                      count: int) -> Generator:
        """Mark ``count`` work items complete (queue lock held)."""
        outstanding = yield from api.read(shared.queue_seg, 1)
        yield from api.write(shared.queue_seg, 1, outstanding - count)

    def _pop_tour(self, api: DsmApi, shared: TspShared
                  ) -> Generator:
        count = yield from api.read(shared.queue_seg, 0)
        index = int(count) - 1
        if index < 0:
            return None
        base = self._slot_base(shared, index)
        record = yield from api.read_region(shared.queue_seg, base,
                                            base + shared.slot_words)
        yield from api.write(shared.queue_seg, 0, index)
        ntour = int(record[0])
        return [int(c) for c in record[2:2 + ntour]], float(record[1])

    # -- the worker --------------------------------------------------------

    def worker(self, api: DsmApi, proc: int,
               shared: TspShared) -> Generator:
        n = shared.ncities
        dist = shared.dist
        explored = 0

        if proc == 0:
            # Seed the queue with the root tour.
            yield from api.acquire(QUEUE_LOCK)
            yield from self._push_tour(api, shared, [0], 0.0)
            yield from api.release(QUEUE_LOCK)
        yield from api.barrier(0)

        while True:
            # Pop a promising tour, checking promise under the lock
            # (paper: the topmost tour is vetted while holding it).
            yield from api.acquire(QUEUE_LOCK)
            tour = None
            pruned_under_lock = 0
            while True:
                popped = yield from self._pop_tour(api, shared)
                if popped is None:
                    break
                yield from api.compute(CYCLES_PER_CHECK)
                stale_min = yield from api.read(shared.min_seg, 0)
                if popped[1] < stale_min:
                    tour = popped
                    break
                explored += 1  # pruned at the queue
                pruned_under_lock += 1
            if pruned_under_lock:
                # Pruned tours count as completed work items.
                yield from self._finish_items(api, shared,
                                              pruned_under_lock)
            outstanding = yield from api.read(shared.queue_seg, 1)
            yield from api.release(QUEUE_LOCK)
            if tour is None:
                if outstanding <= 0:
                    break  # queue drained and nobody is expanding
                # Others may still push children: back off and retry.
                yield from api.compute(2000)
                continue
            path, length = tour
            if len(path) < shared.queue_depth:
                # Expand one level back into the queue.
                children = []
                last = path[-1]
                for city in range(n):
                    if city not in path:
                        child_len = length + dist[last, city]
                        stale_min = yield from api.read(shared.min_seg,
                                                        0)
                        explored += 1
                        yield from api.compute(self.cycles_per_node)
                        if child_len < stale_min:
                            children.append((path + [city], child_len))
                yield from api.acquire(QUEUE_LOCK)
                for child, child_len in children:
                    yield from self._push_tour(api, shared, child,
                                               child_len)
                yield from self._finish_items(api, shared, 1)
                yield from api.release(QUEUE_LOCK)
            else:
                # Solve the suffix locally with B&B, re-reading the
                # *unsynchronized* global minimum as it goes: eager
                # protocols push fresh bounds into our copy mid-search,
                # lazy protocols leave it stale until our next acquire
                # (the paper's section 6.2 effect).
                best, visited = yield from self._solve_suffix(
                    api, shared, dist, path, length)
                explored += visited
                if best is not None:
                    # Re-check under the minimum lock before updating.
                    yield from api.acquire(MIN_LOCK)
                    current = yield from api.read(shared.min_seg, 0)
                    if best < current:
                        yield from api.write(shared.min_seg, 0, best)
                    yield from api.release(MIN_LOCK)
                yield from api.acquire(QUEUE_LOCK)
                yield from self._finish_items(api, shared, 1)
                yield from api.release(QUEUE_LOCK)
        yield from api.barrier(1)
        final = yield from api.read(shared.min_seg, 0)
        return {"min": final, "explored": explored}

    #: Search nodes between refreshes of the (unsynchronized) bound.
    BOUND_REFRESH_NODES = 32

    def _solve_suffix(self, api: DsmApi, shared: TspShared,
                      dist: np.ndarray, path: List[int],
                      length: float) -> Generator:
        """Finish a partial tour with iterative depth-first B&B.

        Every :data:`BOUND_REFRESH_NODES` visited nodes, the search
        charges its computation and re-reads the global minimum
        without synchronization, so the pruning bound is exactly as
        fresh as the protocol keeps the local page copy.  Returns
        (best length found or None, nodes visited)."""
        n = len(dist)
        bound = yield from api.read(shared.min_seg, 0)
        best: Optional[float] = None
        visited = 0
        mask = 0
        for city in path:
            mask |= 1 << city
        stack: List[Tuple[int, float, int]] = [(path[-1], length, mask)]
        # Depth-first over (last city, length, visited-mask) states;
        # children pushed nearest-first so they pop nearest-first.
        while stack:
            last, plen, pmask = stack.pop()
            visited += 1
            if visited % self.BOUND_REFRESH_NODES == 0:
                yield from api.compute(self.BOUND_REFRESH_NODES
                                       * self.cycles_per_node)
                fresh = yield from api.read(shared.min_seg, 0)
                bound = min(bound, fresh)
            if plen >= bound:
                continue
            if pmask == (1 << n) - 1:
                total = plen + dist[last, 0]
                if total < bound:
                    bound = total
                    best = total
                continue
            children = sorted(
                (c for c in range(n) if not pmask & (1 << c)),
                key=lambda c: dist[last, c], reverse=True)
            for city in children:
                stack.append((city, plen + dist[last, city],
                              pmask | (1 << city)))
        yield from api.compute(
            (visited % self.BOUND_REFRESH_NODES)
            * self.cycles_per_node)
        return best, visited

    def finish(self, machine: Machine, shared: TspShared,
               result: RunResult) -> None:
        expected = sequential_tsp(shared.dist)
        got = min(r["min"] for r in result.app_result)
        if abs(got - expected) > 1e-9 * max(1.0, expected):
            raise AssertionError(
                f"TSP optimum mismatch: got {got}, expected {expected} "
                f"(protocol {result.protocol}, {result.nprocs} procs)")

    def total_explored(self, result: RunResult) -> int:
        return sum(r["explored"] for r in result.app_result)
