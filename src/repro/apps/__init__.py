"""The paper's application suite (Jacobi, TSP, Water, Cholesky) plus
the open-loop serving workload (KvStore, see docs/serving.md)."""

from repro.apps.base import (Application, EventDrivenApplication,
                             block_range)
from repro.apps.cholesky import Cholesky
from repro.apps.jacobi import Jacobi
from repro.apps.kvstore import KvStore
from repro.apps.registry import APP_NAMES, create_app
from repro.apps.tsp import Tsp
from repro.apps.water import Water

__all__ = [
    "APP_NAMES", "Application", "Cholesky", "EventDrivenApplication",
    "Jacobi", "KvStore", "Tsp", "Water", "block_range", "create_app",
]
