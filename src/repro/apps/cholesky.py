"""Cholesky: parallel sparse factorization with a task queue.

The paper's fine-grained workload, standing in for SPLASH Cholesky on
`bcsstk14` (which we cannot ship): a right-looking (fan-out) sparse
Cholesky factorization of a synthetic 2-D grid Laplacian — a classic
sparse SPD matrix with qualitatively similar structure.  Work is
distributed through a lock-protected queue of *ready columns*; every
column is additionally protected by its own lock while updates are
scattered into it.  The resulting synchronization rate (a few thousand
cycles of computation per lock operation) is what limits the paper's
Cholesky speedup to ~1.3 on any protocol (Figure 16).

Algorithm: when column j's remaining-update counter reaches zero it is
pushed onto the ready queue; a worker pops it, scales it (cdiv), then
applies cmod(t, j) to every column t in its structure, decrementing
t's counter.  The factor's fill pattern is computed symbolically up
front (elimination-tree based), exactly as SPLASH Cholesky separates
symbolic from numeric factorization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Tuple

import numpy as np

from repro.apps.base import Application
from repro.core.api import DsmApi
from repro.core.machine import Machine
from repro.core.metrics import RunResult

#: Compute cycles: per value scaled in a cdiv / per multiply-add in a
#: cmod (fine grain -> ~4K cycles between off-node synchronizations).
CYCLES_PER_CDIV_ENTRY = 40.0
CYCLES_PER_CMOD_ENTRY = 16.0
BACKOFF_CYCLES = 1500.0

QUEUE_LOCK = 0
COLUMN_LOCK_BASE = 1


def grid_laplacian(k: int) -> np.ndarray:
    """Dense representation of the k*k 2-D grid Laplacian (SPD)."""
    n = k * k
    a = np.zeros((n, n))
    for row in range(k):
        for col in range(k):
            i = row * k + col
            a[i, i] = 4.0 + 0.1 * (i % 7)  # break symmetry of values
            for dr, dc in ((0, 1), (1, 0)):
                r2, c2 = row + dr, col + dc
                if r2 < k and c2 < k:
                    j = r2 * k + c2
                    a[i, j] = a[j, i] = -1.0
    return a


def symbolic_factorization(a: np.ndarray) -> List[List[int]]:
    """Fill pattern of L: ``structs[j]`` is the sorted list of row
    indices below the diagonal of column j (elimination-tree fill)."""
    n = len(a)
    structs = [set(np.nonzero(a[j + 1:, j])[0] + j + 1)
               for j in range(n)]
    for j in range(n):
        if structs[j]:
            parent = min(structs[j])
            structs[parent] |= structs[j] - {parent}
    return [sorted(s) for s in structs]


def sequential_cholesky(a: np.ndarray) -> np.ndarray:
    """Oracle: dense lower-triangular factor."""
    n = len(a)
    l = a.copy()
    for j in range(n):
        l[j, j] = np.sqrt(l[j, j])
        l[j + 1:, j] /= l[j, j]
        for t in range(j + 1, n):
            if l[t, j] != 0.0:
                l[t:, t] -= l[t, j] * l[t:, j]
    return np.tril(l)


@dataclass
class CholeskyShared:
    cols_seg: object
    meta_seg: object  # [0]=queue count, [1]=done count, [2:]=counters
    queue_seg: object
    structs: List[List[int]]
    col_ptr: List[int]
    n: int
    a: np.ndarray


class Cholesky(Application):
    """Sparse factorization of the k*k grid Laplacian (paper input:
    bcsstk14, n=1806; default scaled to k=6, n=36)."""

    name = "cholesky"

    def __init__(self, k: int = 6, cycle_scale: float = 1.0) -> None:
        if k < 2:
            raise ValueError("grid must be at least 2x2")
        self.k = k
        self.cycle_scale = cycle_scale
        self.a = grid_laplacian(k)
        self.n = k * k
        self.structs = symbolic_factorization(self.a)

    def setup(self, machine: Machine) -> CholeskyShared:
        n = self.n
        # Column slots: diagonal value followed by the structure rows.
        col_ptr = [0]
        for j in range(n):
            col_ptr.append(col_ptr[-1] + 1 + len(self.structs[j]))
        col_init = np.zeros(col_ptr[-1])
        for j in range(n):
            base = col_ptr[j]
            col_init[base] = self.a[j, j]
            for slot, row in enumerate(self.structs[j]):
                col_init[base + 1 + slot] = self.a[row, j]
        cols_seg = machine.allocate("chol_cols", col_ptr[-1],
                                    init=col_init, owner="striped")
        # Remaining-update counters.
        updates = np.zeros(n)
        for j in range(n):
            for t in self.structs[j]:
                updates[t] += 1
        meta_init = np.zeros(2 + n)
        meta_init[2:] = updates
        meta_seg = machine.allocate("chol_meta", 2 + n, init=meta_init)
        queue_seg = machine.allocate("chol_queue", n,
                                     init=np.zeros(n))
        # Entry-consistency annotations ('ec' protocol only): column
        # locks guard their column slots; the queue lock guards the
        # queue and the counters.
        for j in range(n):
            machine.bind_lock(COLUMN_LOCK_BASE + j, cols_seg,
                              col_ptr[j], col_ptr[j + 1])
        machine.bind_lock(QUEUE_LOCK, queue_seg)
        machine.bind_lock(QUEUE_LOCK, meta_seg)
        return CholeskyShared(cols_seg=cols_seg, meta_seg=meta_seg,
                              queue_seg=queue_seg, structs=self.structs,
                              col_ptr=col_ptr, n=n, a=self.a)

    # -- queue helpers (caller must hold QUEUE_LOCK) ------------------------

    @staticmethod
    def _push_ready(api: DsmApi, shared: CholeskyShared,
                    column: int) -> Generator:
        count = yield from api.read(shared.meta_seg, 0)
        yield from api.write(shared.queue_seg, int(count), column)
        yield from api.write(shared.meta_seg, 0, count + 1)

    @staticmethod
    def _pop_ready(api: DsmApi, shared: CholeskyShared) -> Generator:
        count = yield from api.read(shared.meta_seg, 0)
        if count < 1:
            return None
        column = yield from api.read(shared.queue_seg, int(count) - 1)
        yield from api.write(shared.meta_seg, 0, count - 1)
        return int(column)

    # -- the worker -----------------------------------------------------------

    def worker(self, api: DsmApi, proc: int,
               shared: CholeskyShared) -> Generator:
        result = yield from self.worker_thread(api, proc, 0, shared)
        return result

    def worker_thread(self, api: DsmApi, proc: int, thread: int,
                      shared: CholeskyShared) -> Generator:
        """One worker thread.  Thread 0 of each node performs the
        barriers and seeding/gathering; extra threads (the paper's
        multithreading extension, section 8) just pull tasks, hiding
        lock-acquisition latency behind each other's computation."""
        n = shared.n

        if proc == 0 and thread == 0:
            # Seed: columns with no incoming updates are ready.
            leaf_columns = [j for j in range(n)
                            if not any(j in shared.structs[k2]
                                       for k2 in range(j))]
            yield from api.acquire(QUEUE_LOCK)
            for j in leaf_columns:
                yield from self._push_ready(api, shared, j)
            yield from api.release(QUEUE_LOCK)
        if thread == 0:
            yield from api.barrier(0)

        columns_done = yield from self._work_loop(api, shared)

        result = None
        if thread == 0:
            yield from api.barrier(1)
            if proc == 0:
                # Gather the factor through the DSM for verification.
                values = yield from api.read_region(
                    shared.cols_seg, 0, shared.col_ptr[-1])
                result = values.tolist()
        return {"columns": columns_done, "factor": result}

    def _work_loop(self, api: DsmApi,
                   shared: CholeskyShared) -> Generator:
        n = shared.n
        columns_done = 0
        while True:
            yield from api.acquire(QUEUE_LOCK)
            column = yield from self._pop_ready(api, shared)
            done = yield from api.read(shared.meta_seg, 1)
            yield from api.release(QUEUE_LOCK)
            if column is None:
                if int(done) >= n:
                    break
                yield from api.compute(BACKOFF_CYCLES)
                continue
            yield from self._factor_column(api, shared, column)
            columns_done += 1
        return columns_done

    def _factor_column(self, api: DsmApi, shared: CholeskyShared,
                       j: int) -> Generator:
        structs = shared.structs
        base = shared.col_ptr[j]
        width = 1 + len(structs[j])
        # cdiv(j): scale the column by the square root of its diagonal.
        yield from api.acquire(COLUMN_LOCK_BASE + j)
        col = yield from api.read_region(shared.cols_seg, base,
                                         base + width)
        diag = np.sqrt(col[0])
        scaled = col.copy()
        scaled[0] = diag
        scaled[1:] = col[1:] / diag
        yield from api.write_region(shared.cols_seg, base, base + width,
                                    scaled)
        yield from api.release(COLUMN_LOCK_BASE + j)
        yield from api.compute(width * CYCLES_PER_CDIV_ENTRY
                               * self.cycle_scale)

        # cmod(t, j) for every t in struct(j).
        ready: List[int] = []
        rows = structs[j]
        for slot, t in enumerate(rows):
            lj_t = scaled[1 + slot]
            # Overlap of struct(j) (below t) with column t's slots.
            t_base = shared.col_ptr[t]
            t_rows = structs[t]
            t_width = 1 + len(t_rows)
            yield from api.acquire(COLUMN_LOCK_BASE + t)
            t_col = yield from api.read_region(
                shared.cols_seg, t_base, t_base + t_width)
            t_col[0] -= lj_t * lj_t
            index_of = {row: 1 + s for s, row in enumerate(t_rows)}
            touched = 1
            for s2 in range(slot + 1, len(rows)):
                row = rows[s2]
                t_col[index_of[row]] -= lj_t * scaled[1 + s2]
                touched += 1
            yield from api.write_region(
                shared.cols_seg, t_base, t_base + t_width, t_col)
            remaining = yield from api.read(shared.meta_seg, 2 + t)
            yield from api.write(shared.meta_seg, 2 + t, remaining - 1)
            yield from api.release(COLUMN_LOCK_BASE + t)
            yield from api.compute(touched * CYCLES_PER_CMOD_ENTRY
                                   * self.cycle_scale)
            if int(remaining) - 1 == 0:
                ready.append(t)
        yield from api.acquire(QUEUE_LOCK)
        for t in ready:
            yield from self._push_ready(api, shared, t)
        done = yield from api.read(shared.meta_seg, 1)
        yield from api.write(shared.meta_seg, 1, done + 1)
        yield from api.release(QUEUE_LOCK)

    def finish(self, machine: Machine, shared: CholeskyShared,
               result: RunResult) -> None:
        factor = result.app_result[0]["factor"]
        if factor is None:
            raise AssertionError("proc 0 returned no factor")
        n = shared.n
        l = np.zeros((n, n))
        for j in range(n):
            base = shared.col_ptr[j]
            l[j, j] = factor[base]
            for slot, row in enumerate(shared.structs[j]):
                l[row, j] = factor[base + 1 + slot]
        reconstructed = l @ l.T
        if not np.allclose(reconstructed, shared.a, atol=1e-8):
            worst = np.abs(reconstructed - shared.a).max()
            raise AssertionError(
                f"Cholesky factor wrong: max |LL^T - A| = {worst} "
                f"(protocol {result.protocol}, {result.nprocs} procs)")
        total = sum(r["columns"] for r in result.app_result)
        if total != n:
            raise AssertionError(
                f"factored {total} columns, expected {n}")
