"""Sharded key-value store served out of the simulated DSM.

The store is an ordinary shared segment: ``value_words`` words per
key, keys block-partitioned into ``shards``, one lock per shard.  A
``put`` takes its shard lock, bumps the key's write counter (word 0
of the value), rewrites the payload words, and releases — so under
LI/LU/LH it pays lock transfer plus diff traffic, under EI/SC it pays
invalidations, exactly like the paper's kernels.  A ``get`` reads the
value unsynchronized, the same deliberately-stale idiom TSP uses for
its global minimum (paper section 6.2): protocol choice decides how
stale, and how expensive, those reads are.

Verification is order-independent: the counter at each key must equal
the number of ``put`` requests the schedule aimed at it (payload
bytes are exercised but not checked — concurrent last-write-wins
payloads are legitimately protocol-dependent).  The epilogue reads
the counters *under the shard locks* on one node, which doubles as
the entry-consistency ('ec') path for fetching bound pages.
"""

from __future__ import annotations

from typing import Generator, List

from repro.apps.base import EventDrivenApplication, block_range
from repro.core.api import DsmApi
from repro.core.machine import Machine
from repro.core.metrics import RunResult
from repro.obs import install_serve
from repro.serve.workload import (generate_requests, node_schedules,
                                  write_counts)

#: Compute charged per request before any DSM work (request parsing,
#: hashing — the non-shared part of service time).
DEFAULT_CYCLES_PER_REQUEST = 400.0


class KvStore(EventDrivenApplication):
    """DSM-backed key-value serving workload (open loop)."""

    name = "kvstore"

    def __init__(self, nkeys: int = 64, value_words: int = 16,
                 shards: int = 8, requests: int = 400,
                 rate_rps: float = 40_000.0,
                 read_fraction: float = 0.9, zipf_s: float = 0.99,
                 nclients: int = 1_000_000,
                 arrival: str = "poisson",
                 cycles_per_request: float =
                 DEFAULT_CYCLES_PER_REQUEST) -> None:
        self.nkeys = int(nkeys)
        self.value_words = int(value_words)
        self.shards = max(1, min(int(shards), self.nkeys))
        self.requests = int(requests)
        self.rate_rps = float(rate_rps)
        self.read_fraction = float(read_fraction)
        self.zipf_s = float(zipf_s)
        self.nclients = int(nclients)
        self.arrival = arrival
        self.cycles_per_request = float(cycles_per_request)

    def _shard_of(self, key: int) -> int:
        per = -(-self.nkeys // self.shards)
        return key // per

    def setup(self, machine: Machine):
        # Serve metrics are opt-in (SERVE_CATALOG): installing here
        # keeps the four paper kernels' dumps byte-identical.
        install_serve(machine.obs.registry)
        store = machine.allocate(
            "kvstore", self.nkeys * self.value_words, owner="block")
        for shard in range(self.shards):
            keys = block_range(self.nkeys, self.shards, shard)
            machine.bind_lock(shard, store,
                              keys.start * self.value_words,
                              keys.stop * self.value_words)
        schedule = generate_requests(
            nkeys=self.nkeys, requests=self.requests,
            rate_rps=self.rate_rps,
            read_fraction=self.read_fraction, zipf_s=self.zipf_s,
            nclients=self.nclients, arrival=self.arrival,
            seed=machine.config.seed)
        return {
            "store": store,
            "schedules": node_schedules(schedule,
                                        machine.config.nprocs),
            "expected": write_counts(schedule, self.nkeys),
            "observed": None,
        }

    def schedule(self, proc: int, shared):
        return shared["schedules"][proc]

    def handle_request(self, api: DsmApi, proc: int, shared,
                       request) -> Generator:
        store = shared["store"]
        base = request.key * self.value_words
        yield from api.compute(self.cycles_per_request)
        if request.op == "put":
            shard = self._shard_of(request.key)
            yield from api.acquire(shard)
            count = yield from api.read(store, base)
            yield from api.write(store, base, count + 1.0)
            if self.value_words > 1:
                yield from api.write_region(
                    store, base + 1, base + self.value_words,
                    float(request.req_id + 1))
            yield from api.release(shard)
        else:
            # Unsynchronized read: fine for a cache-style get, and
            # exactly how protocol staleness becomes visible.
            yield from api.read_region(store, base,
                                       base + self.value_words)

    def epilogue(self, api: DsmApi, proc: int, shared) -> Generator:
        yield from api.barrier(0)
        if proc != 0:
            return
        store = shared["store"]
        observed: List[int] = []
        for shard in range(self.shards):
            keys = block_range(self.nkeys, self.shards, shard)
            yield from api.acquire(shard)
            for key in keys:
                count = yield from api.read(
                    store, key * self.value_words)
                observed.append(int(count))
            yield from api.release(shard)
        shared["observed"] = observed

    def finish(self, machine: Machine, shared,
               result: RunResult) -> None:
        observed = shared["observed"]
        expected = shared["expected"]
        if observed != expected:
            bad = [(key, got, want) for key, (got, want)
                   in enumerate(zip(observed or [], expected))
                   if got != want]
            raise AssertionError(
                f"kvstore write counters diverged from the schedule "
                f"(key, got, want): {bad[:8]}")
