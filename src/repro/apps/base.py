"""Application framework.

An :class:`Application` bundles everything one benchmark program needs:
segment allocation (``setup``), the per-processor generator
(``worker``), and post-run verification (``finish``).  Applications do
*real* computation on the values stored in the simulated DSM, so a
protocol bug shows up as a wrong answer, not just odd timing.

Per-application compute-cost constants are calibrated so that the
cycles between off-node synchronization operations land near the grain
sizes the paper reports for 16 processors (Jacobi ~324K, TSP ~189K,
Water ~19K, Cholesky ~4K cycles).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generator, Optional

from repro.core.api import DsmApi
from repro.core.machine import Machine
from repro.core.metrics import RunResult


class Application(ABC):
    """One runnable workload."""

    name = "app"

    @abstractmethod
    def setup(self, machine: Machine):
        """Allocate shared segments; returns the shared-state handle
        passed to every worker."""

    @abstractmethod
    def worker(self, api: DsmApi, proc: int, shared) -> Generator:
        """The program one processor runs (a generator)."""

    def finish(self, machine: Machine, shared,
               result: RunResult) -> None:
        """Hook for post-run checks; default does nothing."""

    def verify(self, result: RunResult) -> bool:
        """Check the parallel answer against a sequential oracle."""
        return True


class EventDrivenApplication(Application):
    """A workload driven by timed request arrivals, not loops.

    The paper's kernels own the clock: they compute until done.  A
    *service* does not — requests arrive at scheduled simulated times
    (open loop: arrivals never wait for completions), so the worker
    here is a pump, written once: sleep until the next scheduled
    arrival, serve it through the DSM, account its latency against
    the *scheduled* time so queueing delay is charged to the tail.

    Subclasses implement :meth:`schedule` (the per-node request list,
    ascending by arrival) and :meth:`handle_request` (a generator:
    the DSM work one request does).  The existing loop-structured
    apps are untouched — this is a sibling, not a rewrite, which is
    what keeps the 18 golden dumps byte-identical.
    """

    #: Serve metrics (serve.*) are bound lazily per worker; apps that
    #: never install the catalogue simply skip emission.
    @abstractmethod
    def schedule(self, proc: int, shared):
        """This node's requests, ascending by ``arrival_us``.  Each
        entry needs ``req_id``/``key``/``op``/``arrival_us``
        attributes (:class:`repro.serve.workload.Request`)."""

    @abstractmethod
    def handle_request(self, api: DsmApi, proc: int, shared,
                       request) -> Generator:
        """Serve one request through the DSM (a generator)."""

    def epilogue(self, api: DsmApi, proc: int, shared) -> Generator:
        """Runs after this node's last request (default: nothing).
        Use it for verification reads that must see peers' writes."""
        return
        yield  # pragma: no cover - makes this a generator

    def worker(self, api: DsmApi, proc: int, shared) -> Generator:
        """The pump: wait for each arrival, serve it, account it."""
        config = api.config
        registry = api._node.machine.obs.registry
        if "serve.requests_total" in registry:
            requests_total = registry.get("serve.requests_total")
            latency_hist = registry.get(
                "serve.request_latency_cycles").labels()
            queue_hist = registry.get(
                "serve.queue_wait_cycles").labels()
        else:
            requests_total = latency_hist = queue_hist = None
        sampler = api._node.machine.sampler
        records = []
        for request in self.schedule(proc, shared):
            arrival = config.us_to_cycles(request.arrival_us)
            if arrival > api.now:
                yield arrival - api.now
            started = api.now
            tracer = api.tracer
            if tracer:
                tracer.emit("req.arrive", req=request.req_id,
                            node=proc, key=request.key,
                            op=request.op, arrival=arrival)
            yield from self.handle_request(api, proc, shared, request)
            done = api.now
            latency = done - arrival
            if sampler is not None:
                sampler.record_request(latency)
            if tracer:
                tracer.emit("req.done", req=request.req_id,
                            node=proc, key=request.key,
                            op=request.op, latency_cycles=latency)
            if requests_total is not None:
                requests_total.labels(op=request.op).inc()
                latency_hist.observe(latency)
                queue_hist.observe(started - arrival)
            records.append([request.req_id, request.key,
                            1 if request.op == "put" else 0,
                            arrival, started, done])
        yield from self.epilogue(api, proc, shared)
        return {"proc": proc, "requests": records}


def block_range(total: int, nprocs: int, proc: int) -> range:
    """Contiguous block partition of ``range(total)`` (last block may
    be short)."""
    per = -(-total // nprocs)
    lo = min(proc * per, total)
    hi = min(lo + per, total)
    return range(lo, hi)
