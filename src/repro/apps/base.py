"""Application framework.

An :class:`Application` bundles everything one benchmark program needs:
segment allocation (``setup``), the per-processor generator
(``worker``), and post-run verification (``finish``).  Applications do
*real* computation on the values stored in the simulated DSM, so a
protocol bug shows up as a wrong answer, not just odd timing.

Per-application compute-cost constants are calibrated so that the
cycles between off-node synchronization operations land near the grain
sizes the paper reports for 16 processors (Jacobi ~324K, TSP ~189K,
Water ~19K, Cholesky ~4K cycles).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generator, Optional

from repro.core.api import DsmApi
from repro.core.machine import Machine
from repro.core.metrics import RunResult


class Application(ABC):
    """One runnable workload."""

    name = "app"

    @abstractmethod
    def setup(self, machine: Machine):
        """Allocate shared segments; returns the shared-state handle
        passed to every worker."""

    @abstractmethod
    def worker(self, api: DsmApi, proc: int, shared) -> Generator:
        """The program one processor runs (a generator)."""

    def finish(self, machine: Machine, shared,
               result: RunResult) -> None:
        """Hook for post-run checks; default does nothing."""

    def verify(self, result: RunResult) -> bool:
        """Check the parallel answer against a sequential oracle."""
        return True


def block_range(total: int, nprocs: int, proc: int) -> range:
    """Contiguous block partition of ``range(total)`` (last block may
    be short)."""
    per = -(-total // nprocs)
    lo = min(proc * per, total)
    hi = min(lo + per, total)
    return range(lo, hi)
