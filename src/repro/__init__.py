"""repro: release-consistent software DSM simulator.

Reproduction of Dwarkadas, Keleher, Cox & Zwaenepoel, "Evaluation of
Release Consistent Software Distributed Shared Memory on Emerging
Network Technology" (ISCA 1993).

Public API highlights:

- :class:`repro.MachineConfig` / :class:`repro.NetworkConfig` — the
  architectural model (processors, pages, Ethernet/ATM, overheads);
- :class:`repro.Machine` + :class:`repro.DsmApi` — build and program a
  simulated DSM cluster;
- :func:`repro.run_app` / :func:`repro.speedup_curve` — run the bundled
  applications (Jacobi, TSP, Water, Cholesky) under any protocol:
  the paper's five ('lh', 'li', 'lu', 'ei', 'eu'), the Ivy-style
  sequentially-consistent baseline ('sc'), or Midway-style entry
  consistency ('ec');
- :mod:`repro.obs` — the unified metrics registry and event tracer
  every run carries (see ``docs/observability.md``);
- :mod:`repro.trace` — record, persist, and replay operation traces.
"""

from repro.core import (DsmApi, Machine, MachineConfig, NetworkConfig,
                        NodeMetrics, OverheadConfig, RunResult, run_app,
                        run_protocols, sequential_baseline,
                        speedup_curve)
from repro.obs import (JsonlSink, MemorySink, MetricsRegistry,
                       Observability, Tracer, read_jsonl)
from repro.protocols import (ALL_PROTOCOL_NAMES, PROTOCOL_NAMES,
                             create_protocol)

__version__ = "1.0.0"

__all__ = [
    "ALL_PROTOCOL_NAMES", "DsmApi", "JsonlSink", "Machine",
    "MachineConfig", "MemorySink", "MetricsRegistry", "NetworkConfig",
    "NodeMetrics", "Observability", "OverheadConfig", "PROTOCOL_NAMES",
    "RunResult", "Tracer", "create_protocol", "read_jsonl", "run_app",
    "run_protocols", "sequential_baseline", "speedup_curve",
    "__version__",
]
