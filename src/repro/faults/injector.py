"""The fault injector: a seeded, deterministic plan of network and
CPU faults.

Determinism discipline
----------------------
Each fault class draws from its own named substream
(``faults.drop``, ``faults.dup``, ``faults.reorder``,
``faults.delay`` — see :mod:`repro.core.rng`), and one uniform is
drawn from *every* stream for *every* transmission, whether or not
that class is enabled.  Consequences:

- two runs with the same seed and config inject identical faults;
- turning a rate from 0.0 to 0.1 flips exactly the decisions whose
  pre-drawn uniform falls under the new rate, leaving every other
  fault class untouched — so degradation studies compare like with
  like.

The injector never *hides* a loss from the accounting: every drop,
duplicate, reorder hold and injected delay is counted in the
``faults.*`` metrics, and the conservation property
``received + dropped == sent + duplicated`` is pinned by
``tests/properties/test_fault_tolerance.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.config import MachineConfig
from repro.core.rng import substream


class Decision:
    """The injector's verdict for one network transmission."""

    __slots__ = ("drop", "duplicate", "extra_delay")

    def __init__(self, drop: bool = False, duplicate: bool = False,
                 extra_delay: float = 0.0) -> None:
        self.drop = drop
        self.duplicate = duplicate
        self.extra_delay = extra_delay

    def __repr__(self) -> str:
        return (f"<Decision drop={self.drop} dup={self.duplicate} "
                f"delay={self.extra_delay:g}>")


@dataclass(frozen=True)
class CrashEvent:
    """One resolved entry of the crash plan: node ``proc`` fails at
    ``at_us``; ``down_us`` is the outage length (``None`` = crash-stop,
    the node never returns)."""

    proc: int
    at_us: float
    down_us: Optional[float]


class FaultInjector:
    """Per-transmission fault decisions plus scheduled CPU stalls."""

    def __init__(self, config: MachineConfig, obs=None) -> None:
        fc = config.faults
        self.config = config
        seed = fc.seed if fc.seed is not None else config.seed
        self._drop_rng = substream(seed, "faults.drop")
        self._dup_rng = substream(seed, "faults.dup")
        self._reorder_rng = substream(seed, "faults.reorder")
        self._delay_rng = substream(seed, "faults.delay")
        self._links = {(link.src, link.dst): link for link in fc.links}
        self.reorder_delay = config.us_to_cycles(fc.reorder_delay_us)
        self.delay_cycles = config.us_to_cycles(fc.delay_us)
        # Node-lifecycle plan, drawn eagerly at construction (same
        # pre-draw discipline as the message streams): a pure function
        # of (seed, config), never of what the run does.
        self.crash_plan: Tuple[CrashEvent, ...] = \
            self._build_crash_plan(seed)
        # Legacy-style counters, always kept (tests may run without obs).
        self.drops = 0
        self.duplicates = 0
        self.reorders = 0
        self.delay_cycles_injected = 0.0
        self.stalls = 0
        self.stall_cycles = 0.0
        self._obs = None
        if obs is not None:
            self.attach_obs(obs)

    def attach_obs(self, obs) -> None:
        from repro.obs import install_robustness
        registry = obs.registry
        install_robustness(registry)
        self._obs = {
            "drops": registry.get("faults.drops_total"),
            "dups": registry.get("faults.duplicates_total"),
            "reorders": registry.get("faults.reorders_total"),
            "delay": registry.get("faults.delay_cycles_total"),
            "stalls": registry.get("faults.stalls_total"),
            "stall_cycles": registry.get("faults.stall_cycles_total"),
        }

    # -- node-lifecycle plan --------------------------------------------

    def _build_crash_plan(self, seed) -> Tuple[CrashEvent, ...]:
        """Resolve explicit :class:`~repro.core.config.CrashSpec`
        entries plus MTTF/MTTR exponential draws into one
        time-ordered plan.

        Draw discipline: each node draws failure times from its own
        ``faults.crash.<proc>`` substream and repair times from
        ``faults.recover.<proc>``, one repair draw per failure draw
        whether or not ``crash_mttr_us`` is enabled — so switching a
        sweep from crash-recover to crash-stop (mttr 0) keeps every
        node's first crash instant in place, one node's draws never
        shift another's, and message-level fault streams are never
        consumed.  MTTF is measured from the previous repair, so a
        node's drawn crashes never overlap its own outage; a
        crash-stop draw ends that node's chain.
        """
        fc = self.config.faults
        events = [CrashEvent(spec.proc, spec.at_us, spec.down_us)
                  for spec in fc.crashes]
        for spec in fc.crashes:
            if not 0 <= spec.proc < self.config.nprocs:
                raise ValueError(
                    f"crash names processor {spec.proc}, machine has "
                    f"{self.config.nprocs}")
        if fc.crash_mttf_us:
            for proc in range(self.config.nprocs):
                crash_rng = substream(seed, f"faults.crash.{proc}")
                repair_rng = substream(seed,
                                       f"faults.recover.{proc}")
                now = 0.0
                while True:
                    ttf = -fc.crash_mttf_us * math.log1p(
                        -crash_rng.random())
                    u_repair = repair_rng.random()
                    at = now + max(ttf, 1e-9)
                    if at >= fc.crash_horizon_us:
                        break
                    down = None
                    if fc.crash_mttr_us:
                        down = max(-fc.crash_mttr_us
                                   * math.log1p(-u_repair), 1e-9)
                    events.append(CrashEvent(proc, at, down))
                    if down is None:
                        break
                    now = at + down
        return tuple(sorted(events,
                            key=lambda ev: (ev.at_us, ev.proc)))

    # -- per-transmission decisions -------------------------------------

    def rates_for(self, src: int, dst: int
                  ) -> Tuple[float, float, float, float]:
        """(drop, dup, reorder, delay) probabilities for one link."""
        fc = self.config.faults
        rates = [fc.drop_prob, fc.dup_prob, fc.reorder_prob,
                 fc.delay_prob]
        link = self._links.get((src, dst))
        if link is not None:
            overrides = (link.drop_prob, link.dup_prob,
                         link.reorder_prob, link.delay_prob)
            rates = [o if o is not None else r
                     for o, r in zip(overrides, rates)]
        return tuple(rates)

    def decide(self, message) -> Optional[Decision]:
        """Fault verdict for one transmission; ``None`` means deliver
        normally.  Always draws one uniform per fault stream so that
        enabling one class never perturbs another's sequence."""
        u_drop = self._drop_rng.random()
        u_dup = self._dup_rng.random()
        u_reorder = self._reorder_rng.random()
        u_delay = self._delay_rng.random()
        drop, dup, reorder, delay = self.rates_for(message.src,
                                                   message.dst)
        if u_drop < drop:
            self.drops += 1
            if self._obs is not None:
                self._obs["drops"].inc()
            return Decision(drop=True)
        decision = None
        extra = 0.0
        if u_reorder < reorder:
            self.reorders += 1
            extra += self.reorder_delay
            if self._obs is not None:
                self._obs["reorders"].inc()
        if u_delay < delay:
            extra += self.delay_cycles
        if extra > 0.0:
            self.delay_cycles_injected += extra
            if self._obs is not None:
                self._obs["delay"].inc(extra)
        duplicate = u_dup < dup
        if duplicate:
            self.duplicates += 1
            if self._obs is not None:
                self._obs["dups"].inc()
        if duplicate or extra > 0.0:
            decision = Decision(duplicate=duplicate, extra_delay=extra)
        return decision

    # -- CPU stalls -----------------------------------------------------

    def install_stalls(self, machine) -> None:
        """Schedule every configured stall window on the sim kernel."""
        for spec in self.config.faults.stalls:
            if not 0 <= spec.proc < self.config.nprocs:
                raise ValueError(
                    f"stall names processor {spec.proc}, machine has "
                    f"{self.config.nprocs}")
            at = self.config.us_to_cycles(spec.at_us)
            duration = self.config.us_to_cycles(spec.duration_us)
            machine.sim.schedule(at, self._stall,
                                 machine.nodes[spec.proc], duration)

    def _stall(self, node, cycles: float) -> None:
        node.stall(cycles)
        self.stalls += 1
        self.stall_cycles += cycles
        if self._obs is not None:
            self._obs["stalls"].inc()
            self._obs["stall_cycles"].inc(cycles)
