"""repro.faults — deterministic fault injection.

The paper's simulation (and the seed reproduction) assumed a perfectly
reliable, in-order network.  This package drops, duplicates, reorders,
and delays messages — per directed link or globally — and stalls node
CPUs, all from a seeded plan so every run is exactly reproducible.
The reliable transport (:mod:`repro.net.transport`) recovers delivery
on top of it; ``docs/robustness.md`` describes both.
"""

from repro.faults.injector import (CrashEvent, Decision,
                                   FaultInjector)

__all__ = ["CrashEvent", "Decision", "FaultInjector"]
