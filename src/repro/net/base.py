"""Network interface and shared statistics.

A network's single job is: given a message handed over at the current
simulated time (after the sender has already paid its software
overhead), decide when the message is delivered at the receiver, folding
in wire (serialization) time, propagation latency, and contention.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable, Optional

from repro.core.config import MachineConfig
from repro.net.message import Message
from repro.sim.engine import Simulator


@dataclass
class NetworkStats:
    """Aggregate traffic and contention accounting.

    When observability is attached (see :meth:`Network.attach_obs`)
    every record is mirrored into the metrics registry under the
    ``net.*`` names documented in docs/observability.md."""

    messages: int = 0
    bytes_sent: int = 0
    data_bytes_sent: int = 0
    busy_cycles: float = 0.0
    contention_cycles: float = 0.0
    collisions: int = 0
    _obs: Optional[dict] = field(default=None, repr=False,
                                 compare=False)

    def attach_obs(self, obs) -> None:
        # Bound children, not Metric objects: record() runs once per
        # message, so emission must be child.inc(), not a dict lookup
        # plus Metric._sole() indirection per field.
        registry = obs.registry
        self._obs = {
            "messages": registry.get("net.messages_total").labels(),
            "wire_bytes": registry.get("net.wire_bytes_total").labels(),
            "data_bytes": registry.get("net.data_bytes_total").labels(),
            "wire_cycles": registry.get("net.wire_cycles_total").labels(),
            "contention": registry.get(
                "net.contention_cycles_total").labels(),
            "wire_hist": registry.get("net.wire_cycles").labels(),
        }

    def record(self, message: Message, wire: float, waited: float) -> None:
        size = message.size_bytes
        data = message.data_bytes
        self.messages += 1
        self.bytes_sent += size
        self.data_bytes_sent += data
        self.busy_cycles += wire
        self.contention_cycles += waited
        obs = self._obs
        if obs is not None:
            # Counter children are plain .value cells; skip the inc()
            # call per field on this once-per-message path.
            obs["messages"].value += 1
            obs["wire_bytes"].value += size
            obs["data_bytes"].value += data
            obs["wire_cycles"].value += wire
            obs["contention"].value += waited
            obs["wire_hist"].observe(wire)


class Network(ABC):
    """Base class for the three contention models.

    Fault injection hook: when an injector is attached (see
    :meth:`attach_faults`), every transmission first gets a verdict —
    drop, duplicate, or extra delay.  Whether a *dropped* frame still
    consumes the medium is model-specific
    (:attr:`DROP_CONSUMES_WIRE`): on Ethernet and the ATM crossbar the
    frame was physically transmitted and lost afterwards, so it
    occupies the wire/ports as usual; the ideal model drops for free.
    """

    #: A dropped frame still pays wire time and contention (the loss
    #: happens after transmission).  IdealNetwork overrides this.
    DROP_CONSUMES_WIRE = True

    def __init__(self, sim: Simulator, config: MachineConfig) -> None:
        self.sim = sim
        self.config = config
        self.stats = NetworkStats()
        self.latency_cycles = config.us_to_cycles(config.network.latency_us)
        # Wire-time constants pre-fetched: wire_cycles runs once per
        # transmission; the inlined expression keeps the exact
        # operation order of MachineConfig.wire_cycles.
        self._wire_bps = config.network.bandwidth_bps
        self._cycles_per_second = config.cycles_per_second
        self._deliver: Optional[Callable[[Message], None]] = None
        self.faults = None
        self._tracer = None

    def attach(self, deliver: Callable[[Message], None]) -> None:
        """Register the machine-level delivery callback."""
        self._deliver = deliver

    def attach_faults(self, injector) -> None:
        """Route every transmission through a fault injector."""
        self.faults = injector

    def attach_obs(self, obs) -> None:
        """Mirror traffic stats into the metrics registry.  Subclasses
        extend this with their model-specific metrics (collisions,
        backoff, port contention)."""
        self.stats.attach_obs(obs)
        self._tracer = obs.tracer

    def wire_cycles(self, message: Message) -> float:
        return (message.size_bytes * 8.0 / self._wire_bps
                * self._cycles_per_second)

    def transmit(self, message: Message) -> float:
        """Accept a message now; schedule delivery.  Returns the
        scheduled delivery time (useful for tests)."""
        if self._deliver is None:
            raise RuntimeError("network not attached to a machine")
        if not (0 <= message.dst < self.config.nprocs):
            raise ValueError(f"destination {message.dst} out of range")
        if self.faults is None:
            delivery_time = self._schedule(message)
            # Simulator.schedule inlined (one call per transmission):
            # identical ``now + delay`` float arithmetic and sequence
            # numbering, including the zero-delay ready-bucket branch
            # for the corner where a tiny wire time rounds away
            # against a large current time.
            sim = self.sim
            now = sim.now
            delay = delivery_time - now
            sim._seq = seq = sim._seq + 1
            if delay == 0.0:
                sim._ready.append((seq, self._deliver, (message,)))
            else:
                heappush(sim._queue,
                         (now + delay, seq, self._deliver, (message,)))
            return delivery_time
        return self._transmit_with_faults(message)

    def _transmit_with_faults(self, message: Message) -> float:
        decision = self.faults.decide(message)
        if (decision is not None and decision.drop
                and not self.DROP_CONSUMES_WIRE):
            # Free drop: the model never sees the frame.
            return self.sim.now
        delivery_time = self._schedule(message)
        if decision is None:
            self.sim.schedule(delivery_time - self.sim.now,
                              self._deliver, message)
            return delivery_time
        if decision.drop:
            # Wire time and contention were paid; delivery never
            # happens.  The injector already counted the drop.
            return delivery_time
        delivery_time += decision.extra_delay
        self.sim.schedule(delivery_time - self.sim.now,
                          self._deliver, message)
        if decision.duplicate:
            # The duplicate appears one latency later, without
            # consuming the medium again (modelled as a switch-side
            # replication, not a second send).
            gap = self.latency_cycles or 1.0
            self.sim.schedule(delivery_time + gap - self.sim.now,
                              self._deliver, message)
        return delivery_time

    @abstractmethod
    def _schedule(self, message: Message) -> float:
        """Model-specific: pick the delivery time and record stats."""
