"""Network substrate: message model and contention models."""

from repro.net.atm import AtmNetwork
from repro.net.base import Network, NetworkStats
from repro.net.ethernet import EthernetNetwork
from repro.net.ideal import IdealNetwork
from repro.net.message import Message, MsgKind


def build_network(sim, config):
    """Instantiate the network named by ``config.network.kind``."""
    kind = config.network.kind
    if kind == "ethernet":
        return EthernetNetwork(sim, config)
    if kind == "atm":
        return AtmNetwork(sim, config)
    if kind == "ideal":
        return IdealNetwork(sim, config)
    raise ValueError(f"unknown network kind: {kind!r}")


__all__ = [
    "AtmNetwork", "EthernetNetwork", "IdealNetwork", "Message", "MsgKind",
    "Network", "NetworkStats", "build_network",
]
