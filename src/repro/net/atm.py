"""ATM crossbar model.

Point-to-point switch: every node has one output port and one input
port.  A message occupies the sender's output port and the receiver's
input port for its wire time, so disjoint source/destination pairs
proceed fully in parallel and interference only arises when senders
target a common destination — the property the paper credits for most
of Jacobi's improvement over Ethernet.

With fault injection attached, a dropped message still occupies both
ports for its wire time: the cells were switched and then lost, so the
loss is only detected end-to-end (by the reliable transport's
timeouts), never by the switch.
"""

from __future__ import annotations

from repro.core.config import MachineConfig
from repro.net.base import Network
from repro.net.message import Message
from repro.sim.engine import Simulator


class AtmNetwork(Network):
    """Crossbar with per-port serialization."""

    def __init__(self, sim: Simulator, config: MachineConfig) -> None:
        super().__init__(sim, config)
        nprocs = config.nprocs
        self._out_free = [0.0] * nprocs
        self._in_free = [0.0] * nprocs
        self._obs_port_contention = None

    def attach_obs(self, obs) -> None:
        super().attach_obs(obs)
        self._obs_port_contention = obs.registry.get(
            "net.port_contention_total").labels()

    def _schedule(self, message: Message) -> float:
        now = self.sim.now
        wire = self.wire_cycles(message)
        start = max(now, self._out_free[message.src],
                    self._in_free[message.dst])
        waited = start - now
        if waited > 0 and self._obs_port_contention is not None:
            self._obs_port_contention.inc()
        end = start + wire
        self._out_free[message.src] = end
        self._in_free[message.dst] = end
        self.stats.record(message, wire, waited)
        tracer = self._tracer
        if tracer is not None and tracer.sink.enabled:
            tracer.emit("net.xmit", msg=message.msg_id,
                        src=message.src, dst=message.dst,
                        kind=message.kind.value, wire=wire,
                        waited=waited)
        return end + self.latency_cycles
