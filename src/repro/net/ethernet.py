"""Broadcast Ethernet model.

The whole machine shares one medium: transmissions serialize globally.
With ``collisions`` enabled, a sender that finds the medium busy pays a
binary-exponential-backoff penalty that grows with the number of other
stations currently queued — the paper's observation that identical
processors hitting a barrier together create severe contention (8-way
Jacobi waits >3 ms per barrier for the wire) falls out of this model.
"""

from __future__ import annotations

from repro.core.config import MachineConfig
from repro.core.rng import substream
from repro.net.base import Network
from repro.net.message import Message
from repro.sim.engine import Simulator


class EthernetNetwork(Network):
    """Single shared medium with optional CSMA/CD backoff penalties.

    With fault injection attached, a dropped frame still occupies the
    medium for its full wire time — on a broadcast Ethernet the bits
    were sent and corrupted/lost, so everyone else still waited.
    """

    MAX_CONTENDERS = 16  # backoff window stops growing past this

    def __init__(self, sim: Simulator, config: MachineConfig) -> None:
        super().__init__(sim, config)
        self.collisions = config.network.collisions
        self.slot_cycles = config.us_to_cycles(
            config.network.backoff_slot_us)
        self._free_at = 0.0
        self._queued = 0
        self._rng = substream(config.seed, "ethernet")
        self._obs_collisions = None
        self._obs_backoff = None

    def attach_obs(self, obs) -> None:
        super().attach_obs(obs)
        self._obs_collisions = obs.registry.get(
            "net.collisions_total").labels()
        self._obs_backoff = obs.registry.get(
            "net.backoff_cycles_total").labels()

    def _schedule(self, message: Message) -> float:
        now = self.sim.now
        wire = self.wire_cycles(message)
        start = max(now, self._free_at)
        waited = start - now
        if self.collisions and start > now:
            # The medium was busy: model a CSMA/CD collision episode
            # with a backoff window that grows linearly in the number
            # of stations currently contending (a light-tailed stand-in
            # for truncated binary exponential backoff).  The sender
            # holds a contender slot until its modelled transmission
            # ends, so the window tracks *live* contention instead of
            # ratcheting up across unrelated episodes within a burst.
            self._queued += 1
            window = min(self._queued, self.MAX_CONTENDERS)
            backoff = self._rng.uniform(0.0, window) * self.slot_cycles
            start += backoff
            waited += backoff
            self.stats.collisions += 1
            if self._obs_collisions is not None:
                self._obs_collisions.inc()
                self._obs_backoff.inc(backoff)
            end = start + wire
            self.sim.schedule(end - now, self._release_slot)
        else:
            backoff = 0.0
            end = start + wire
        self._free_at = end
        self.stats.record(message, wire, waited)
        tracer = self._tracer
        if tracer is not None and tracer.sink.enabled:
            tracer.emit("net.xmit", msg=message.msg_id,
                        src=message.src, dst=message.dst,
                        kind=message.kind.value, wire=wire,
                        waited=waited, backoff=backoff)
        return end + self.latency_cycles

    def _release_slot(self) -> None:
        self._queued -= 1
