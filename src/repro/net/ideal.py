"""Ideal network: no wire time, no contention, fixed latency.

Used by unit tests to isolate protocol logic from network modelling,
and as the contention-free limit in ablation studies.
"""

from __future__ import annotations

from repro.net.base import Network
from repro.net.message import Message


class IdealNetwork(Network):
    """Delivers every message after the configured latency.

    Injected drops are free here: the ideal model has no medium to
    occupy, so a lost message consumes neither wire time nor stats —
    useful for isolating pure transport-recovery behaviour from
    contention effects.
    """

    DROP_CONSUMES_WIRE = False

    def _schedule(self, message: Message) -> float:
        self.stats.record(message, 0.0, 0.0)
        tracer = self._tracer
        if tracer is not None and tracer.sink.enabled:
            tracer.emit("net.xmit", msg=message.msg_id,
                        src=message.src, dst=message.dst,
                        kind=message.kind.value, wire=0.0,
                        waited=0.0)
        return self.sim.now + self.latency_cycles
