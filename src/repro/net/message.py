"""Protocol messages.

Following the paper's accounting, a message's wire length is a fixed
header plus the *shared data* it carries (diffs or whole pages);
protocol-specific consistency information (write notices, vector times,
copysets) travels free of charge.  The metrics layer classifies messages
as synchronization vs. data traffic from their kind.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.core.config import MESSAGE_HEADER_BYTES

_message_ids = itertools.count()


class MsgKind(Enum):
    """Every message type exchanged by the five protocols."""

    LOCK_REQ = "lock_req"            # acquirer -> lock owner
    LOCK_FWD = "lock_fwd"            # lock owner -> current holder
    LOCK_GRANT = "lock_grant"        # releaser -> acquirer (+consistency)
    BARRIER_ARRIVE = "barrier_arrive"  # worker -> barrier master
    BARRIER_DEPART = "barrier_depart"  # barrier master -> worker
    PAGE_REQ = "page_req"            # access miss: ask for a page copy
    PAGE_FWD = "page_fwd"            # owner forwards miss to valid cacher
    PAGE_REPLY = "page_reply"        # page contents (+diffs for lazy)
    DIFF_REQ = "diff_req"            # lazy miss: ask a modifier for diffs
    DIFF_REPLY = "diff_reply"        # diffs
    FLUSH = "flush"                  # eager release: notices or updates
    FLUSH_ACK = "flush_ack"          # ack (EI ack may carry merge diffs)
    UPDATE_PUSH = "update_push"      # pre-barrier update distribution
    UPDATE_ACK = "update_ack"        # ack for LU/EU pushes
    DIFF_FWD = "diff_fwd"            # EI barrier: loser -> winner diffs
    TRANSPORT_ACK = "transport_ack"  # reliable-transport pure ack
    # (never sent by protocols; appears only on the wire when the
    # reliable transport is active -- see repro.net.transport)

    # Enum's default __hash__ is a Python-level call (hash of _name_);
    # members are singletons compared by identity, so the C-level
    # object hash is equivalent — and message kinds key the per-send
    # metrics counters, twice per message.
    __hash__ = object.__hash__

    @property
    def is_synchronization(self) -> bool:
        """Messages whose *purpose* is synchronization (lock/barrier)."""
        return self in (MsgKind.LOCK_REQ, MsgKind.LOCK_FWD,
                        MsgKind.LOCK_GRANT, MsgKind.BARRIER_ARRIVE,
                        MsgKind.BARRIER_DEPART)


@dataclass(slots=True)
class Message:
    """One point-to-point protocol message."""

    src: int
    dst: int
    kind: MsgKind
    payload: Any = None
    data_bytes: int = 0  # shared data carried (diffs / page contents)
    lazy: bool = False   # lazy protocols pay doubled per-byte overhead
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    reply_to: Optional[int] = None  # correlating request msg_id
    # Wire length (header + data), fixed at construction.  A plain
    # attribute: it is read several times per hop (overhead model,
    # network serialization, two metrics mirrors).
    size_bytes: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"message to self: proc {self.src}")
        if self.data_bytes < 0:
            raise ValueError("negative data_bytes")
        self.size_bytes = MESSAGE_HEADER_BYTES + self.data_bytes

    def __repr__(self) -> str:
        return (f"<Msg #{self.msg_id} {self.kind.value} "
                f"{self.src}->{self.dst} data={self.data_bytes}B>")
