"""Reliable, exactly-once, in-order transport over a lossy network.

The five DSM protocols were written against a perfect network: one
lost message deadlocks a lock chain, a duplicated diff corrupts a
page, a reordered grant breaks the happens-before order.  This layer
sits between the nodes and the network model and restores those
guarantees — like the user-level reliable transports real DSM systems
build over raw interconnect primitives — so that under injected
faults every protocol still terminates with correct application
results, just more slowly.

Mechanism (per directed node pair, TCP-flavoured but simpler):

- **Sequence numbers** — the sender stamps each protocol message with
  a per-destination sequence number.
- **Cumulative acks, piggybacked** — every data packet carries the
  highest in-order sequence number received on the reverse stream;
  when no reverse traffic appears within ``ack_delay_us``, a pure
  ``TRANSPORT_ACK`` packet (header-sized) is sent instead.
- **Timeout retransmission** — the sender re-sends the oldest
  unacknowledged packet when its retransmission timer (a cancellable
  :class:`repro.sim.events.Timer`) fires; the timeout grows with the
  packet's wire time, backs off exponentially per consecutive expiry,
  and is stretched by seeded jitter so synchronized losers do not
  retransmit in lockstep.
- **Receiver reassembly** — in-order packets are delivered up
  immediately; out-of-order packets are buffered until the gap fills;
  duplicates (from injected duplication or spurious retransmission)
  are suppressed.

The transport is modelled at NIC level: retransmissions, acks, and
duplicate suppression cost *wire* resources but no node CPU — the
nodes' software-overhead accounting stays exactly the paper's.  When
faults are disabled the machine bypasses this module entirely, so
fault-free runs are bit-for-bit identical to a build without it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.config import MESSAGE_HEADER_BYTES, MachineConfig
from repro.core.rng import substream
from repro.net.message import Message, MsgKind
from repro.sim.engine import Simulator


class Packet:
    """Transport envelope: one protocol message (or a pure ack) plus
    sequencing metadata.  Quacks enough like :class:`Message` for the
    network models (``src``/``dst``/``size_bytes``/``data_bytes``).
    The transport header rides inside the fixed message header."""

    __slots__ = ("src", "dst", "seq", "ack", "payload", "attempts",
                 "first_sent")

    def __init__(self, src: int, dst: int, seq: int, ack: int,
                 payload: Optional[Message]) -> None:
        self.src = src
        self.dst = dst
        self.seq = seq            # -1 for pure acks
        self.ack = ack            # cumulative ack for the reverse stream
        self.payload = payload    # None for pure acks
        self.attempts = 0         # retransmissions so far
        self.first_sent = 0.0

    @property
    def size_bytes(self) -> int:
        if self.payload is None:
            return MESSAGE_HEADER_BYTES
        return self.payload.size_bytes

    @property
    def data_bytes(self) -> int:
        return 0 if self.payload is None else self.payload.data_bytes

    @property
    def kind(self) -> MsgKind:
        return (MsgKind.TRANSPORT_ACK if self.payload is None
                else self.payload.kind)

    def __repr__(self) -> str:
        what = "ack" if self.payload is None else repr(self.payload)
        return (f"<Pkt {self.src}->{self.dst} seq={self.seq} "
                f"ack={self.ack} {what}>")


class _Stream:
    """State of one directed stream ``src -> dst``: the sender side
    lives at ``src``, the receiver side at ``dst`` (the transport
    object is machine-global, so both halves sit in one record)."""

    __slots__ = ("src", "dst",
                 # sender side
                 "next_seq", "unacked", "timer", "backoff_exp",
                 "srtt", "rttvar",
                 # receiver side
                 "expected", "buffer", "ack_pending", "ack_timer")

    def __init__(self, src: int, dst: int) -> None:
        self.src = src
        self.dst = dst
        self.next_seq = 0
        self.unacked: Dict[int, Packet] = {}   # insertion-ordered by seq
        self.timer = None
        self.backoff_exp = 0
        self.srtt = None      # smoothed RTT (cycles), RFC 6298-style
        self.rttvar = 0.0
        self.expected = 0
        self.buffer: Dict[int, Packet] = {}
        self.ack_pending = False
        self.ack_timer = None


class ReliableTransport:
    """Exactly-once, in-order delivery for all node pairs."""

    def __init__(self, sim: Simulator, config: MachineConfig, network,
                 deliver: Callable[[Message], None],
                 obs=None, tracer=None) -> None:
        self.sim = sim
        self.config = config
        self.network = network
        self._deliver_up = deliver
        self.tracer = tracer
        tc = config.transport
        self.rto_cycles = config.us_to_cycles(tc.rto_us)
        self.rto_backoff = tc.rto_backoff
        self.max_backoff_exp = tc.max_backoff_exp
        self.rto_max_cycles = config.us_to_cycles(tc.rto_max_us)
        # Set by the machine when crash faults are enabled; lets the
        # transport idle streams whose sender is down and reset
        # sessions when a peer rejoins.
        self.lifecycle = None
        self.ack_delay = config.us_to_cycles(tc.ack_delay_us)
        self.jitter_frac = tc.jitter_frac
        fault_seed = config.faults.seed
        seed = fault_seed if fault_seed is not None else config.seed
        self._jitter_rng = substream(seed, "transport.jitter")
        self._streams: Dict[Tuple[int, int], _Stream] = {}
        self._obs = None
        if obs is not None:
            self.attach_obs(obs)

    def attach_obs(self, obs) -> None:
        from repro.obs import install_robustness
        registry = obs.registry
        install_robustness(registry)
        # Bound children (all transport.* metrics are label-free):
        # _inc() runs per packet, so skip Metric._sole() per call.
        self._obs = {
            "sent": registry.get("transport.packets_sent_total").labels(),
            "received": registry.get(
                "transport.packets_received_total").labels(),
            "data": registry.get("transport.data_packets_total").labels(),
            "retx": registry.get("transport.retransmits_total").labels(),
            "timeouts": registry.get(
                "transport.timeout_fires_total").labels(),
            "acks": registry.get("transport.acks_sent_total").labels(),
            "piggyback": registry.get(
                "transport.acks_piggybacked_total").labels(),
            "dups": registry.get(
                "transport.duplicates_suppressed_total").labels(),
            "ooo": registry.get("transport.out_of_order_total").labels(),
            "delivered": registry.get(
                "transport.delivered_total").labels(),
            "recovery": registry.get(
                "transport.recovery_cycles").labels(),
            "peer_down": registry.get(
                "transport.peer_down_timeouts_total").labels(),
            "resets": registry.get(
                "transport.session_resets_total").labels(),
        }

    def _inc(self, name: str, amount=1) -> None:
        if self._obs is not None:
            self._obs[name].inc(amount)

    def _stream(self, src: int, dst: int) -> _Stream:
        key = (src, dst)
        stream = self._streams.get(key)
        if stream is None:
            stream = _Stream(src, dst)
            self._streams[key] = stream
        return stream

    def _cumulative_ack(self, src: int, dst: int) -> int:
        """Highest in-order seq received on stream ``src -> dst``
        (that state lives at ``dst``); -1 when nothing arrived yet."""
        return self._stream(src, dst).expected - 1

    # -- sending --------------------------------------------------------

    def send(self, message: Message) -> None:
        """Entry point for node sends (replaces raw network.transmit)."""
        stream = self._stream(message.src, message.dst)
        packet = Packet(message.src, message.dst, stream.next_seq,
                        self._cumulative_ack(message.dst, message.src),
                        message)
        stream.next_seq += 1
        packet.first_sent = self.sim.now
        stream.unacked[packet.seq] = packet
        self._inc("data")
        if (self.lifecycle is not None
                and self.lifecycle.is_down(message.src)):
            # A handler completion scheduled before the crash landed
            # after it: queue the packet but keep the NIC silent.  The
            # session reset on recovery retransmits it.
            return
        # Piggyback: this data packet carries the ack the reverse
        # stream may have owed, so cancel any pending pure ack.
        reverse = self._stream(message.dst, message.src)
        if reverse.ack_pending:
            reverse.ack_pending = False
            if reverse.ack_timer is not None:
                reverse.ack_timer.cancel()
                reverse.ack_timer = None
            self._inc("piggyback")
        if stream.timer is None:
            self._arm(stream)
        self._transmit(packet)

    def _transmit(self, packet: Packet) -> None:
        self._inc("sent")
        self.network.transmit(packet)

    # -- retransmission timer -------------------------------------------

    def _rto(self, stream: _Stream, packet: Packet) -> float:
        """Current retransmission timeout for ``packet``.

        With RTT samples in hand: ``srtt + 4 * rttvar`` plus this
        packet's own round trip of wire time (a page transfer is much
        longer on the wire than the small packets most samples come
        from), floored at the configured base.  Before any sample:
        the base plus two wire round trips — deliberately generous,
        since a spurious retransmission costs real contention on a
        shared medium.  Backoff and jitter are applied on top."""
        wire_round_trip = 2.0 * self.config.wire_cycles(
            packet.size_bytes)
        if stream.srtt is None:
            base = self.rto_cycles + 2.0 * wire_round_trip
        else:
            base = max(self.rto_cycles,
                       stream.srtt + 4.0 * stream.rttvar
                       + wire_round_trip)
        exponent = min(stream.backoff_exp, self.max_backoff_exp)
        # Absolute ceiling: a long-dead peer must not drive the probe
        # interval unbounded — cap the backed-off base, then jitter on
        # top so capped probes stay de-synchronized across streams.
        delay = min(base * (self.rto_backoff ** exponent),
                    self.rto_max_cycles)
        return delay * (1.0 + self.jitter_frac
                        * self._jitter_rng.random())

    def _sample_rtt(self, stream: _Stream, sample: float) -> None:
        """RFC 6298 smoothing; callers apply Karn's rule (no samples
        from retransmitted packets — their acks are ambiguous)."""
        if stream.srtt is None:
            stream.srtt = sample
            stream.rttvar = sample / 2.0
        else:
            stream.rttvar = (0.75 * stream.rttvar
                             + 0.25 * abs(stream.srtt - sample))
            stream.srtt = 0.875 * stream.srtt + 0.125 * sample

    def _arm(self, stream: _Stream) -> None:
        oldest = next(iter(stream.unacked.values()))
        timer = self.sim.timer(self._rto(stream, oldest))
        stream.timer = timer
        timer.add_callback(
            lambda _event, stream=stream, timer=timer:
                self._on_timeout(stream, timer))

    def _on_timeout(self, stream: _Stream, timer) -> None:
        if stream.timer is not timer:
            return  # stale fire (ack re-armed a fresh timer)
        stream.timer = None
        if not stream.unacked:
            return
        if (self.lifecycle is not None
                and self.lifecycle.is_down(stream.src)):
            # Sender is down: its NIC is dead, so no retransmit, no
            # backoff, no counting — just keep the timer chain alive
            # until recovery resets the session.
            self._arm(stream)
            return
        self._inc("timeouts")
        stream.backoff_exp += 1
        if stream.backoff_exp > self.max_backoff_exp:
            # Repeated expiries at the backoff cap are the sender's
            # peer-death suspicion signal (probing a silent peer).
            self._inc("peer_down")
        oldest = next(iter(stream.unacked.values()))
        oldest.attempts += 1
        # Refresh the piggybacked ack to the latest receiver state.
        oldest.ack = self._cumulative_ack(stream.dst, stream.src)
        self._inc("retx")
        if self.tracer:
            self.tracer.emit("transport.retx", src=stream.src,
                             dst=stream.dst, seq=oldest.seq,
                             attempt=oldest.attempts)
        self._transmit(oldest)
        self._arm(stream)

    # -- receiving ------------------------------------------------------

    def on_network_delivery(self, packet: Packet) -> None:
        """Attached as the network's delivery callback."""
        self._inc("received")
        # 1. The piggybacked ack acknowledges the reverse stream.
        self._process_ack(self._stream(packet.dst, packet.src),
                          packet.ack)
        if packet.payload is None:
            return
        # 2. Sequence handling for the forward stream.
        stream = self._stream(packet.src, packet.dst)
        if packet.seq == stream.expected:
            stream.expected += 1
            self._deliver_payload(packet)
            while stream.expected in stream.buffer:
                queued = stream.buffer.pop(stream.expected)
                stream.expected += 1
                self._deliver_payload(queued)
        elif packet.seq > stream.expected:
            if packet.seq in stream.buffer:
                self._inc("dups")
            else:
                stream.buffer[packet.seq] = packet
                self._inc("ooo")
        else:
            # Already delivered: a duplicate (injected, or a
            # retransmission whose ack was lost).  Re-ack so the
            # sender stops retrying.
            self._inc("dups")
        # 3. Owe the sender an ack (delayed, hoping to piggyback).
        self._schedule_ack(stream)

    def _deliver_payload(self, packet: Packet) -> None:
        self._inc("delivered")
        self._deliver_up(packet.payload)

    def _process_ack(self, stream: _Stream, ack: int) -> None:
        """Cumulative ack for ``stream``, processed at the sender."""
        if not stream.unacked:
            return
        advanced = False
        for seq in list(stream.unacked):
            if seq > ack:
                break  # unacked is insertion-ordered by seq
            packet = stream.unacked.pop(seq)
            advanced = True
            if packet.attempts == 0:
                self._sample_rtt(stream,
                                 self.sim.now - packet.first_sent)
            elif self._obs is not None:
                self._obs["recovery"].observe(
                    self.sim.now - packet.first_sent)
        if not advanced:
            return
        stream.backoff_exp = 0
        if stream.timer is not None:
            stream.timer.cancel()
            stream.timer = None
        if stream.unacked:
            self._arm(stream)

    def _schedule_ack(self, stream: _Stream) -> None:
        """Delayed ack for the receiver side of ``stream``: flushed as
        a pure ack after ``ack_delay`` unless reverse-direction data
        piggybacks it first."""
        stream.ack_pending = True
        if stream.ack_timer is not None:
            return
        timer = self.sim.timer(self.ack_delay)
        stream.ack_timer = timer
        timer.add_callback(
            lambda _event, stream=stream, timer=timer:
                self._flush_ack(stream, timer))

    def _flush_ack(self, stream: _Stream, timer) -> None:
        if stream.ack_timer is not timer:
            return
        stream.ack_timer = None
        if not stream.ack_pending:
            return
        stream.ack_pending = False
        ack_packet = Packet(stream.dst, stream.src, -1,
                            stream.expected - 1, None)
        self._inc("acks")
        self._transmit(ack_packet)

    # -- crash recovery -------------------------------------------------

    def on_node_recovered(self, proc: int) -> None:
        """Session reset when ``proc`` rejoins after a crash.

        Every stream touching ``proc`` restarts its retransmission
        state: backoff returns to zero (the old RTO reflected a dead
        peer, not the path), the oldest unacked packet goes out
        immediately — queued sends from the recovered node, and peers'
        packets dropped at the dead NIC, bridge the outage here — and
        any ack the recovered receiver owed is flushed at once."""
        for stream in self._streams.values():
            if proc not in (stream.src, stream.dst):
                continue
            reset = False
            stream.backoff_exp = 0
            if stream.unacked:
                reset = True
                if stream.timer is not None:
                    stream.timer.cancel()
                    stream.timer = None
                oldest = next(iter(stream.unacked.values()))
                oldest.attempts += 1
                oldest.ack = self._cumulative_ack(stream.dst,
                                                  stream.src)
                self._inc("retx")
                self._transmit(oldest)
                self._arm(stream)
            if stream.dst == proc and stream.ack_pending:
                reset = True
                self._flush_ack(stream, stream.ack_timer)
            if reset:
                self._inc("resets")

    # -- introspection --------------------------------------------------

    def in_flight(self) -> int:
        """Unacknowledged packets across all streams (tests)."""
        return sum(len(stream.unacked)
                   for stream in self._streams.values())
