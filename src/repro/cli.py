"""Command-line interface.

Examples::

    python -m repro run water --procs 8 --protocol lh
    python -m repro compare water --procs 16 --jobs 4
    python -m repro sweep jacobi --protocol lh --procs 1,2,4,8,16
    python -m repro networks --app jacobi
    python -m repro stats jacobi --protocol li --network atm
    python -m repro stats --load result.json --format table
    python -m repro report EXPERIMENTS.md --jobs 4

Every simulating subcommand resolves its runs through
:class:`repro.lab.Lab`: ``--jobs N`` fans independent runs across N
worker processes, and results are memoized in a content-addressed
cache (``--cache-dir``, default ``.repro-cache/``; ``--no-cache``
disables it).  See docs/lab.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.experiments import APP_PARAMS, protocol_sweep
from repro.apps import APP_NAMES, create_app
from repro.core.config import (CrashSpec, FaultConfig, MachineConfig,
                               NetworkConfig, StallSpec)
from repro.core.metrics import RunResult
from repro.core.runner import run_app
from repro.lab import DEFAULT_CACHE_DIR, Lab, RunSpec
from repro.protocols import PROTOCOL_NAMES
from repro.serve.workload import SERVE_APP_PARAMS

#: Apps the CLI accepts: the paper suite plus the serving workload
#: (kept out of APP_NAMES so report/experiment drivers that iterate
#: the paper suite never pick it up).
CLI_APP_CHOICES = APP_NAMES + ["kvstore"]


def _network(args) -> NetworkConfig:
    if args.network == "ethernet":
        return NetworkConfig.ethernet(collisions=not args.no_collisions)
    if args.network == "atm":
        return NetworkConfig.atm(args.bandwidth)
    return NetworkConfig.ideal()


def _app_params(args) -> dict:
    """Scaled parameters for the selected app (the serving workload
    scales through its own table, see repro.serve.workload)."""
    if args.app == "kvstore":
        return dict(SERVE_APP_PARAMS[args.scale])
    return dict(APP_PARAMS[args.scale][args.app])


def _app(args):
    return create_app(args.app, **_app_params(args))


def _probability(text: str) -> float:
    """Argparse type for per-message fault rates: a float in
    [0.0, 1.0) — the injector's domain — rejected here with a clear
    message instead of failing deep inside config validation."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a probability, got {text!r}")
    if not 0.0 <= value < 1.0:
        raise argparse.ArgumentTypeError(
            f"probability must be at least 0.0 and below 1.0, "
            f"got {value}")
    return value


def _nonnegative_us(text: str) -> float:
    """Argparse type for durations/times in microseconds (>= 0)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected microseconds, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"microseconds must be non-negative, got {value}")
    return value


def _positive_rate(text: str) -> float:
    """Argparse type for offered load: requests/second, strictly
    positive (an open-loop generator with no arrivals is a mistake,
    not a workload)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected requests/second, got {text!r}")
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"arrival rate must be > 0 requests/s, got {value}")
    return value


def _unit_fraction(text: str) -> float:
    """Argparse type for mix fractions: a float in [0.0, 1.0]
    (inclusive — an all-read or all-write mix is legitimate)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a fraction, got {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"fraction must be within [0, 1], got {value}")
    return value


def _window_us(text: str) -> float:
    """Argparse type for the telemetry window: microseconds, strictly
    positive.  (The companion check — a window smaller than the
    scheduler tick — needs the machine's clock rate, so it happens at
    sampler bind time and surfaces as a clean error too.)"""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a window in microseconds, got {text!r}")
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"window must be > 0 µs, got {value}")
    return value


def _slo_target(text: str) -> float:
    """Argparse type for the SLO attainment target: strictly inside
    (0, 1) — at 1.0 the burn rate divides by zero, at 0 every window
    trivially passes."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an SLO target, got {text!r}")
    if not 0.0 < value < 1.0:
        raise argparse.ArgumentTypeError(
            f"SLO target must be within (0, 1), got {value}")
    return value


def _zipf_exponent(text: str) -> float:
    """Argparse type for the Zipf skew: >= 0 (0 = uniform keys)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a Zipf exponent, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"Zipf exponent must be >= 0, got {value}")
    return value


def _parse_stall(spec: str) -> StallSpec:
    """Parse a ``PROC:AT_US:DURATION_US`` stall spec."""
    try:
        proc, at_us, duration_us = spec.split(":")
        proc = int(proc)
        at_us = float(at_us)
        duration_us = float(duration_us)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected PROC:AT_US:DURATION_US, got {spec!r}")
    if at_us < 0 or duration_us < 0:
        raise argparse.ArgumentTypeError(
            f"stall times must be non-negative, got {spec!r}")
    try:
        return StallSpec(proc=proc, at_us=at_us,
                         duration_us=duration_us)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad stall {spec!r}: {exc}")


def _parse_crash(spec: str) -> CrashSpec:
    """Parse a ``PROC:AT_US[:DOWN_US]`` crash spec (no DOWN_US means
    crash-stop: the node never comes back)."""
    parts = spec.split(":")
    try:
        if len(parts) == 2:
            proc, at_us = int(parts[0]), float(parts[1])
            down_us = None
        elif len(parts) == 3:
            proc, at_us = int(parts[0]), float(parts[1])
            down_us = float(parts[2])
        else:
            raise ValueError(spec)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected PROC:AT_US[:DOWN_US], got {spec!r}")
    try:
        return CrashSpec(proc=proc, at_us=at_us, down_us=down_us)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad crash {spec!r}: {exc}")


def _faults(args) -> FaultConfig:
    return FaultConfig(drop_prob=getattr(args, "loss", 0.0),
                       dup_prob=getattr(args, "dup", 0.0),
                       reorder_prob=getattr(args, "reorder", 0.0),
                       stalls=tuple(getattr(args, "stall", None) or ()),
                       crashes=tuple(getattr(args, "crash", None)
                                     or ()),
                       crash_mttf_us=getattr(args, "crash_mttf", 0.0),
                       crash_mttr_us=getattr(args, "crash_mttr", 0.0),
                       crash_horizon_us=getattr(args, "crash_horizon",
                                                0.0),
                       seed=getattr(args, "fault_seed", None))


def _config(args, nprocs: Optional[int] = None) -> MachineConfig:
    return MachineConfig(nprocs=nprocs or args.procs,
                         cpu_mhz=args.mhz,
                         page_size=args.page_size,
                         network=_network(args),
                         faults=_faults(args))


def _lab(args) -> Lab:
    """The experiment harness configured by the shared CLI flags."""
    no_cache = getattr(args, "no_cache", False)
    return Lab(jobs=getattr(args, "jobs", None),
               cache_dir=getattr(args, "cache_dir", DEFAULT_CACHE_DIR),
               cache=not no_cache,
               progress=True,
               trace_dir=getattr(args, "trace_dir", None))


def _spec(args, nprocs: Optional[int] = None,
          protocol: Optional[str] = None) -> RunSpec:
    return RunSpec(args.app, _app_params(args),
                   protocol=protocol or args.protocol,
                   config=_config(args, nprocs=nprocs))


def _baseline_spec(args) -> RunSpec:
    """The 1-processor run used as the speedup denominator (matches
    :func:`repro.core.runner.sequential_baseline`)."""
    return RunSpec(args.app, _app_params(args),
                   protocol="lh",
                   config=_config(args, nprocs=1))


def cmd_run(args) -> int:
    """Run one application once and print its metrics."""
    with _lab(args) as lab:
        specs = [_spec(args)]
        if args.speedup:
            specs.append(_baseline_spec(args))
        results = lab.run_many(specs)
    result = results[0]
    print(result.summary())
    breakdown = result.time_breakdown()
    print("time breakdown: " + ", ".join(
        f"{name}={value:.0%}" for name, value in breakdown.items()))
    registry = result.registry
    if "transport.packets_sent_total" in registry:
        print("transport: "
              f"drops={registry.total('faults.drops_total'):.0f}, "
              "retransmits="
              f"{registry.total('transport.retransmits_total'):.0f}, "
              "dup_suppressed="
              f"{registry.total('transport.duplicates_suppressed_total'):.0f}")
    if args.speedup:
        print(f"speedup over sequential: "
              f"{result.speedup_over(results[1]):.2f}x")
    return 0


def cmd_compare(args) -> int:
    """Run one application under all five protocols."""
    with _lab(args) as lab:
        specs = [_baseline_spec(args)] + [
            _spec(args, protocol=protocol)
            for protocol in PROTOCOL_NAMES]
        results = lab.run_many(specs)
    baseline = results[0]
    print(f"{args.app} on {args.procs} procs "
          f"({args.network}, {args.bandwidth:.0f} Mbit)")
    print(f"{'proto':>6s} {'speedup':>8s} {'messages':>9s} "
          f"{'data KB':>8s} {'misses':>7s}")
    for protocol, result in zip(PROTOCOL_NAMES, results[1:]):
        print(f"{protocol:>6s} {result.speedup_over(baseline):8.2f} "
              f"{result.total_messages:9d} {result.data_kbytes:8.1f} "
              f"{result.access_misses:7d}")
    return 0


def cmd_sweep(args) -> int:
    """Speedup curve across processor counts."""
    proc_counts = [int(p) for p in args.proc_list.split(",")]
    with _lab(args) as lab:
        result = protocol_sweep(args.app, _network(args), proc_counts,
                                protocols=[args.protocol],
                                scale=args.scale, lab=lab)
    curve = result.curves[args.protocol]
    print(f"{args.app}/{args.protocol} on {args.network}")
    for nprocs in proc_counts:
        print(f"{nprocs:4d}p  speedup={curve.speedup[nprocs]:6.2f}  "
              f"messages={curve.messages[nprocs]:7d}  "
              f"data={curve.data_kbytes[nprocs]:9.1f}KB")
    return 0


def cmd_networks(args) -> int:
    """One application across the paper's five networks (Table 2)."""
    from repro.analysis.experiments import TABLE2_NETWORKS
    params = APP_PARAMS[args.scale][args.app]
    with _lab(args) as lab:
        specs = [RunSpec(args.app, params,
                         config=MachineConfig(nprocs=1))]
        specs += [RunSpec(args.app, params, protocol="lh",
                          config=MachineConfig(nprocs=args.procs,
                                               network=network))
                  for _, network in TABLE2_NETWORKS]
        results = lab.run_many(specs)
    baseline = results[0]
    print(f"{args.app} (LH, {args.procs} procs)")
    for (name, _), result in zip(TABLE2_NETWORKS, results[1:]):
        print(f"{name:<26s} speedup={result.speedup_over(baseline):6.2f}")
    return 0


def cmd_stats(args) -> int:
    """Run one application and dump its metrics registry (JSON by
    default, or a text table), optionally tracing to a JSONL file; or
    inspect a result saved earlier with ``--save``/the lab cache via
    ``--load``."""
    from repro.obs import JsonlSink, Observability, Tracer

    if args.load:
        with open(args.load) as handle:
            data = json.load(handle)
        if (isinstance(data, dict) and data.get("kind") == "run"
                and "result" in data):
            data = data["result"]     # a lab-cache envelope
        result = RunResult.from_dict(data)
    elif args.app is None:
        raise SystemExit("stats: pass an app name or --load FILE")
    elif args.trace:
        # Tracing is a side effect of simulating, so a traced run
        # bypasses the lab cache and always executes in-process.
        obs = Observability(tracer=Tracer(JsonlSink(args.trace)))
        result = run_app(_app(args), _config(args),
                         protocol=args.protocol, obs=obs)
        obs.close()
    else:
        with _lab(args) as lab:
            result = lab.run(_spec(args))
    if args.save:
        with open(args.save, "w") as handle:
            json.dump(result.to_dict(), handle, sort_keys=True)
            handle.write("\n")
        print(f"saved result to {args.save}", file=sys.stderr)
    registry = result.registry
    if registry is None:
        raise SystemExit("stats: result carries no metrics registry")
    if args.format == "json":
        text = registry.as_json(indent=2)
    else:
        from repro.analysis.report import format_metrics_table
        text = format_metrics_table(registry)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def cmd_profile(args) -> int:
    """Profile one run: host-time hotspots (cProfile, per subsystem
    and top-N functions) next to the simulated-time breakdown from
    the metrics registry (docs/performance.md)."""
    from repro.analysis.profiling import format_profile, profile_spec

    # Like a traced run, a profiled run is all about the side effect,
    # so it always executes in-process and bypasses the lab cache.
    report = profile_spec(_spec(args), top=args.top)
    print(format_profile(report, top=args.top))
    return 0


def cmd_losssweep(args) -> int:
    """Per-protocol slowdown across message-loss rates
    (docs/robustness.md)."""
    from repro.analysis.faults import format_loss_table, loss_sweep
    try:
        rates = [_probability(r) for r in args.rates.split(",")]
    except argparse.ArgumentTypeError as exc:
        raise SystemExit(f"losssweep: {exc}")
    protocols = (args.protocols.split(",") if args.protocols
                 else list(PROTOCOL_NAMES))
    for protocol in protocols:
        if protocol not in PROTOCOL_NAMES:
            raise SystemExit(f"unknown protocol {protocol!r}")
    print(f"{args.app} on {args.procs} procs ({args.network}), "
          f"loss rates {rates}")
    with _lab(args) as lab:
        results = loss_sweep(config=_config(args), rates=rates,
                             protocols=protocols, app=args.app,
                             app_params=_app_params(args),
                             lab=lab)
    print(format_loss_table(results))
    return 0


def cmd_crashsweep(args) -> int:
    """Availability study across node-crash rates: completion rate,
    recovery latency, and message overhead per protocol and network
    (docs/robustness.md)."""
    from repro.analysis.availability import (availability_sweep,
                                             format_availability_table)
    try:
        mttfs = [_nonnegative_us(r) for r in args.mttfs.split(",")]
    except argparse.ArgumentTypeError as exc:
        raise SystemExit(f"crashsweep: {exc}")
    protocols = (args.protocols.split(",") if args.protocols
                 else ["li", "lh"])
    for protocol in protocols:
        if protocol not in PROTOCOL_NAMES:
            raise SystemExit(f"unknown protocol {protocol!r}")
    network_names = args.networks.split(",")
    networks = []
    for name in network_names:
        if name == "ethernet":
            networks.append((name, NetworkConfig.ethernet()))
        elif name == "atm":
            networks.append((name, NetworkConfig.atm(args.bandwidth)))
        elif name == "ideal":
            networks.append((name, NetworkConfig.ideal()))
        else:
            raise SystemExit(f"unknown network {name!r}")
    params = _app_params(args)
    print(f"{args.app} on {args.procs} procs, "
          f"mttf {mttfs} µs, mttr {args.crash_mttr} µs, "
          f"horizon {args.crash_horizon} µs")
    results = availability_sweep(
        lambda: create_app(args.app, **params),
        config=MachineConfig(nprocs=args.procs, cpu_mhz=args.mhz,
                             page_size=args.page_size),
        mttfs=mttfs, mttr_us=args.crash_mttr,
        horizon_us=args.crash_horizon, protocols=protocols,
        networks=networks, max_events=args.max_events)
    print(format_availability_table(results))
    return 0


def _serve_networks(args):
    """Parse the ``--networks`` list shared by serve/servesweep."""
    networks = []
    for name in args.networks.split(","):
        if name == "ethernet":
            networks.append((name, NetworkConfig.ethernet()))
        elif name == "atm":
            networks.append((name, NetworkConfig.atm(args.bandwidth)))
        elif name == "ideal":
            networks.append((name, NetworkConfig.ideal()))
        else:
            raise SystemExit(f"unknown network {name!r}")
    return networks


def _serve_protocols(args):
    protocols = args.protocols.split(",")
    for protocol in protocols:
        if protocol not in PROTOCOL_NAMES:
            raise SystemExit(f"unknown protocol {protocol!r}")
    return protocols


def _serve_overrides(args) -> dict:
    overrides = {"read_fraction": args.read_fraction,
                 "zipf_s": args.zipf_s,
                 "arrival": args.arrival}
    if args.requests is not None:
        if args.requests < 1:
            raise SystemExit(
                f"serve: need at least one request, "
                f"got {args.requests}")
        overrides["requests"] = args.requests
    return overrides


def _serve_config(args) -> MachineConfig:
    """Machine config for serving runs: the network comes from
    ``--networks`` per cell, everything else (faults included — the
    capacity question composes loss and crash plans) from the shared
    flags.  Crash-stop plans never drain, so they are rejected here:
    serving cells run on the lab's cached path, which has no event
    budget."""
    faults = _faults(args)
    if faults.crash_mttf_us and not faults.crash_mttr_us:
        raise SystemExit(
            "serve: --crash-mttf needs --crash-mttr > 0 "
            "(crash-stop runs never finish serving; use crashsweep "
            "for crash-stop availability)")
    if any(crash.down_us is None for crash in faults.crashes):
        raise SystemExit(
            "serve: --crash needs a DOWN_US (crash-stop runs never "
            "finish serving; use crashsweep for crash-stop "
            "availability)")
    return MachineConfig(nprocs=args.procs, cpu_mhz=args.mhz,
                         page_size=args.page_size, faults=faults)


def cmd_serve(args) -> int:
    """Serve the kvstore workload open-loop at one offered load:
    throughput and p50/p99/p999 latency per (protocol, network), with
    optional critical-path attribution of the slowest requests
    (docs/serving.md)."""
    from repro.analysis.serving import (attribute_tail,
                                        format_attribution_table,
                                        format_serving_table,
                                        serving_grid)

    protocols = _serve_protocols(args)
    networks = _serve_networks(args)
    config = _serve_config(args)
    print(f"kvstore open-loop at {args.rate:.0f} req/s on "
          f"{args.procs} procs (scale {args.scale}, "
          f"read fraction {args.read_fraction}, "
          f"zipf {args.zipf_s}, SLO {args.slo_us:.0f} µs)")
    with _lab(args) as lab:
        reports = serving_grid(
            rate_rps=args.rate, protocols=protocols,
            networks=networks, scale=args.scale, config=config,
            slo_us=args.slo_us, overrides=_serve_overrides(args),
            lab=lab)
    print(format_serving_table(reports))
    if args.tail:
        from repro.obs import (CausalTrace, MemorySink, Observability,
                               Tracer)
        from repro.serve.workload import SERVE_APP_PARAMS

        # Tracing is a side effect, so the tail run executes
        # in-process (first protocol x first network cell).
        protocol, (net_name, network) = protocols[0], networks[0]
        params = dict(SERVE_APP_PARAMS[args.scale])
        params.update(_serve_overrides(args))
        params["rate_rps"] = args.rate
        sink = MemorySink()
        obs = Observability(tracer=Tracer(sink))
        run_app(create_app("kvstore", **params),
                config.replace(network=network),
                protocol=protocol, obs=obs)
        print(f"\nslowest {args.tail} requests "
              f"({protocol}/{net_name}, cycles):")
        print(format_attribution_table(
            attribute_tail(CausalTrace(sink.events), top=args.tail)))
    return 0


def cmd_servesweep(args) -> int:
    """Capacity-planning sweep: SLO attainment and tail latency vs
    offered load for every (protocol, network) cell, through the
    shared lab (parallel + cached).  ``--out`` saves the curves as
    JSON (docs/serving.md)."""
    from repro.analysis.serving import (capacity_sweep,
                                        format_serving_table,
                                        sweep_to_json)

    try:
        rates = [_positive_rate(r) for r in args.rates.split(",")]
    except argparse.ArgumentTypeError as exc:
        raise SystemExit(f"servesweep: {exc}")
    protocols = _serve_protocols(args)
    networks = _serve_networks(args)
    config = _serve_config(args)
    print(f"kvstore capacity sweep, rates {rates} req/s on "
          f"{args.procs} procs (scale {args.scale}, "
          f"SLO {args.slo_us:.0f} µs)")
    with _lab(args) as lab:
        curves = capacity_sweep(
            rates_rps=rates, protocols=protocols, networks=networks,
            scale=args.scale, config=config, slo_us=args.slo_us,
            overrides=_serve_overrides(args), lab=lab)
        stats_line = lab.format_stats()
    for (protocol, net_name), reports in curves.items():
        print(f"\n{protocol}/{net_name}:")
        print(format_serving_table(reports))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(sweep_to_json(curves), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.out}")
    print(stats_line)
    return 0


def _timeseries_run(args, with_trace: bool = False):
    """Execute one run with a :class:`TimeseriesSampler` attached.
    Sampling is a side effect, so the run executes in-process and
    bypasses the lab cache (like ``trace`` and ``profile``).  With no
    app named, runs the kvstore serving workload so the request series
    (p50/p99, burn rate) is populated."""
    from repro.obs import TimeseriesSampler

    try:
        sampler = TimeseriesSampler(window_us=args.window_us,
                                    slo_us=args.slo_us,
                                    slo_target=args.slo_target)
    except ValueError as exc:
        raise SystemExit(f"timeseries: {exc}")
    if args.app is None:
        from repro.serve.workload import SERVE_APP_PARAMS
        params = dict(SERVE_APP_PARAMS[args.scale])
        params["rate_rps"] = args.rate
        if args.requests is not None:
            if args.requests < 1:
                raise SystemExit(
                    f"timeseries: need at least one request, "
                    f"got {args.requests}")
            params["requests"] = args.requests
        app = create_app("kvstore", **params)
        label = "kvstore"
    else:
        app = _app(args)
        label = args.app
    sink = None
    obs = None
    if with_trace:
        from repro.obs import MemorySink, Observability, Tracer
        sink = MemorySink()
        obs = Observability(tracer=Tracer(sink))
    try:
        run_app(app, _config(args), protocol=args.protocol, obs=obs,
                sampler=sampler)
    except ValueError as exc:
        # bind() rejects windows finer than the scheduler tick.
        raise SystemExit(f"timeseries: {exc}")
    return sampler, sink, label


def cmd_timeseries_report(args) -> int:
    """Windowed telemetry table for one run: per-window events,
    messages, wire bytes, lock wait, queue depth, and — for the
    serving workload — completions, p50/p99, and SLO burn rate
    (docs/observability.md)."""
    from repro.obs import format_timeseries_table

    sampler, _sink, label = _timeseries_run(args)
    print(f"{label} on {args.procs} procs ({args.protocol}/"
          f"{args.network}), {args.window_us:g} µs windows, "
          f"SLO {args.slo_us:g} µs at {args.slo_target:g}")
    print(format_timeseries_table(sampler))
    windows = sampler.windows
    served = [w for w in windows if w.requests]
    print(f"\n{len(windows)} windows, "
          f"{sum(w.events for w in windows)} events")
    if served:
        print(f"peak p99 {max(w.p99_us for w in served):.1f} µs, "
              f"peak burn rate "
              f"{max(w.burn_rate for w in served):.2f}")
    return 0


def cmd_timeseries_export(args) -> int:
    """Export windowed telemetry as schema-versioned JSON; with
    ``--chrome FILE`` also write the run's Perfetto trace with the
    windows as counter tracks (docs/tracing.md)."""
    from repro.obs import (CausalTrace, chrome_trace,
                           validate_chrome_trace)

    sampler, sink, _label = _timeseries_run(
        args, with_trace=bool(args.chrome))
    with open(args.out, "w") as handle:
        handle.write(sampler.as_json() + "\n")
    print(f"wrote {args.out}: {len(sampler.windows)} windows of "
          f"{args.window_us:g} µs")
    if args.chrome:
        exported = chrome_trace(CausalTrace(sink.events),
                                timeseries=sampler)
        errors = validate_chrome_trace(exported)
        if errors:
            for error in errors:
                print(f"schema error: {error}", file=sys.stderr)
            return 1
        with open(args.chrome, "w") as handle:
            json.dump(exported, handle)
            handle.write("\n")
        counters = sum(1 for e in exported["traceEvents"]
                       if e.get("ph") == "C")
        print(f"wrote {args.chrome}: "
              f"{len(exported['traceEvents'])} trace events, "
              f"{counters} counter samples")
    return 0


def _causal_trace(args):
    """A :class:`repro.obs.CausalTrace` for the trace subcommands:
    replay ``--from FILE`` if given, else simulate the requested run
    in-process with an in-memory sink (a traced run is all about the
    side effect, so it bypasses the lab cache like ``stats --trace``
    and ``profile`` do)."""
    from repro.obs import (CausalTrace, MemorySink, Observability,
                           Tracer)

    if args.from_file:
        return CausalTrace.from_jsonl(args.from_file)
    if args.app is None:
        raise SystemExit("trace: pass an app name or --from FILE")
    sink = MemorySink()
    obs = Observability(tracer=Tracer(sink))
    run_app(_app(args), _config(args), protocol=args.protocol,
            obs=obs)
    return CausalTrace(sink.events)


def cmd_trace_export(args) -> int:
    """Export a run's trace as Chrome trace-event JSON (load it at
    ui.perfetto.dev or chrome://tracing; message flow arrows link
    sends to receives)."""
    from repro.obs import chrome_trace, validate_chrome_trace

    trace = _causal_trace(args)
    exported = chrome_trace(trace)
    errors = validate_chrome_trace(exported)
    if errors:
        for error in errors:
            print(f"schema error: {error}", file=sys.stderr)
        return 1
    with open(args.out, "w") as handle:
        json.dump(exported, handle)
        handle.write("\n")
    n_events = len(exported["traceEvents"])
    n_flows = sum(1 for e in exported["traceEvents"]
                  if e.get("ph") == "s")
    print(f"wrote {args.out}: {n_events} trace events, "
          f"{n_flows} message flows, {len(trace.events)} raw events")
    return 0


def cmd_trace_critical_path(args) -> int:
    """Critical-path breakdown of one run: which compute, diff, wire,
    contention, and software-overhead cycles actually gated the
    elapsed time (docs/tracing.md)."""
    from repro.analysis.critical_path import critical_path

    trace = _causal_trace(args)
    result = critical_path(trace, keep_segments=args.segments)
    print(result.format())
    if args.segments:
        print()
        print(f"{'t0':>14s} {'t1':>14s} {'category':<11s} where")
        for seg in reversed(result.segments):
            print(f"{seg.t0:14.1f} {seg.t1:14.1f} "
                  f"{seg.category:<11s} {seg.where}")
    return 0


def cmd_trace_contention(args) -> int:
    """Per-lock, per-page, and per-link contention profiles (wait
    totals, maxima, and wait-time histograms) from one run's trace."""
    from repro.analysis.contention import (contention_report,
                                           format_contention)

    trace = _causal_trace(args)
    print(format_contention(contention_report(trace), top=args.top))
    return 0


def cmd_report(args) -> int:
    """Regenerate the full EXPERIMENTS.md report."""
    from repro.analysis.generate_report import generate
    with _lab(args) as lab:
        report = generate(scale=args.scale, lab=lab)
        stats_line = lab.format_stats()
    with open(args.output, "w") as handle:
        handle.write(report)
    print(f"wrote {args.output}")
    print(stats_line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Release-consistent software DSM simulator "
                    "(ISCA 1993 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def lab_flags(p):
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for the run matrix "
                            "(default: run serially in-process)")
        p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                       dest="cache_dir", metavar="DIR",
                       help="content-addressed result cache "
                            f"(default: {DEFAULT_CACHE_DIR}/)")
        p.add_argument("--no-cache", action="store_true",
                       dest="no_cache",
                       help="always simulate; neither read nor write "
                            "the result cache")
        p.add_argument("--trace-dir", default=None, dest="trace_dir",
                       metavar="DIR",
                       help="stream a JSONL event trace per executed "
                            "spec into DIR (cache hits trace "
                            "nothing; combine with --no-cache to "
                            "trace everything — docs/tracing.md)")

    def common(p, with_app=True, app_optional=False):
        if with_app:
            if app_optional:
                p.add_argument("app", nargs="?",
                               choices=CLI_APP_CHOICES,
                               default=None)
            else:
                p.add_argument("app", choices=CLI_APP_CHOICES)
        p.add_argument("--procs", type=int, default=8)
        p.add_argument("--protocol", choices=PROTOCOL_NAMES,
                       default="lh")
        p.add_argument("--network", choices=["atm", "ethernet",
                                             "ideal"], default="atm")
        p.add_argument("--bandwidth", type=float, default=100.0,
                       help="Mbit/s (ATM only)")
        p.add_argument("--no-collisions", action="store_true")
        p.add_argument("--mhz", type=float, default=40.0)
        p.add_argument("--page-size", type=int, default=4096)
        p.add_argument("--scale", choices=["small", "bench", "large"],
                       default="bench")
        # Fault injection (docs/robustness.md).  Any non-zero rate,
        # stall, or crash enables the seeded injector and reliable
        # transport.
        p.add_argument("--loss", type=_probability, default=0.0,
                       metavar="PROB",
                       help="per-message drop probability in [0, 1)")
        p.add_argument("--dup", type=_probability, default=0.0,
                       metavar="PROB",
                       help="per-message duplication probability "
                            "in [0, 1)")
        p.add_argument("--reorder", type=_probability, default=0.0,
                       metavar="PROB",
                       help="per-message reorder probability "
                            "in [0, 1)")
        p.add_argument("--fault-seed", type=int, default=None,
                       dest="fault_seed", metavar="SEED",
                       help="fault-plan seed (default: machine seed)")
        p.add_argument("--stall", type=_parse_stall, action="append",
                       metavar="PROC:AT_US:DUR_US",
                       help="inject a CPU stall (repeatable)")
        p.add_argument("--crash", type=_parse_crash, action="append",
                       metavar="PROC:AT_US[:DOWN_US]",
                       help="crash a node at AT_US, recovering after "
                            "DOWN_US (omit DOWN_US for crash-stop; "
                            "repeatable)")
        p.add_argument("--crash-mttf", type=_nonnegative_us,
                       default=0.0, dest="crash_mttf", metavar="US",
                       help="mean time to failure per node (µs); "
                            "draws a seeded crash plan")
        p.add_argument("--crash-mttr", type=_nonnegative_us,
                       default=0.0, dest="crash_mttr", metavar="US",
                       help="mean time to repair (µs); 0 with "
                            "--crash-mttf means crash-stop")
        p.add_argument("--crash-horizon", type=_nonnegative_us,
                       default=0.0, dest="crash_horizon", metavar="US",
                       help="pre-draw crashes up to this time "
                            "(required with --crash-mttf)")
        lab_flags(p)

    p_run = sub.add_parser("run", help=cmd_run.__doc__)
    common(p_run)
    p_run.add_argument("--speedup", action="store_true",
                       help="also run the 1-proc baseline")
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help=cmd_compare.__doc__)
    common(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_sweep = sub.add_parser("sweep", help=cmd_sweep.__doc__)
    common(p_sweep)
    p_sweep.add_argument("--proc-list", default="1,2,4,8,16",
                         dest="proc_list")
    p_sweep.set_defaults(func=cmd_sweep)

    p_net = sub.add_parser("networks", help=cmd_networks.__doc__)
    common(p_net, with_app=False)
    p_net.add_argument("--app", choices=APP_NAMES, default="jacobi")
    p_net.set_defaults(func=cmd_networks)

    p_stats = sub.add_parser("stats", help=cmd_stats.__doc__)
    common(p_stats, app_optional=True)
    p_stats.add_argument("--format", choices=["json", "table"],
                         default="json")
    p_stats.add_argument("--output", default=None,
                         help="write the dump to a file")
    p_stats.add_argument("--trace", default=None, metavar="FILE",
                         help="also record a JSONL event trace")
    p_stats.add_argument("--save", default=None, metavar="FILE",
                         help="save the full RunResult as JSON "
                              "(reloadable with --load)")
    p_stats.add_argument("--load", default=None, metavar="FILE",
                         help="inspect a saved RunResult (or lab "
                              "cache entry) instead of simulating")
    p_stats.set_defaults(func=cmd_stats)

    p_prof = sub.add_parser("profile", help=cmd_profile.__doc__)
    common(p_prof)
    p_prof.add_argument("--top", type=int, default=15, metavar="N",
                        help="rows in the hottest-functions table "
                             "(default: 15)")
    p_prof.set_defaults(func=cmd_profile)

    p_loss = sub.add_parser("losssweep", help=cmd_losssweep.__doc__)
    common(p_loss)
    p_loss.add_argument("--rates", default="0.0,0.001,0.01,0.05",
                        help="comma-separated drop probabilities "
                             "(first is the slowdown baseline)")
    p_loss.add_argument("--protocols", default=None,
                        help="comma-separated protocol subset "
                             "(default: all five)")
    p_loss.set_defaults(func=cmd_losssweep)

    p_crash = sub.add_parser("crashsweep", help=cmd_crashsweep.__doc__)
    common(p_crash)
    p_crash.add_argument("--mttfs", default="0,50000,20000",
                         help="comma-separated per-node MTTFs in µs "
                              "(0 = the crash-free baseline; pass it "
                              "first)")
    p_crash.add_argument("--protocols", default="li,lh",
                         help="comma-separated protocol subset "
                              "(default: li,lh)")
    p_crash.add_argument("--networks", default="ethernet,atm",
                         help="comma-separated networks "
                              "(default: ethernet,atm)")
    p_crash.add_argument("--max-events", type=int, default=500_000,
                         dest="max_events",
                         help="event budget per cell (crash-stop "
                              "cells never drain on their own)")
    p_crash.set_defaults(func=cmd_crashsweep, procs=4, scale="small",
                         crash_mttr=5_000.0, crash_horizon=100_000.0)

    def serve_flags(p):
        p.add_argument("--protocols", default="li,lh",
                       help="comma-separated protocol subset "
                            "(default: li,lh)")
        p.add_argument("--networks", default="ethernet,atm",
                       help="comma-separated networks "
                            "(default: ethernet,atm)")
        p.add_argument("--read-fraction", type=_unit_fraction,
                       default=0.9, dest="read_fraction",
                       metavar="FRAC",
                       help="fraction of requests that are gets, "
                            "in [0, 1] (default: 0.9)")
        p.add_argument("--zipf-s", type=_zipf_exponent, default=0.99,
                       dest="zipf_s", metavar="S",
                       help="Zipf key-popularity exponent >= 0 "
                            "(0 = uniform; default: 0.99)")
        p.add_argument("--requests", type=int, default=None,
                       help="override the scaled request count")
        p.add_argument("--arrival", choices=["poisson", "fixed"],
                       default="poisson",
                       help="inter-arrival process (default: "
                            "poisson)")
        p.add_argument("--slo-us", type=_nonnegative_us,
                       default=500.0, dest="slo_us", metavar="US",
                       help="latency SLO for attainment reporting "
                            "(default: 500 µs)")

    p_serve = sub.add_parser("serve", help=cmd_serve.__doc__)
    common(p_serve, with_app=False)
    serve_flags(p_serve)
    p_serve.add_argument("--rate", type=_positive_rate,
                         default=40_000.0, metavar="RPS",
                         help="offered load in requests/second "
                              "(> 0; default: 40000)")
    p_serve.add_argument("--tail", type=int, default=0, metavar="N",
                         help="also trace one cell in-process and "
                              "attribute the N slowest requests")
    p_serve.set_defaults(func=cmd_serve, procs=4, scale="small")

    p_ssweep = sub.add_parser("servesweep",
                              help=cmd_servesweep.__doc__)
    common(p_ssweep, with_app=False)
    serve_flags(p_ssweep)
    p_ssweep.add_argument("--rates", default="10000,20000,40000,80000",
                          help="comma-separated offered loads in "
                               "requests/second (each > 0)")
    p_ssweep.add_argument("--out", default=None, metavar="FILE",
                          help="save the sweep curves as JSON")
    p_ssweep.set_defaults(func=cmd_servesweep, procs=4, scale="small")

    p_ts = sub.add_parser(
        "timeseries",
        help="windowed telemetry: per-window events/messages/bytes, "
             "serving p50/p99 and SLO burn rate, JSON + Perfetto "
             "counter-track export")
    ts_sub = p_ts.add_subparsers(dest="action", required=True)

    def timeseries_common(p):
        common(p, app_optional=True)
        p.add_argument("--window-us", type=_window_us, default=200.0,
                       dest="window_us", metavar="US",
                       help="telemetry window in simulated µs (> 0 "
                            "and at least one scheduler tick; "
                            "default: 200)")
        p.add_argument("--rate", type=_positive_rate,
                       default=40_000.0, metavar="RPS",
                       help="offered load for the default kvstore "
                            "workload (default: 40000)")
        p.add_argument("--requests", type=int, default=None,
                       help="override the scaled request count "
                            "(kvstore workload only)")
        p.add_argument("--slo-us", type=_nonnegative_us,
                       default=500.0, dest="slo_us", metavar="US",
                       help="latency SLO for the burn-rate series "
                            "(default: 500 µs)")
        p.add_argument("--slo-target", type=_slo_target,
                       default=0.999, dest="slo_target",
                       metavar="FRAC",
                       help="SLO attainment target in (0, 1) "
                            "(default: 0.999)")
        p.set_defaults(procs=4, scale="small")

    p_tsrep = ts_sub.add_parser("report",
                                help=cmd_timeseries_report.__doc__)
    timeseries_common(p_tsrep)
    p_tsrep.set_defaults(func=cmd_timeseries_report)

    p_tsexp = ts_sub.add_parser("export",
                                help=cmd_timeseries_export.__doc__)
    timeseries_common(p_tsexp)
    p_tsexp.add_argument("--out", default="timeseries.json",
                         metavar="FILE",
                         help="windowed-telemetry JSON output "
                              "(default: timeseries.json)")
    p_tsexp.add_argument("--chrome", default=None, metavar="FILE",
                         help="also write the Perfetto trace with "
                              "counter tracks")
    p_tsexp.set_defaults(func=cmd_timeseries_export)

    p_trace = sub.add_parser(
        "trace",
        help="causal-trace tools: Chrome/Perfetto export, "
             "critical-path breakdown, contention profiles")
    trace_sub = p_trace.add_subparsers(dest="action", required=True)

    def trace_common(p):
        common(p, app_optional=True)
        p.add_argument("--from", dest="from_file", default=None,
                       metavar="FILE",
                       help="replay a JSONL trace (e.g. from "
                            "`stats --trace` or Lab(trace_dir=...)) "
                            "instead of simulating")

    p_texp = trace_sub.add_parser("export",
                                  help=cmd_trace_export.__doc__)
    trace_common(p_texp)
    p_texp.add_argument("--out", default="trace.json", metavar="FILE",
                        help="Chrome trace-event JSON output "
                             "(default: trace.json)")
    p_texp.set_defaults(func=cmd_trace_export)

    p_tcp = trace_sub.add_parser("critical-path",
                                 help=cmd_trace_critical_path.__doc__)
    trace_common(p_tcp)
    p_tcp.add_argument("--segments", action="store_true",
                       help="also print every attributed span of the "
                            "path, oldest first")
    p_tcp.set_defaults(func=cmd_trace_critical_path)

    p_tcon = trace_sub.add_parser("contention",
                                  help=cmd_trace_contention.__doc__)
    trace_common(p_tcon)
    p_tcon.add_argument("--top", type=int, default=10, metavar="N",
                        help="rows per table (default: 10)")
    p_tcon.set_defaults(func=cmd_trace_contention)

    p_rep = sub.add_parser("report", help=cmd_report.__doc__)
    p_rep.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    p_rep.add_argument("--scale", choices=["small", "bench", "large"],
                       default="bench")
    lab_flags(p_rep)
    p_rep.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
