"""Global barriers.

Barriers use a statically assigned master that collects arrival
messages and distributes departure messages (2(n-1) messages per
episode).  In consistency terms a barrier arrival is a release and a
departure is an acquire on each of the other processors; the protocol
hooks attached here let each of the five protocols move its consistency
information at the right moments:

- ``pre_barrier``: before sending the arrival (seal the interval; the
  update-style protocols push diffs to cachers here),
- ``barrier_arrive_payload``: consistency info piggybacked to the master,
- ``master_combine``: master-side merge (EI's per-page winner election),
- ``apply_depart``: acquire-side actions on the departure message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.net.message import Message, MsgKind
from repro.sim.engine import SimulationError
from repro.sim.events import Event


@dataclass
class _Episode:
    """Master-side state for one barrier episode."""

    arrived: Dict[int, object] = field(default_factory=dict)
    all_arrived: Optional[Event] = None


class BarrierManager:
    """Per-node barrier engine."""

    def __init__(self, node) -> None:
        self.node = node
        self.sim = node.sim
        # Episode counters per barrier id (this node's next episode).
        self._episode: Dict[int, int] = {}
        # Master-side per-(barrier, episode) state.
        self._master: Dict[tuple, _Episode] = {}
        # Worker-side wait events per (barrier, episode).
        self._departures: Dict[tuple, Event] = {}
        # Global barrier episodes this node has completed (for GC).
        self._episodes_completed = 0

    def barrier(self, barrier_id: int) -> Generator:
        """Enter the global barrier; returns when all nodes have."""
        node = self.node
        nprocs = node.config.nprocs
        episode = self._episode.get(barrier_id, 0)
        self._episode[barrier_id] = episode + 1
        arrived_at = self.sim.now

        yield from node.protocol.pre_barrier()
        payload = node.protocol.barrier_arrive_payload()

        if nprocs == 1:
            yield from node.protocol.apply_depart(
                node.protocol.master_combine({0: payload})[0])
            yield from self._maybe_collect_garbage()
            return

        master = node.machine.barrier_master(barrier_id)
        key = (barrier_id, episode)
        if node.tracer:
            node.tracer.emit("sync.barrier_arrive", barrier=barrier_id,
                             episode=episode, node=node.proc,
                             master=master)
        if master == node.proc:
            state = self._master_state(key)
            state.arrived[node.proc] = payload
            if len(state.arrived) < nprocs:
                state.all_arrived = self.sim.event("barrier")
                yield state.all_arrived
            departures = node.protocol.master_combine(state.arrived)
            del self._master[key]
            if node.tracer:
                node.tracer.emit("sync.barrier_depart",
                                 barrier=barrier_id, episode=episode,
                                 node=node.proc)
            for proc in range(nprocs):
                if proc == node.proc:
                    continue
                yield from node.app_send(Message(
                    src=node.proc, dst=proc, kind=MsgKind.BARRIER_DEPART,
                    payload={"barrier": barrier_id, "episode": episode,
                             "payload": departures[proc]}))
            self._record_wait(arrived_at, barrier_id)
            yield from node.protocol.apply_depart(departures[node.proc])
            yield from self._maybe_collect_garbage()
        else:
            depart_event = self.sim.event("barrier-depart")
            self._departures[key] = depart_event
            yield from node.app_send(Message(
                src=node.proc, dst=master, kind=MsgKind.BARRIER_ARRIVE,
                payload={"barrier": barrier_id, "episode": episode,
                         "proc": node.proc, "vc": node.vc,
                         "payload": payload}))
            depart_payload = yield depart_event
            del self._departures[key]
            self._record_wait(arrived_at, barrier_id)
            yield from node.protocol.apply_depart(depart_payload)
            yield from self._maybe_collect_garbage()

    def _record_wait(self, arrived_at: float, barrier_id: int) -> None:
        """Account one completed episode: legacy counters plus the
        registry's sync.barrier_* metrics and an optional trace event."""
        node = self.node
        waited = self.sim.now - arrived_at
        node.metrics.barrier_waits += 1
        node.metrics.barrier_wait_cycles += waited
        node.ins.barrier_waits.value += 1
        node.ins.barrier_wait.observe(waited)
        if node.tracer:
            node.tracer.emit("sync.barrier_done", barrier=barrier_id,
                             node=node.proc, wait_cycles=waited)

    def _maybe_collect_garbage(self) -> None:
        """Run metadata GC every ``gc_barrier_interval`` episodes (all
        nodes execute the same global barrier sequence, so they reach
        GC points together)."""
        self._episodes_completed += 1
        interval = self.node.config.gc_barrier_interval
        if interval and self._episodes_completed % interval == 0:
            yield from self.node.protocol.collect_garbage()

    def _master_state(self, key: tuple) -> _Episode:
        state = self._master.get(key)
        if state is None:
            state = _Episode()
            self._master[key] = state
        return state

    # -- crash checkpoint/restore ---------------------------------------

    def checkpoint_state(self) -> dict:
        """Serializable snapshot of barrier progress: episode
        counters, GC progress, and the master-side arrival maps.
        Arrival payloads are protocol data (records + clocks, shared
        immutably); the live events (``all_arrived``, worker
        departure waits) stay with the frozen continuations and are
        re-attached by :meth:`restore_state`."""
        return {
            "episode": dict(self._episode),
            "completed": self._episodes_completed,
            "master": {key: dict(state.arrived)
                       for key, state in self._master.items()},
        }

    def restore_state(self, snapshot: dict) -> None:
        """Rebuild barrier state from a crash checkpoint, preserving
        ``_Episode`` object identities and their events so a master
        frozen mid-episode resumes collecting arrivals — the re-arrival
        path for peers whose BARRIER_ARRIVE was retransmitted across
        the outage."""
        self._episode = dict(snapshot["episode"])
        self._episodes_completed = snapshot["completed"]
        for key in list(self._master):
            if key not in snapshot["master"]:
                del self._master[key]
        for key, arrived in snapshot["master"].items():
            state = self._master.get(key)
            if state is None:
                state = _Episode()
                self._master[key] = state
            state.arrived = dict(arrived)

    # -- message handlers ----------------------------------------------

    def handle(self, message: Message) -> None:
        payload = message.payload
        key = (payload["barrier"], payload["episode"])
        if message.kind == MsgKind.BARRIER_ARRIVE:
            node = self.node
            node.observe_peer_vc(payload["proc"], payload["vc"])
            state = self._master_state(key)
            if payload["proc"] in state.arrived:
                raise SimulationError(
                    f"double arrival from {payload['proc']} at {key}")
            state.arrived[payload["proc"]] = payload["payload"]
            if (len(state.arrived) == node.config.nprocs
                    and state.all_arrived is not None):
                if node.tracer:
                    node.tracer.emit("sched.wake", node=node.proc,
                                     kind="barrier_all_arrived",
                                     cause=message.msg_id,
                                     barrier=payload["barrier"])
                state.all_arrived.succeed()
        elif message.kind == MsgKind.BARRIER_DEPART:
            event = self._departures.get(key)
            if event is None:
                raise SimulationError(
                    f"proc {self.node.proc} got unexpected departure "
                    f"for {key}")
            if self.node.tracer:
                self.node.tracer.emit("sched.wake",
                                      node=self.node.proc,
                                      kind="barrier_depart",
                                      cause=message.msg_id,
                                      barrier=payload["barrier"])
            event.succeed(payload["payload"])
        else:  # pragma: no cover - dispatch guarantees
            raise SimulationError(f"barrier manager got {message}")
